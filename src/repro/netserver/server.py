"""Asyncio TCP front-end for one :class:`~repro.service.service.StackService`.

The single-process worker of the network control plane: an asyncio
server speaking length-framed JSON envelopes (``repro.netserver.framing``
over ``repro.service.envelopes``).  Each connection carries a *pipelined*
request stream — a client may have many requests in flight, responses
carry the request ids and (behind a router fanning one connection across
workers) may complete out of order.

Concurrency model, sized for the facade it fronts: ``StackService``
dispatch is serialised by an internal lock, so the server runs all
dispatch on one executor thread and spends its event loop purely on IO.
Requests are dispatched in adaptive batches (one executor hop amortised
over up to ``dispatch_batch`` queued envelopes), which is what makes
pipelined throughput a large multiple of ping-pong round trips.

Backpressure is credit-based at two scopes: a per-connection and a
per-tenant in-flight cap (``ServerLimits``).  The reader coroutine stops
consuming frames while a tenant is at its cap, so a flooding client is
throttled by TCP flow control without buffering unbounded requests —
and without affecting other tenants' connections.  Quota *accounting*
stays where it always was: the session machinery answers
``SVC_RET_QUOTA_EXCEEDED`` when a tenant's evaluation budget runs out.

Durability: pass ``journal_dir`` and every database write is teed
through the write-ahead journal (``repro.durability``) before the
in-memory state mutates; :meth:`NetworkServer.drain` checkpoints on the
way out, so SIGTERM loses nothing.
"""

from __future__ import annotations

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Set, Tuple

from repro.netserver.framing import (
    MAX_FRAME_BYTES,
    MAX_RESPONSE_BYTES,
    FrameBuffer,
    FrameTooLarge,
    frame_text,
)
from repro.service.envelopes import (
    Response,
    ServiceError,
    ServiceErrorCode,
    decode_wire_line,
)
from repro.service.service import StackService

__all__ = ["ServerLimits", "NetworkServer", "tenant_of_envelope"]


def tenant_of_envelope(payload: Mapping[str, Any]) -> str:
    """Best-effort tenant of one request envelope (for rate limiting/routing).

    Session ids are ``sNNNN-<tenant>`` (see ``StackService``), so an
    attached session names its tenant directly; ``session.open`` carries
    it in ``args.tenant`` and ``session.restore`` inside the snapshot
    blob.  Anything else maps to the anonymous tenant ``""``.
    """
    session = payload.get("session")
    if isinstance(session, str) and "-" in session:
        return session.split("-", 1)[1]
    args = payload.get("args")
    if isinstance(args, Mapping):
        tenant = args.get("tenant")
        if isinstance(tenant, str) and tenant:
            return tenant
        state = args.get("state")
        if isinstance(state, Mapping):
            tenant = state.get("tenant")
            if isinstance(tenant, str) and tenant:
                return tenant
    return ""


@dataclass(frozen=True)
class ServerLimits:
    """Admission/backpressure knobs for one :class:`NetworkServer`."""

    #: In-flight requests one connection may pipeline before its reader
    #: stalls (TCP flow control takes over).
    max_inflight_per_connection: int = 64
    #: In-flight requests across *all* of a tenant's connections — one
    #: flooding tenant cannot starve the dispatch thread.
    max_inflight_per_tenant: int = 256
    #: Open connections before new ones are refused with a structured
    #: ``SVC_RET_QUOTA_EXCEEDED`` frame.
    max_connections: int = 8192
    #: Queued envelopes dispatched per executor hop.
    dispatch_batch: int = 32


class NetworkServer:
    """Length-framed envelope server over one ``StackService``."""

    def __init__(
        self,
        service: StackService,
        host: str = "127.0.0.1",
        port: int = 0,
        limits: Optional[ServerLimits] = None,
        journal_dir: Optional[str] = None,
    ):
        self.service = service
        self.host = host
        self.port = int(port)
        self.limits = limits if limits is not None else ServerLimits()
        self.journal_dir = journal_dir
        self._server: Optional[asyncio.AbstractServer] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._connections: Set["_Connection"] = set()
        self._tenant_slots: Dict[str, asyncio.Semaphore] = {}
        self._draining = False
        #: Lifetime counters (diagnostics + bench assertions).
        self.n_connections = 0
        self.n_requests = 0
        self.n_refused = 0

    # -- lifecycle ---------------------------------------------------------
    async def start(self) -> Tuple[str, int]:
        """Bind and listen; returns the bound (host, port)."""
        if self.journal_dir is not None and self.service.database.journal is None:
            from repro.durability import attach

            attach(self.service.database, self.journal_dir)
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="svc-dispatch"
        )
        self._server = await asyncio.start_server(
            self.serve_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def drain(self) -> None:
        """Graceful shutdown: refuse new work, finish in-flight, checkpoint.

        The SIGTERM path: the listener closes, every connection's reader
        stops consuming frames, queued requests are dispatched and their
        responses flushed, and — with a journal attached — the database
        is checkpointed so recovery replays nothing.
        """
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        connections = list(self._connections)
        for connection in connections:
            connection.begin_drain()
        if connections:
            await asyncio.gather(
                *(connection.done.wait() for connection in connections)
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        database = self.service.database
        if getattr(database, "journal", None) is not None:
            await asyncio.get_running_loop().run_in_executor(
                None, database.checkpoint
            )

    # -- per-connection dispatch ------------------------------------------
    async def serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection, admission to teardown.

        Wire-dispatch entry point (RL002): nothing a peer sends — or any
        internal failure — may escape as an exception; errors become
        structured failure frames or a closed connection.
        """
        connection: Optional[_Connection] = None
        try:
            if self._draining or len(self._connections) >= self.limits.max_connections:
                self.n_refused += 1
                reason = (
                    "server is draining"
                    if self._draining
                    else f"connection limit {self.limits.max_connections} reached"
                )
                response = Response.failure(ServiceErrorCode.QUOTA_EXCEEDED, reason)
                writer.write(frame_text(response.to_json()))
                await writer.drain()
            else:
                self.n_connections += 1
                connection = _Connection(self, reader, writer)
                self._connections.add(connection)
                await connection.run()
        except Exception:
            pass  # one broken connection must never take down the listener
        finally:
            if connection is not None:
                self._connections.discard(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    def _tenant_slot(self, tenant: str) -> asyncio.Semaphore:
        slot = self._tenant_slots.get(tenant)
        if slot is None:
            slot = asyncio.Semaphore(self.limits.max_inflight_per_tenant)
            self._tenant_slots[tenant] = slot
        return slot

    def _dispatch_batch(self, payloads: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Executor-thread body: envelope dicts in, response dicts out."""
        handle_dict = self.service.handle_dict
        return [handle_dict(payload) for payload in payloads]


class _Connection:
    """One pipelined request stream: reader → dispatcher → writer.

    Three coroutines per connection.  The reader parses frames and
    acquires in-flight credits (stalling is the backpressure); the
    dispatcher pulls adaptive batches through the server's executor; the
    writer serialises response frames onto the socket.  ``None`` is the
    end-of-stream sentinel on both internal queues.
    """

    def __init__(
        self,
        server: NetworkServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.server = server
        self.reader = reader
        self.writer = writer
        self.done = asyncio.Event()
        self._queue: asyncio.Queue = asyncio.Queue()
        self._write_queue: asyncio.Queue = asyncio.Queue()
        self._conn_slot = asyncio.Semaphore(
            server.limits.max_inflight_per_connection
        )
        self._read_task: Optional[asyncio.Task] = None

    def begin_drain(self) -> None:
        """Stop consuming frames; in-flight requests still complete."""
        if self._read_task is not None:
            self._read_task.cancel()

    async def run(self) -> None:
        self._read_task = asyncio.create_task(self._read_loop())
        dispatch_task = asyncio.create_task(self._dispatch_loop())
        write_task = asyncio.create_task(self._write_loop())
        try:
            try:
                await self._read_task
            except asyncio.CancelledError:
                if not self._read_task.cancelled():
                    raise  # *we* were cancelled (teardown), not the reader
                # else: drain cancelled the reader; flush what is queued
            await self._queue.put(None)
            await dispatch_task
            self._write_queue.put_nowait(None)
            await write_task
        finally:
            for task in (self._read_task, dispatch_task, write_task):
                if not task.done():
                    task.cancel()
            self.done.set()

    async def _read_loop(self) -> None:
        reader = self.reader
        server = self.server
        buffer = FrameBuffer(max_bytes=MAX_FRAME_BYTES)
        while True:
            try:
                data = await reader.read(65536)
            except (ConnectionError, OSError):
                break  # peer reset: nothing to answer
            if not data:
                break  # EOF; a partial frame left in the buffer was truncated
            try:
                frames = buffer.feed(data)
            except FrameTooLarge as error:
                # The declared length is hostile: there is no way to
                # resync the stream, so answer and stop reading.
                self._fail_local(ServiceErrorCode.BAD_REQUEST, str(error))
                break
            for frame in frames:
                try:
                    payload = decode_wire_line(
                        frame.decode("utf-8", errors="replace")
                    )
                except ServiceError as error:
                    # One malformed envelope; framing intact, stream lives.
                    self._fail_local(error.code, error.message)
                    continue
                tenant = tenant_of_envelope(payload)
                await self._conn_slot.acquire()
                await server._tenant_slot(tenant).acquire()
                await self._queue.put((payload, tenant))

    async def _dispatch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        server = self.server
        queue = self._queue
        batch_max = server.limits.dispatch_batch
        while True:
            item = await queue.get()
            if item is None:
                break
            batch = [item]
            stop = False
            while len(batch) < batch_max:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    stop = True
                    break
                batch.append(extra)
            payloads = [payload for payload, _ in batch]
            try:
                results = await loop.run_in_executor(
                    server._executor, server._dispatch_batch, payloads
                )
            except Exception as error:  # handle_dict never raises; belt+braces
                results = [
                    Response.failure(
                        ServiceErrorCode.INTERNAL,
                        f"dispatch failed: {type(error).__name__}: {error}",
                    ).to_dict()
                    for _ in payloads
                ]
            server.n_requests += len(payloads)
            for (payload, tenant), result in zip(batch, results):
                self._write_queue.put_nowait(self._frame_response(result))
                self._conn_slot.release()
                server._tenant_slot(tenant).release()
            if stop:
                break

    async def _write_loop(self) -> None:
        writer = self.writer
        queue = self._write_queue
        alive = True
        finished = False
        while not finished:
            frame = await queue.get()
            if frame is None:
                break
            frames = [frame]
            # Coalesce everything already queued into one write+drain.
            while True:
                try:
                    extra = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if extra is None:
                    finished = True
                    break
                frames.append(extra)
            if not alive:
                continue  # peer is gone; keep draining so dispatch finishes
            try:
                writer.write(b"".join(frames))
                await writer.drain()
            except (ConnectionError, OSError):
                # Mid-request disconnect: the service side of the work is
                # already done (and journaled); only the answer is lost.
                alive = False

    def _fail_local(self, code: ServiceErrorCode, message: str) -> None:
        """Queue a transport-level failure frame (request id unknowable)."""
        response = Response.failure(code, message)
        self._write_queue.put_nowait(frame_text(response.to_json()))

    @staticmethod
    def _frame_response(result: Dict[str, Any]) -> bytes:
        try:
            line = json.dumps(result, sort_keys=True)
            return frame_text(line, max_bytes=MAX_RESPONSE_BYTES)
        except (TypeError, ValueError, FrameTooLarge) as error:
            fallback = Response.failure(
                ServiceErrorCode.INTERNAL,
                f"response not wire-safe: {type(error).__name__}: {error}",
                request=None,
            )
            return frame_text(fallback.to_json())
