"""Async network transport + shared-nothing multi-worker control plane.

The network layer over :mod:`repro.service`: an asyncio TCP server
speaking length-framed JSON envelopes (the same protocol-1.0 envelopes
the stdin driver speaks), with pipelined per-connection request streams,
per-tenant backpressure, graceful SIGTERM drain, and an optional
multi-process worker tier routed by the ``ShardedPerformanceDatabase``'s
own ``stable_name_key`` tenant hash — shared-nothing workers, each
journaling its own shards crash-safely.

Run ``python -m repro.netserver`` to serve; drive it with
:class:`AsyncServiceClient` (asyncio) or :class:`NetworkServiceClient`
(synchronous, ``ServiceClient``-compatible).
"""

from repro.netserver.client import (
    AsyncServiceClient,
    AsyncSessionHandle,
    NetworkServiceClient,
)
from repro.netserver.framing import (
    FRAME_HEADER,
    MAX_FRAME_BYTES,
    MAX_RESPONSE_BYTES,
    FrameBuffer,
    FrameTooLarge,
    encode_frame,
    frame_text,
    read_frame,
)
from repro.netserver.router import RouterServer, WorkerFleet, worker_for_tenant
from repro.netserver.server import NetworkServer, ServerLimits, tenant_of_envelope

__all__ = [
    "AsyncServiceClient",
    "AsyncSessionHandle",
    "NetworkServiceClient",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "MAX_RESPONSE_BYTES",
    "FrameBuffer",
    "FrameTooLarge",
    "encode_frame",
    "frame_text",
    "read_frame",
    "RouterServer",
    "WorkerFleet",
    "worker_for_tenant",
    "NetworkServer",
    "ServerLimits",
    "tenant_of_envelope",
]
