"""``python -m repro.netserver`` — the network control-plane server.

Single-process (``--workers 0``, default) serves one ``StackService``
directly; ``--workers N`` starts a shared-nothing fleet of N worker
processes behind a tenant-affine router.  Either way the process prints
one ``READY <host> <port> ...`` line once it is accepting connections
(smoke scripts key off it) and drains gracefully on SIGTERM/SIGINT:
in-flight requests finish, responses flush, and — with ``--journal-dir``
— every worker checkpoints its write-ahead journal on the way out::

    python -m repro.netserver --port 7781 --workers 4 --journal-dir /tmp/cpj
"""

from __future__ import annotations

import argparse
import asyncio
import signal
from typing import Optional, Sequence

from repro.netserver.router import RouterServer, WorkerFleet
from repro.netserver.server import NetworkServer
from repro.service.envelopes import PROTOCOL_VERSION
from repro.service.service import StackService

__all__ = ["main"]


def _install_stop_handlers(stop: asyncio.Event) -> None:
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    loop.add_signal_handler(signal.SIGINT, stop.set)


async def _serve_single(args: argparse.Namespace) -> int:
    service = StackService(
        n_nodes=args.nodes,
        seed=args.seed,
        n_shards=args.shards,
        default_quota=args.quota,
    )
    server = NetworkServer(
        service, host=args.host, port=args.port, journal_dir=args.journal_dir
    )
    host, port = await server.start()
    stop = asyncio.Event()
    _install_stop_handlers(stop)
    print(f"READY {host} {port} workers=0 protocol={PROTOCOL_VERSION}", flush=True)
    await stop.wait()
    await server.drain()
    print(
        f"DRAINED connections={server.n_connections} requests={server.n_requests}",
        flush=True,
    )
    return 0


async def _serve_fleet(args: argparse.Namespace) -> int:
    fleet = WorkerFleet(
        args.workers,
        n_nodes=args.nodes,
        seed=args.seed,
        n_shards=args.shards,
        default_quota=args.quota,
        journal_dir=args.journal_dir,
    )
    loop = asyncio.get_running_loop()
    addrs = await loop.run_in_executor(None, fleet.start)
    router = RouterServer(addrs, host=args.host, port=args.port)
    host, port = await router.start()
    stop = asyncio.Event()
    _install_stop_handlers(stop)
    worker_ports = ",".join(str(p) for _, p in addrs)
    print(
        f"READY {host} {port} workers={args.workers} "
        f"worker_ports={worker_ports} protocol={PROTOCOL_VERSION}",
        flush=True,
    )
    await stop.wait()
    await router.drain()
    await loop.run_in_executor(None, fleet.stop)
    print(
        f"DRAINED connections={router.n_connections} "
        f"forwarded={router.n_forwarded}",
        flush=True,
    )
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.netserver",
        description="Framed-envelope TCP server for the control-plane service.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help="worker processes behind a tenant-affine router (0 = in-process)",
    )
    parser.add_argument("--nodes", type=int, default=8, help="cluster size")
    parser.add_argument("--seed", type=int, default=0, help="service RNG seed")
    parser.add_argument("--shards", type=int, default=4, help="performance DB shards")
    parser.add_argument(
        "--quota", type=int, default=None, help="default per-session evaluation quota"
    )
    parser.add_argument(
        "--journal-dir",
        default=None,
        help="write-ahead journal root (per-worker subdirs under a fleet)",
    )
    args = parser.parse_args(argv)
    if args.workers > 0:
        return asyncio.run(_serve_fleet(args))
    return asyncio.run(_serve_single(args))


if __name__ == "__main__":
    raise SystemExit(main())
