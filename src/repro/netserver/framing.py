"""Length-framed wire protocol for the TCP transport.

One frame = a 4-byte big-endian unsigned length header followed by that
many bytes of UTF-8 JSON — one request or response envelope per frame
(the same envelopes the stdin JSON-lines driver speaks, see
``repro.service.envelopes``).  Framing instead of newline delimiting
lets the router forward opaque frames without re-serialising and makes
truncation detectable: a frame either arrives whole or the connection is
known-broken.

The per-frame size cap is the transport-shared
:data:`~repro.service.envelopes.MAX_WIRE_BYTES`: a header declaring more
than the cap is rejected *before* any payload is buffered, so a hostile
peer cannot make the server allocate an arbitrarily large buffer.
"""

from __future__ import annotations

import asyncio
import struct
from typing import List, Optional

from repro.service.envelopes import MAX_WIRE_BYTES

__all__ = [
    "MAX_FRAME_BYTES",
    "MAX_RESPONSE_BYTES",
    "FRAME_HEADER",
    "FrameTooLarge",
    "encode_frame",
    "frame_text",
    "read_frame",
    "FrameBuffer",
]

#: Per-frame payload cap — the one limit every transport shares.
MAX_FRAME_BYTES = MAX_WIRE_BYTES

#: Cap for *response* frames (server → client).  Requests are bounded by
#: :data:`MAX_FRAME_BYTES`, but a legitimate response (a large campaign
#: summary, a db dump) can exceed what we accept from an untrusted peer.
MAX_RESPONSE_BYTES = MAX_WIRE_BYTES * 64

#: The 4-byte big-endian unsigned length header.
FRAME_HEADER = struct.Struct(">I")


class FrameTooLarge(ValueError):
    """A frame header declared a payload beyond :data:`MAX_FRAME_BYTES`."""

    def __init__(self, n_bytes: int, limit: int = MAX_FRAME_BYTES):
        super().__init__(
            f"frame of {n_bytes} bytes exceeds the {limit}-byte wire limit"
        )
        self.n_bytes = int(n_bytes)
        self.limit = int(limit)


def encode_frame(payload: bytes, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Header + payload as one ``bytes`` (one ``write()`` per frame)."""
    if len(payload) > max_bytes:
        raise FrameTooLarge(len(payload), max_bytes)
    return FRAME_HEADER.pack(len(payload)) + payload


def frame_text(text: str, max_bytes: int = MAX_FRAME_BYTES) -> bytes:
    """Frame one JSON envelope line (UTF-8)."""
    return encode_frame(text.encode("utf-8"), max_bytes)


async def read_frame(
    reader: asyncio.StreamReader, max_bytes: int = MAX_FRAME_BYTES
) -> Optional[bytes]:
    """Read one complete frame payload.

    Returns ``None`` on a clean EOF at a frame boundary.  A connection
    dropped mid-frame raises :class:`asyncio.IncompleteReadError`
    (truncated frame — the stream is unrecoverable); an oversized header
    raises :class:`FrameTooLarge` before buffering any payload.
    """
    try:
        header = await reader.readexactly(FRAME_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:  # EOF exactly between frames: clean close
            return None
        raise
    (length,) = FRAME_HEADER.unpack(header)
    if length > max_bytes:
        raise FrameTooLarge(length, max_bytes)
    if length == 0:
        return b""
    return await reader.readexactly(length)


class FrameBuffer:
    """Incremental (sans-IO) frame decoder for chunked reads.

    The router reads the socket in large chunks and feeds them here;
    every call returns the complete frames that chunk finished, keeping
    any trailing partial frame buffered for the next feed.  Oversized
    headers raise :class:`FrameTooLarge` immediately.
    """

    def __init__(self, max_bytes: int = MAX_FRAME_BYTES):
        self.max_bytes = int(max_bytes)
        self._buffer = bytearray()

    def __len__(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> List[bytes]:
        """Buffer one chunk; return the frames it completed (in order)."""
        self._buffer.extend(data)
        frames: List[bytes] = []
        buffer = self._buffer
        header_size = FRAME_HEADER.size
        while len(buffer) >= header_size:
            (length,) = FRAME_HEADER.unpack_from(buffer, 0)
            if length > self.max_bytes:
                raise FrameTooLarge(length, self.max_bytes)
            end = header_size + length
            if len(buffer) < end:
                break
            frames.append(bytes(buffer[header_size:end]))
            del buffer[:end]
        return frames
