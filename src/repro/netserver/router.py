"""Shared-nothing multi-worker tier: tenant-affine router + worker fleet.

Scale-out for the network control plane.  A :class:`WorkerFleet` runs N
independent worker processes, each a full :class:`~repro.netserver.server.
NetworkServer` over its own ``StackService`` (own DB shards, own
write-ahead journal under ``<journal_dir>/worker-<i>``).  In front, a
:class:`RouterServer` accepts client connections and forwards each
envelope to the worker chosen by :func:`worker_for_tenant` — the same
:func:`~repro.sim.rng.stable_name_key` hash the
``ShardedPerformanceDatabase`` routes writes with.  A tenant's sessions,
evaluations and journal records therefore all live on exactly one
worker: the workers share *nothing*, no cross-process coordination
exists, and crash recovery is per-worker
(``ShardedPerformanceDatabase.recover`` on that worker's journal dir).

Responses are forwarded verbatim (opaque frames) and interleave in
completion order: one client connection pipelining requests for tenants
on different workers observes genuinely out-of-order completion,
correlated by the ``request_id`` each envelope echoes.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.netserver.framing import (
    MAX_RESPONSE_BYTES,
    FrameBuffer,
    FrameTooLarge,
    encode_frame,
    frame_text,
)
from repro.netserver.server import NetworkServer, ServerLimits, tenant_of_envelope
from repro.service.envelopes import (
    Response,
    ServiceError,
    ServiceErrorCode,
    decode_wire_line,
)
from repro.service.service import StackService
from repro.sim.rng import stable_name_key

__all__ = ["worker_for_tenant", "RouterServer", "WorkerFleet", "worker_main"]


def worker_for_tenant(tenant: str, n_workers: int) -> int:
    """Session affinity by the DB's own shard hash (process-stable)."""
    return stable_name_key(str(tenant)) % int(n_workers)


class RouterServer:
    """Accepts client connections; forwards envelopes by tenant affinity."""

    def __init__(
        self,
        worker_addrs: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        max_connections: int = 8192,
        drain_timeout: float = 30.0,
    ):
        if not worker_addrs:
            raise ValueError("router needs at least one worker address")
        self.worker_addrs = [(str(h), int(p)) for h, p in worker_addrs]
        self.host = host
        self.port = int(port)
        self.max_connections = int(max_connections)
        self.drain_timeout = float(drain_timeout)
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Set["_RoutedConnection"] = set()
        self._draining = False
        self.n_connections = 0
        self.n_forwarded = 0
        self.n_refused = 0

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self.route_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def drain(self) -> None:
        """Stop accepting, let every forwarded request answer, then close."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        connections = list(self._connections)
        for connection in connections:
            connection.begin_drain()
        if connections:
            await asyncio.gather(
                *(connection.done.wait() for connection in connections)
            )

    async def route_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One client connection end to end.

        Wire-dispatch entry point (RL002): peer input and upstream
        failures become structured failure frames or a closed socket,
        never an escaping exception.
        """
        connection: Optional[_RoutedConnection] = None
        try:
            if self._draining or len(self._connections) >= self.max_connections:
                self.n_refused += 1
                reason = (
                    "router is draining"
                    if self._draining
                    else f"connection limit {self.max_connections} reached"
                )
                response = Response.failure(ServiceErrorCode.QUOTA_EXCEEDED, reason)
                writer.write(frame_text(response.to_json()))
                await writer.drain()
            else:
                self.n_connections += 1
                connection = _RoutedConnection(self, reader, writer)
                self._connections.add(connection)
                await connection.run()
        except Exception:
            pass  # one broken connection must never take down the router
        finally:
            if connection is not None:
                self._connections.discard(connection)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


class _RoutedConnection:
    """One client stream fanned across per-worker upstream connections.

    The reader groups each chunk's frames by target worker and forwards
    every group with a single write; one pump task per upstream copies
    complete response frames back (a write lock keeps frames from
    different workers from interleaving mid-frame).  ``_outstanding``
    counts forwarded-but-unanswered envelopes so EOF/drain can settle
    before teardown.
    """

    def __init__(
        self,
        router: RouterServer,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ):
        self.router = router
        self.reader = reader
        self.writer = writer
        self.done = asyncio.Event()
        self._upstreams: Dict[int, Tuple[asyncio.StreamWriter, asyncio.Task]] = {}
        self._outstanding = 0
        self._settled = asyncio.Event()
        self._write_lock = asyncio.Lock()
        self._read_task: Optional[asyncio.Task] = None

    def begin_drain(self) -> None:
        if self._read_task is not None:
            self._read_task.cancel()

    async def run(self) -> None:
        self._read_task = asyncio.create_task(self._read_loop())
        try:
            try:
                await self._read_task
            except asyncio.CancelledError:
                if not self._read_task.cancelled():
                    raise  # *we* were cancelled (teardown), not the reader
                # else: drain stopped the reader; settle what is in flight
            if self._outstanding > 0:
                try:
                    await asyncio.wait_for(
                        self._wait_settled(), timeout=self.router.drain_timeout
                    )
                except (TimeoutError, asyncio.TimeoutError):
                    pass  # a wedged worker must not hold teardown hostage
            for upstream_writer, _pump in self._upstreams.values():
                upstream_writer.close()
            for _upstream_writer, pump in self._upstreams.values():
                try:
                    await asyncio.wait_for(pump, timeout=5.0)
                except Exception:
                    pump.cancel()
        finally:
            if self._read_task is not None and not self._read_task.done():
                self._read_task.cancel()
            for _upstream_writer, pump in self._upstreams.values():
                if not pump.done():
                    pump.cancel()
            self.done.set()

    # -- client → workers --------------------------------------------------
    async def _read_loop(self) -> None:
        buffer = FrameBuffer()
        reader = self.reader
        n_workers = len(self.router.worker_addrs)
        while True:
            try:
                chunk = await reader.read(65536)
            except (ConnectionError, OSError):
                break
            if not chunk:
                break  # client EOF
            try:
                frames = buffer.feed(chunk)
            except FrameTooLarge as error:
                await self._fail_local(ServiceErrorCode.BAD_REQUEST, str(error))
                break  # hostile length header: the stream cannot resync
            if not frames:
                continue
            groups: Dict[int, List[bytes]] = {}
            for frame in frames:
                try:
                    payload = decode_wire_line(
                        frame.decode("utf-8", errors="replace")
                    )
                except ServiceError as error:
                    # Router answers malformed envelopes itself — no
                    # point burning a worker round trip.
                    await self._fail_local(error.code, error.message)
                    continue
                index = worker_for_tenant(tenant_of_envelope(payload), n_workers)
                groups.setdefault(index, []).append(frame)
            for index, group in groups.items():
                await self._forward(index, group)

    async def _forward(self, index: int, frames: List[bytes]) -> None:
        try:
            upstream = await self._upstream(index)
            data = b"".join(encode_frame(frame) for frame in frames)
            self._outstanding += len(frames)
            self._settled.clear()
            self.router.n_forwarded += len(frames)
            upstream.write(data)
            await upstream.drain()
        except (ConnectionError, OSError) as error:
            for _ in frames:
                await self._fail_local(
                    ServiceErrorCode.INTERNAL,
                    f"worker {index} unreachable: {type(error).__name__}: {error}",
                )

    async def _upstream(self, index: int) -> asyncio.StreamWriter:
        entry = self._upstreams.get(index)
        if entry is not None:
            return entry[0]
        host, port = self.router.worker_addrs[index]
        upstream_reader, upstream_writer = await asyncio.open_connection(host, port)
        pump = asyncio.create_task(self._pump(upstream_reader))
        self._upstreams[index] = (upstream_writer, pump)
        return upstream_writer

    # -- workers → client --------------------------------------------------
    async def _pump(self, upstream_reader: asyncio.StreamReader) -> None:
        buffer = FrameBuffer(max_bytes=MAX_RESPONSE_BYTES)
        writer = self.writer
        while True:
            try:
                chunk = await upstream_reader.read(65536)
            except (ConnectionError, OSError):
                break
            if not chunk:
                break
            try:
                frames = buffer.feed(chunk)
            except FrameTooLarge:
                break  # worker is speaking garbage; drop the upstream
            if not frames:
                continue
            data = b"".join(
                encode_frame(frame, MAX_RESPONSE_BYTES) for frame in frames
            )
            async with self._write_lock:
                try:
                    writer.write(data)
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass  # client gone; keep consuming so the worker unblocks
            self._note_settled(len(frames))

    def _note_settled(self, n_frames: int) -> None:
        self._outstanding -= n_frames
        if self._outstanding <= 0:
            self._settled.set()

    async def _wait_settled(self) -> None:
        while self._outstanding > 0:
            self._settled.clear()
            await self._settled.wait()

    async def _fail_local(self, code: ServiceErrorCode, message: str) -> None:
        response = Response.failure(code, message)
        async with self._write_lock:
            try:
                self.writer.write(frame_text(response.to_json()))
                await self.writer.drain()
            except (ConnectionError, OSError):
                pass


# ---------------------------------------------------------------------------
# Worker fleet (multiprocessing)
# ---------------------------------------------------------------------------

async def _worker_serve(
    index: int,
    ready: Any,
    host: str,
    n_nodes: int,
    seed: int,
    n_shards: int,
    default_quota: Optional[int],
    journal_dir: Optional[str],
    limits: Optional[ServerLimits],
) -> None:
    service = StackService(
        n_nodes=n_nodes, seed=seed, n_shards=n_shards, default_quota=default_quota
    )
    worker_dir = (
        None if journal_dir is None else os.path.join(journal_dir, f"worker-{index}")
    )
    server = NetworkServer(
        service, host=host, port=0, limits=limits, journal_dir=worker_dir
    )
    await server.start()
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    loop.add_signal_handler(signal.SIGTERM, stop.set)
    loop.add_signal_handler(signal.SIGINT, stop.set)
    ready.send(("ready", server.host, server.port))
    ready.close()
    await stop.wait()
    await server.drain()


def worker_main(
    index: int,
    ready: Any,
    host: str,
    n_nodes: int,
    seed: int,
    n_shards: int,
    default_quota: Optional[int],
    journal_dir: Optional[str],
    limits: Optional[ServerLimits],
) -> None:
    """Process entry point of one fleet worker (spawn-safe, module level).

    Builds its own ``StackService`` (shared-nothing by construction —
    every worker gets the *same* seed, so a tenant's deterministic RNG
    derivation does not depend on which worker its sessions land on),
    serves until SIGTERM/SIGINT, then drains gracefully: in-flight
    requests finish, responses flush, and the journal is checkpointed.
    """
    asyncio.run(
        _worker_serve(
            index, ready, host, n_nodes, seed, n_shards, default_quota,
            journal_dir, limits,
        )
    )


class WorkerFleet:
    """N worker processes, started with spawn (fork-safety by decree)."""

    def __init__(
        self,
        n_workers: int,
        host: str = "127.0.0.1",
        n_nodes: int = 8,
        seed: int = 0,
        n_shards: int = 4,
        default_quota: Optional[int] = None,
        journal_dir: Optional[str] = None,
        limits: Optional[ServerLimits] = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.n_workers = int(n_workers)
        self.host = host
        self.n_nodes = int(n_nodes)
        self.seed = int(seed)
        self.n_shards = int(n_shards)
        self.default_quota = default_quota
        self.journal_dir = journal_dir
        self.limits = limits
        self.addrs: List[Tuple[str, int]] = []
        self._procs: List[Any] = []

    def worker_journal_dir(self, index: int) -> Optional[str]:
        """Where worker ``index`` journals (recovery entry point)."""
        if self.journal_dir is None:
            return None
        return os.path.join(self.journal_dir, f"worker-{index}")

    def start(self, ready_timeout: float = 60.0) -> List[Tuple[str, int]]:
        """Spawn the workers; returns their (host, port) listen addresses."""
        context = multiprocessing.get_context("spawn")
        pipes = []
        for index in range(self.n_workers):
            parent, child = context.Pipe()
            # Daemonic: a crashed parent cannot leak workers (the journal
            # makes the abrupt kill recoverable); fleet.stop() still gets
            # the graceful SIGTERM drain.
            proc = context.Process(
                target=worker_main,
                args=(
                    index, child, self.host, self.n_nodes, self.seed,
                    self.n_shards, self.default_quota, self.journal_dir,
                    self.limits,
                ),
                daemon=True,
            )
            proc.start()
            child.close()
            self._procs.append(proc)
            pipes.append(parent)
        for index, parent in enumerate(pipes):
            if not parent.poll(ready_timeout):
                self.stop()
                raise RuntimeError(f"worker {index} did not report ready")
            try:
                message = parent.recv()
            except EOFError:
                self.stop()
                raise RuntimeError(f"worker {index} died during startup") from None
            parent.close()
            self.addrs.append((message[1], message[2]))
        return list(self.addrs)

    def stop(self, timeout: float = 30.0) -> None:
        """SIGTERM every worker (graceful drain + checkpoint), then reap."""
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()  # SIGTERM: the worker drains on this
        for proc in self._procs:
            proc.join(timeout)
            if proc.is_alive():
                proc.kill()
                proc.join(5.0)
        self._procs = []

    def kill(self) -> None:
        """SIGKILL every worker — the crash the journal exists for."""
        for proc in self._procs:
            if proc.is_alive():
                proc.kill()
        for proc in self._procs:
            proc.join(10.0)
        self._procs = []

    def __enter__(self) -> "WorkerFleet":
        self.start()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.stop()
