"""Network clients for the framed-envelope transport.

:class:`AsyncServiceClient` is the asyncio-native client: calls are
*pipelined* — many may be awaited concurrently over one connection, each
correlated by the ``request_id`` its envelope carries, so responses may
arrive in any order (and do, behind the multi-worker router).  The
request/response semantics are identical to the in-process
:class:`~repro.service.client.ServiceClient`: same envelopes, same error
codes, same raising helpers.

:class:`NetworkServiceClient` wraps it for synchronous callers by
parking an event loop on a background thread — it is a drop-in for
``ServiceClient`` in scripts and tests, down to reusing its
:class:`~repro.service.client.SessionHandle`.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
from typing import Any, Dict, List, Mapping, Optional

from repro.netserver.framing import MAX_RESPONSE_BYTES, frame_text, read_frame
from repro.service.client import ServiceCallError, SessionHandle
from repro.service.envelopes import Request, Response

__all__ = ["AsyncServiceClient", "AsyncSessionHandle", "NetworkServiceClient"]


class AsyncServiceClient:
    """Pipelined framed-envelope client (construct inside a running loop)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self._request_ids = itertools.count(1)
        self._pending: Dict[str, asyncio.Future] = {}
        #: Responses whose request id matched nothing we sent (transport
        #: level failures answer with request id "0") — kept for
        #: inspection instead of silently dropped.
        self.unmatched: List[Response] = []
        self._closed = False
        self._reader_task = asyncio.create_task(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    # -- calls -------------------------------------------------------------
    async def call(
        self, op: str, session: Optional[str] = None, **args: Any
    ) -> Response:
        """Send one command; resolves when *its* response arrives.

        Concurrent ``call``\\ s share the connection: ``asyncio.gather``
        over many of them is the pipelined fast path.
        """
        if self._closed:
            raise ConnectionError("client is closed")
        request = Request(
            op=op,
            args=args,
            session=session,
            request_id=f"r{next(self._request_ids)}",
        )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending[request.request_id] = future
        self.writer.write(frame_text(request.to_json()))
        await self.writer.drain()
        return await future

    async def result(
        self, op: str, session: Optional[str] = None, **args: Any
    ) -> Any:
        """Like :meth:`call` but unwraps the result, raising on error."""
        response = await self.call(op, session=session, **args)
        if not response.ok:
            raise ServiceCallError(response)
        return response.result

    async def open_session(
        self,
        tenant: str,
        role: str = "monitor",
        quota: Optional[int] = None,
        scope_hostnames: Optional[list] = None,
    ) -> "AsyncSessionHandle":
        args: Dict[str, Any] = {"tenant": tenant, "role": role}
        if quota is not None:
            args["quota"] = quota
        if scope_hostnames is not None:
            args["scope_hostnames"] = scope_hostnames
        info = await self.result("session.open", **args)
        return AsyncSessionHandle(self, info["session"], info)

    async def close(self) -> None:
        self._closed = True
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except Exception:
            pass
        self._fail_pending("client closed with calls in flight")

    async def __aenter__(self) -> "AsyncServiceClient":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        await self.close()

    # -- response demultiplexing ------------------------------------------
    async def _read_loop(self) -> None:
        while True:
            try:
                frame = await read_frame(self.reader, max_bytes=MAX_RESPONSE_BYTES)
            except asyncio.CancelledError:
                raise
            except Exception as error:
                self._fail_pending(f"connection lost: {type(error).__name__}: {error}")
                return
            if frame is None:
                self._fail_pending("server closed the connection")
                return
            try:
                response = Response.from_json(frame.decode("utf-8"))
            except Exception:
                self._fail_pending("server sent an undecodable frame")
                return
            future = self._pending.pop(response.request_id, None)
            if future is not None and not future.done():
                future.set_result(response)
            else:
                self.unmatched.append(response)

    def _fail_pending(self, reason: str) -> None:
        self._closed = True
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(ConnectionError(reason))


class AsyncSessionHandle:
    """One open session over the network; carries its id on every call."""

    def __init__(
        self, client: AsyncServiceClient, session_id: str, info: Mapping[str, Any]
    ):
        self.client = client
        self.session_id = session_id
        self.info = dict(info)

    async def call(self, op: str, **args: Any) -> Response:
        return await self.client.call(op, session=self.session_id, **args)

    async def result(self, op: str, **args: Any) -> Any:
        return await self.client.result(op, session=self.session_id, **args)

    async def close(self) -> Any:
        return await self.result("session.close")

    async def __aenter__(self) -> "AsyncSessionHandle":
        return self

    async def __aexit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        # Closing an already-closed session is a NO_SESSION error — fine
        # to ignore on context exit (mirrors the sync SessionHandle).
        await self.client.call("session.close", session=self.session_id)


class NetworkServiceClient:
    """Synchronous facade: ``ServiceClient`` semantics over a socket.

    Runs a private event loop on a daemon thread; every method is a
    blocking ``run_coroutine_threadsafe`` round trip.  Reuses the
    in-process :class:`~repro.service.client.SessionHandle`, which only
    needs ``call``/``result`` — so code written against ``ServiceClient``
    ports by swapping the constructor.
    """

    def __init__(self, host: str, port: int, connect_timeout: float = 30.0):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="netserver-client", daemon=True
        )
        self._thread.start()
        future = asyncio.run_coroutine_threadsafe(
            AsyncServiceClient.connect(host, port), self._loop
        )
        self._client = future.result(connect_timeout)

    def call(self, op: str, session: Optional[str] = None, **args: Any) -> Response:
        return asyncio.run_coroutine_threadsafe(
            self._client.call(op, session=session, **args), self._loop
        ).result()

    def result(self, op: str, session: Optional[str] = None, **args: Any) -> Any:
        response = self.call(op, session=session, **args)
        if not response.ok:
            raise ServiceCallError(response)
        return response.result

    def open_session(
        self,
        tenant: str,
        role: str = "monitor",
        quota: Optional[int] = None,
        scope_hostnames: Optional[list] = None,
    ) -> SessionHandle:
        args: Dict[str, Any] = {"tenant": tenant, "role": role}
        if quota is not None:
            args["quota"] = quota
        if scope_hostnames is not None:
            args["scope_hostnames"] = scope_hostnames
        info = self.result("session.open", **args)
        return SessionHandle(self, info["session"], info)

    def close(self) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self._client.close(), self._loop
            ).result(10.0)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(10.0)
            self._loop.close()

    def __enter__(self) -> "NetworkServiceClient":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        self.close()
