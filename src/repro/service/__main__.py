"""JSON-lines driver / REPL: ``python -m repro.service``.

Reads one :class:`~repro.service.envelopes.Request` envelope per input
line, writes one :class:`~repro.service.envelopes.Response` envelope per
output line — the scriptable transport any real server front-end would
replicate over a socket::

    printf '%s\n' \
      '{"op":"session.open","args":{"tenant":"acme","role":"resource_manager"}}' \
      '{"op":"power.set_caps","session":"s0001-acme","args":{"indices":[0,1],"watts":300}}' \
      | python -m repro.service --nodes 4

Blank lines and ``#`` comments are skipped.  On a TTY a prompt and a
banner are shown (``exit`` / ``quit`` leave the REPL).  Envelope errors
(bad JSON, unknown fields) come back as structured error responses on
stdout like every other failure — the driver never crashes on input.
"""

from __future__ import annotations

import argparse
import sys
from typing import IO, Optional, Sequence

from repro.service.envelopes import PROTOCOL_VERSION
from repro.service.service import StackService

__all__ = ["main", "run_stream"]


def run_stream(service: StackService, lines: IO[str], out: IO[str], prompt: str = "") -> int:
    """Drive the service with JSON lines; returns the number of commands."""
    handled = 0
    while True:
        if prompt:
            out.write(prompt)
            out.flush()
        line = lines.readline()
        if not line:
            break
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if prompt and line in ("exit", "quit"):
            break
        try:
            response = service.handle_wire(line)
        except Exception as error:  # the REPL loop must outlive any request
            response = (
                '{"ok": false, "code": "SVC_RET_INTERNAL", '
                f'"error": "unhandled {type(error).__name__} in transport"}}'
            )
        out.write(response + "\n")
        out.flush()
        handled += 1
    return handled


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Control-plane service: JSON-lines requests on stdin, "
        "responses on stdout.",
    )
    parser.add_argument("--nodes", type=int, default=8, help="cluster size")
    parser.add_argument("--seed", type=int, default=0, help="service RNG seed")
    parser.add_argument("--shards", type=int, default=4, help="performance DB shards")
    parser.add_argument(
        "--quota", type=int, default=None, help="default per-session evaluation quota"
    )
    args = parser.parse_args(argv)

    service = StackService(
        n_nodes=args.nodes,
        seed=args.seed,
        n_shards=args.shards,
        default_quota=args.quota,
    )
    interactive = sys.stdin.isatty()
    if interactive:
        print(
            f"repro.service protocol {PROTOCOL_VERSION} — "
            f"{args.nodes} nodes, {args.shards} shards. One JSON request "
            'per line, e.g. {"op":"service.describe"}; exit with "quit".',
            file=sys.stderr,
        )
    run_stream(service, sys.stdin, sys.stdout, prompt="> " if interactive else "")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
