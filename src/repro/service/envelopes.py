"""Typed, JSON-round-trippable request/response envelopes.

The control plane's wire format: every command enters the stack as a
:class:`Request` and leaves it as a :class:`Response`, both plain frozen
dataclasses that convert losslessly to/from dictionaries and JSON lines.
The envelopes carry a protocol version (checked on dispatch), a caller
request id (echoed back verbatim, so an async client can correlate), an
optional session id, and — on failure — a structured error with a spec
style code instead of a raised exception.

Error codes extend the Power API's (:class:`repro.powerapi.context.ErrorCode`):
power-plane failures keep their exact ``PWR_RET_*`` values on the wire,
service-plane failures use a parallel ``SVC_RET_*`` namespace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Mapping, Optional, Tuple

import numpy as np

from repro.powerapi.context import ErrorCode as PowerErrorCode

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_WIRE_BYTES",
    "ServiceErrorCode",
    "ServiceError",
    "Request",
    "Response",
    "jsonify",
    "wire_limit_error",
    "decode_wire_line",
    "parse_wire_request",
]

#: Wire protocol version.  Major mismatch is rejected with
#: ``SVC_RET_UNSUPPORTED_PROTOCOL``; minor revisions are compatible.
PROTOCOL_VERSION = "1.0"

#: Upper bound on one wire envelope, shared by *every* transport: the
#: stdin JSON-lines driver caps its request lines here, and the framed
#: TCP transport (``repro.netserver``) rejects any frame whose declared
#: length exceeds it.  A transport feeding the service unbounded garbage
#: gets a structured ``SVC_RET_BAD_REQUEST``, not memory pressure from
#: parsing an arbitrarily large document.
MAX_WIRE_BYTES = 1 << 20


class ServiceErrorCode(str, Enum):
    """Structured error codes carried by failure responses.

    The first block mirrors :class:`~repro.powerapi.context.ErrorCode`
    value-for-value: a role-denied power command answers with the *same*
    code the ``PowerApiContext`` would raise, just wrapped in an envelope
    instead of an exception.
    """

    NOT_IMPLEMENTED = PowerErrorCode.NOT_IMPLEMENTED.value
    NO_PERMISSION = PowerErrorCode.NO_PERMISSION.value
    BAD_VALUE = PowerErrorCode.BAD_VALUE.value
    NO_OBJECT = PowerErrorCode.NO_OBJECT.value
    OUT_OF_SCOPE = PowerErrorCode.OUT_OF_SCOPE.value

    UNSUPPORTED_PROTOCOL = "SVC_RET_UNSUPPORTED_PROTOCOL"
    UNKNOWN_COMMAND = "SVC_RET_UNKNOWN_COMMAND"
    BAD_REQUEST = "SVC_RET_BAD_REQUEST"
    NO_SESSION = "SVC_RET_NO_SESSION"
    NO_JOB = "SVC_RET_NO_JOB"
    NO_TUNER = "SVC_RET_NO_TUNER"
    QUOTA_EXCEEDED = "SVC_RET_QUOTA_EXCEEDED"
    SNAPSHOT_CORRUPT = "SVC_RET_SNAPSHOT_CORRUPT"
    INTERNAL = "SVC_RET_INTERNAL"


class ServiceError(RuntimeError):
    """A failed service command with its structured error code.

    Raised internally by command handlers; the dispatcher converts it to
    a failure :class:`Response` — it never escapes the facade.
    """

    def __init__(self, code: ServiceErrorCode, message: str):
        super().__init__(f"{code.value}: {message}")
        self.code = code
        self.message = message


def jsonify(value: Any) -> Any:
    """Deep-convert a result payload to plain JSON types.

    Handlers return whatever is natural (numpy scalars, arrays, tuples);
    the envelope layer normalises so ``to_json`` → ``from_json`` is an
    identity on every response the service emits.
    """
    if isinstance(value, (str, type(None))):
        return value
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if isinstance(value, Enum):
        return value.value
    if isinstance(value, np.ndarray):
        return [jsonify(v) for v in value.tolist()]
    if isinstance(value, Mapping):
        return {str(k): jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonify(v) for v in value]
    raise TypeError(f"result payload of type {type(value).__name__} is not wire-safe")


def _require_str(data: Mapping[str, Any], key: str, default: Optional[str] = None) -> str:
    value = data.get(key, default)
    if not isinstance(value, str) or not value:
        raise ServiceError(
            ServiceErrorCode.BAD_REQUEST, f"envelope field {key!r} must be a non-empty string"
        )
    return value


@dataclass(frozen=True)
class Request:
    """One command envelope: operation, arguments, session, correlation id."""

    op: str
    args: Mapping[str, Any] = field(default_factory=dict)
    session: Optional[str] = None
    request_id: str = "0"
    protocol: str = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        object.__setattr__(self, "args", dict(self.args))

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "protocol": self.protocol,
            "op": self.op,
            "args": jsonify(self.args),
            "request_id": self.request_id,
        }
        if self.session is not None:
            out["session"] = self.session
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Request":
        if not isinstance(data, Mapping):
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, "request must be an object")
        args = data.get("args", {})
        if not isinstance(args, Mapping):
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, "'args' must be an object")
        session = data.get("session")
        if session is not None and not isinstance(session, str):
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, "'session' must be a string")
        unknown = sorted(set(data) - {"protocol", "op", "args", "session", "request_id"})
        if unknown:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST, f"unknown envelope field(s) {unknown}"
            )
        return cls(
            op=_require_str(data, "op"),
            args=dict(args),
            session=session,
            request_id=str(data.get("request_id", "0")),
            protocol=_require_str(data, "protocol", default=PROTOCOL_VERSION),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Request":
        try:
            data = json.loads(text)
        except ValueError as error:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST, f"request is not valid JSON: {error}"
            ) from error
        return cls.from_dict(data)


@dataclass(frozen=True)
class Response:
    """The answer envelope: result on success, structured error on failure."""

    ok: bool
    result: Any = None
    #: ``{"code": ..., "message": ...}`` when ``ok`` is false.
    error: Optional[Mapping[str, str]] = None
    request_id: str = "0"
    session: Optional[str] = None
    protocol: str = PROTOCOL_VERSION

    def __post_init__(self) -> None:
        if self.error is not None:
            object.__setattr__(self, "error", dict(self.error))

    @classmethod
    def success(cls, result: Any, request: Optional[Request] = None) -> "Response":
        return cls(
            ok=True,
            result=jsonify(result),
            request_id=request.request_id if request is not None else "0",
            session=request.session if request is not None else None,
        )

    @classmethod
    def failure(
        cls,
        code: ServiceErrorCode,
        message: str,
        request: Optional[Request] = None,
    ) -> "Response":
        return cls(
            ok=False,
            error={"code": code.value, "message": str(message)},
            request_id=request.request_id if request is not None else "0",
            session=request.session if request is not None else None,
        )

    @property
    def error_code(self) -> Optional[str]:
        return None if self.error is None else self.error.get("code")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "protocol": self.protocol,
            "ok": self.ok,
            "request_id": self.request_id,
        }
        if self.session is not None:
            out["session"] = self.session
        if self.ok:
            out["result"] = jsonify(self.result)
        else:
            out["error"] = dict(self.error or {})
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Response":
        return cls(
            ok=bool(data["ok"]),
            result=data.get("result"),
            error=data.get("error"),
            request_id=str(data.get("request_id", "0")),
            session=data.get("session"),
            protocol=str(data.get("protocol", PROTOCOL_VERSION)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Response":
        return cls.from_dict(json.loads(text))


def wire_limit_error(n_bytes: int) -> ServiceError:
    """The structured oversize failure every transport answers with."""
    return ServiceError(
        ServiceErrorCode.BAD_REQUEST,
        f"request of {n_bytes} bytes exceeds the {MAX_WIRE_BYTES}-byte wire limit",
    )


def decode_wire_line(line: str) -> Dict[str, Any]:
    """One shared oversize/malformed gate for every wire transport.

    Enforces :data:`MAX_WIRE_BYTES` and JSON well-formedness, converting
    *any* parse failure — including pathological input whose failure is
    not a ``ValueError`` (deep nesting hitting the recursion limit, say)
    — into a structured :class:`ServiceError`.  Returns the raw envelope
    dictionary so a routing transport can inspect tenant/session fields
    before full :class:`Request` validation.
    """
    if len(line) > MAX_WIRE_BYTES:
        raise wire_limit_error(len(line))
    try:
        data = json.loads(line)
    except Exception as error:  # json can fail beyond ValueError on hostile input
        raise ServiceError(
            ServiceErrorCode.BAD_REQUEST,
            f"malformed request: {type(error).__name__}: {error}",
        ) from error
    if not isinstance(data, Mapping):
        raise ServiceError(ServiceErrorCode.BAD_REQUEST, "request must be an object")
    return dict(data)


def parse_wire_request(line: str) -> "Request":
    """Decode one wire line into a validated :class:`Request`.

    The composition every transport uses: :func:`decode_wire_line`
    (size + JSON shape) followed by :meth:`Request.from_dict` (envelope
    fields), all failures structured :class:`ServiceError`\\ s.
    """
    return Request.from_dict(decode_wire_line(line))


def protocol_compatible(protocol: str) -> Tuple[bool, str]:
    """Whether a request's protocol version is servable (major must match)."""
    ours = PROTOCOL_VERSION.split(".", 1)[0]
    theirs = protocol.split(".", 1)[0]
    return theirs == ours, ours
