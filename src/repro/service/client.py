"""In-process client for :class:`~repro.service.service.StackService`.

The client always talks *wire*: every call serialises its request
envelope to JSON, hands the JSON line to the service, and parses the
JSON line that comes back.  There is no in-process fast path — so any
command that works here works identically through a socket/HTTP
front-end, and a test driving the client has exercised the full
dict → wire → dict round trip by construction.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Mapping, Optional

from repro.service.envelopes import Request, Response
from repro.service.service import StackService

__all__ = ["ServiceClient", "SessionHandle", "ServiceCallError"]


class ServiceCallError(RuntimeError):
    """Raised by the raising helpers when a command answers with an error."""

    def __init__(self, response: Response):
        error = response.error or {}
        super().__init__(f"{error.get('code')}: {error.get('message')}")
        self.response = response
        self.code = error.get("code")


class ServiceClient:
    """Talks JSON lines to a service instance (or any compatible callable)."""

    def __init__(self, service: StackService):
        self.service = service
        self._request_ids = itertools.count(1)

    def call(
        self,
        op: str,
        session: Optional[str] = None,
        **args: Any,
    ) -> Response:
        """Send one command; returns the parsed :class:`Response`."""
        request = Request(
            op=op,
            args=args,
            session=session,
            request_id=f"r{next(self._request_ids)}",
        )
        wire_out = request.to_json()
        wire_in = self.service.handle_wire(wire_out)
        return Response.from_json(wire_in)

    def result(self, op: str, session: Optional[str] = None, **args: Any) -> Any:
        """Like :meth:`call` but unwraps the result, raising on error."""
        response = self.call(op, session=session, **args)
        if not response.ok:
            raise ServiceCallError(response)
        return response.result

    def open_session(
        self,
        tenant: str,
        role: str = "monitor",
        quota: Optional[int] = None,
        scope_hostnames: Optional[list] = None,
    ) -> "SessionHandle":
        args: Dict[str, Any] = {"tenant": tenant, "role": role}
        if quota is not None:
            args["quota"] = quota
        if scope_hostnames is not None:
            args["scope_hostnames"] = scope_hostnames
        info = self.result("session.open", **args)
        return SessionHandle(self, info["session"], info)


class SessionHandle:
    """One open session: every call carries the session id automatically."""

    def __init__(self, client: ServiceClient, session_id: str, info: Mapping[str, Any]):
        self.client = client
        self.session_id = session_id
        self.info = dict(info)

    def call(self, op: str, **args: Any) -> Response:
        return self.client.call(op, session=self.session_id, **args)

    def result(self, op: str, **args: Any) -> Any:
        return self.client.result(op, session=self.session_id, **args)

    def close(self) -> Any:
        return self.result("session.close")

    def __enter__(self) -> "SessionHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Closing an already-closed session is a NO_SESSION error — fine
        # to ignore on context exit.
        self.call("session.close")
