"""The control-plane facade: one versioned service over every stack layer.

:class:`StackService` is the transport-agnostic entry point the paper's
argument calls for — the layers of the stack (site → resource manager →
job runtime → node hardware) reachable through *one* standardised,
role-checked command surface instead of per-subsystem Python APIs.
Commands arrive as typed :class:`~repro.service.envelopes.Request`
envelopes and leave as :class:`~repro.service.envelopes.Response`
envelopes; failures are structured error codes, never exceptions through
the facade.

Sessions are first-class and multi-tenant: :meth:`StackService.handle`
dispatches every command under the session's Power API
:class:`~repro.powerapi.roles.Role` (the same permission matrix
``PowerApiContext`` enforces — a role-denied command answers with the
same ``PWR_RET_*`` code the context would raise), a deterministic
per-tenant RNG stream seeds the session's tuning searches, and an
optional evaluation quota bounds what one tenant can spend.

Batch commands ride the vectorised kernels: one ``power.set_caps``
envelope for an index array of nodes lands in a single
:meth:`~repro.hardware.cluster.Cluster.apply_power_caps` pass, and every
result — ask/tell tuning telemetry, served autotuning runs, whole
campaigns — is captured in a
:class:`~repro.telemetry.sharding.ShardedPerformanceDatabase` routed by
tenant/session key.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.apps.base import Application
from repro.apps.generator import JobRequest
from repro.apps.hypre import HypreLaplacian
from repro.apps.kernels import TileableKernel
from repro.apps.lulesh import LuleshProxy
from repro.apps.stream import DgemmKernel, StreamTriad
from repro.core.objectives import PENALTY_OBJECTIVE
from repro.core.search.base import SearchAlgorithm, make_search
from repro.core.space import ParameterSpace
from repro.core.tuner import BatchAutotuner
from repro.experiments.campaign import Campaign
from repro.experiments.registry import build_scenario, list_use_cases
from repro.experiments.shared import make_cluster
from repro.hardware.cluster import Cluster
from repro.powerapi.context import PowerApiContext, PowerApiError
from repro.powerapi.objects import AttrName, ObjType
from repro.powerapi.roles import Role
from repro.resource_manager.job import JobState
from repro.resource_manager.slurm import PowerAwareScheduler, SchedulerConfig
from repro.runtime.base import JobRuntime
from repro.service.envelopes import (
    MAX_WIRE_BYTES,
    PROTOCOL_VERSION,
    Request,
    Response,
    ServiceError,
    ServiceErrorCode,
    parse_wire_request,
    protocol_compatible,
)
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.telemetry.database import (
    PerformanceDatabase,
    SnapshotCorruptError,
    objective_stats,
)
from repro.telemetry.sharding import ShardedPerformanceDatabase

__all__ = [
    "StackService",
    "Session",
    "CommandSpec",
    "ArgSpec",
    "EVALUATOR_REGISTRY",
    "register_evaluator",
]


# ---------------------------------------------------------------------------
# served evaluators (for tuning.run, which drives a BatchAutotuner here)
# ---------------------------------------------------------------------------
def quadratic_evaluator(config: Mapping[str, Any]) -> Dict[str, float]:
    """Sum of squared distances of numeric parameters from 1.0."""
    value = sum(
        (float(v) - 1.0) ** 2
        for v in config.values()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )
    return {"runtime_s": 0.1 + value}


def linear_evaluator(config: Mapping[str, Any]) -> Dict[str, float]:
    """Sum of numeric parameter values (smaller is better)."""
    value = sum(
        float(v)
        for v in config.values()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    )
    return {"runtime_s": 0.1 + abs(value)}


#: Named evaluators ``tuning.run`` may execute service-side.  Module-level
#: functions, so the batched tuner's process executor could ship them.
EVALUATOR_REGISTRY: Dict[str, Callable[[Mapping[str, Any]], Mapping[str, float]]] = {
    "quadratic": quadratic_evaluator,
    "linear": linear_evaluator,
}


def register_evaluator(
    name: str, evaluator: Callable[[Mapping[str, Any]], Mapping[str, float]]
) -> None:
    """Register a named evaluator for ``tuning.run`` commands."""
    EVALUATOR_REGISTRY[str(name)] = evaluator


#: Applications the ``jobs.submit`` envelope can instantiate by kind.
_APP_BUILDERS: Dict[str, Callable[..., Application]] = {
    "stream": StreamTriad,
    "dgemm": DgemmKernel,
    "hypre": HypreLaplacian,
    "lulesh": LuleshProxy,
    "kernel": TileableKernel,
}


def _build_application(spec: Any) -> Application:
    if isinstance(spec, str):
        spec = {"kind": spec}
    if not isinstance(spec, Mapping) or "kind" not in spec:
        raise ServiceError(
            ServiceErrorCode.BAD_REQUEST,
            "'app' must be a kind name or an object with a 'kind' field",
        )
    kind = spec["kind"]
    builder = _APP_BUILDERS.get(kind)
    if builder is None:
        raise ServiceError(
            ServiceErrorCode.BAD_REQUEST,
            f"unknown application kind {kind!r}; available: {sorted(_APP_BUILDERS)}",
        )
    kwargs = {k: v for k, v in spec.items() if k != "kind"}
    try:
        return builder(**kwargs)
    except (TypeError, ValueError) as error:
        raise ServiceError(
            ServiceErrorCode.BAD_REQUEST, f"bad application spec for {kind!r}: {error}"
        ) from error


# ---------------------------------------------------------------------------
# command metadata (the typed part of the envelopes)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ArgSpec:
    """One declared command argument: name, wire kind, required flag."""

    name: str
    kind: str = "any"  # str | int | number | bool | list | dict | any
    required: bool = False
    doc: str = ""


_KIND_CHECKS: Dict[str, Callable[[Any], bool]] = {
    "str": lambda v: isinstance(v, str),
    "int": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "bool": lambda v: isinstance(v, bool),
    "list": lambda v: isinstance(v, list),
    "dict": lambda v: isinstance(v, Mapping),
    "any": lambda v: True,
}


@dataclass(frozen=True)
class CommandSpec:
    """A dispatchable command: handler plus its typed argument contract."""

    op: str
    handler: Callable[..., Any]
    doc: str
    args: Tuple[ArgSpec, ...] = ()
    requires_session: bool = True

    def validate_args(self, given: Mapping[str, Any]) -> Dict[str, Any]:
        known = {spec.name: spec for spec in self.args}
        unknown = sorted(set(given) - set(known))
        if unknown:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"{self.op}: unknown argument(s) {unknown}; "
                f"accepted: {sorted(known)}",
            )
        missing = sorted(
            spec.name for spec in self.args if spec.required and spec.name not in given
        )
        if missing:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"{self.op}: missing required argument(s) {missing}",
            )
        for name, value in given.items():
            spec = known[name]
            if value is not None and not _KIND_CHECKS[spec.kind](value):
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    f"{self.op}: argument {name!r} must be of kind {spec.kind!r}",
                )
        return dict(given)

    def describe(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "doc": self.doc,
            "requires_session": self.requires_session,
            "args": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "required": spec.required,
                    "doc": spec.doc,
                }
                for spec in self.args
            ],
        }


# ---------------------------------------------------------------------------
# sessions
# ---------------------------------------------------------------------------
@dataclass
class _TuningState:
    """One open ask/tell tuning exchange inside a session."""

    tuner_id: str
    space: ParameterSpace
    search: SearchAlgorithm
    minimize: bool
    batch_size: int
    seed: int
    told: int = 0


@dataclass
class Session:
    """One tenant's handle on the service."""

    session_id: str
    tenant: str
    role: Role
    context: PowerApiContext
    streams: RandomStreams
    quota: Optional[int] = None
    used_evaluations: int = 0
    tuners: Dict[str, _TuningState] = field(default_factory=dict)
    _tuner_counter: int = 0
    #: The tenant's session ordinal (n-th session of this tenant) — part
    #: of the RNG stream derivation, so a restored session re-derives the
    #: exact streams the original had.
    ordinal: int = 1
    #: The scope restriction session.open applied, kept for snapshots.
    scope_hostnames: Optional[List[str]] = None

    def charge(self, evaluations: int) -> None:
        """Spend quota; structured error when the budget would overrun."""
        if self.quota is not None and self.used_evaluations + evaluations > self.quota:
            raise ServiceError(
                ServiceErrorCode.QUOTA_EXCEEDED,
                f"session {self.session_id!r} quota exhausted: "
                f"{self.used_evaluations}/{self.quota} used, {evaluations} requested",
            )
        self.used_evaluations += evaluations

    def info(self) -> Dict[str, Any]:
        return {
            "session": self.session_id,
            "tenant": self.tenant,
            "role": self.role.value,
            "quota": self.quota,
            "used_evaluations": self.used_evaluations,
            "open_tuners": sorted(self.tuners),
            "rng_seed": self.streams.seed,
        }


#: Roles allowed to drive the shared DES clock / whole-machine actions.
_OPERATOR_ROLES = (Role.RESOURCE_MANAGER, Role.ADMINISTRATOR)
#: Roles whose database queries see every tenant (site-wide read).
_SITE_READ_ROLES = (Role.MONITOR, Role.ADMINISTRATOR)
#: Read-only actor roles: telemetry only, no state mutation anywhere.
_READ_ONLY_ROLES = (Role.APPLICATION, Role.MONITOR)


class StackService:
    """Versioned multi-tenant control plane over the whole stack."""

    def __init__(
        self,
        cluster: Optional[Cluster] = None,
        n_nodes: int = 8,
        seed: int = 0,
        n_shards: int = 4,
        default_quota: Optional[int] = None,
        scheduler_config: Optional[SchedulerConfig] = None,
    ):
        self.cluster = cluster if cluster is not None else make_cluster(n_nodes, seed)
        self.seed = int(seed)
        self.env = Environment()
        self.scheduler = PowerAwareScheduler(
            self.env,
            self.cluster,
            config=scheduler_config,
            streams=RandomStreams(seed).spawn("service-scheduler"),
        )
        self.database = ShardedPerformanceDatabase(n_shards=n_shards, name="service")
        self.default_quota = default_quota
        self._streams = RandomStreams(seed)
        self._admin_context = PowerApiContext.for_cluster(
            self.cluster, role=Role.ADMINISTRATOR
        )
        self._node_index = {
            node.hostname: index for index, node in enumerate(self.cluster.nodes)
        }
        self._sessions: Dict[str, Session] = {}
        self._session_counter = 0
        self._tenant_counters: Dict[str, int] = {}
        self._job_counter = 0
        self._run_counter = 0
        #: One facade, many tenants: dispatch is serialised, so concurrent
        #: clients (threads, a real server front-end) can share the service.
        self._lock = threading.RLock()
        self._commands = self._build_commands()

    # -- dispatch ----------------------------------------------------------
    def handle(self, request: Request) -> Response:
        """Dispatch one envelope.  Never raises: failures are responses."""
        with self._lock:
            try:
                compatible, ours = protocol_compatible(request.protocol)
                if not compatible:
                    raise ServiceError(
                        ServiceErrorCode.UNSUPPORTED_PROTOCOL,
                        f"protocol {request.protocol!r} not served "
                        f"(this service speaks {PROTOCOL_VERSION})",
                    )
                spec = self._commands.get(request.op)
                if spec is None:
                    raise ServiceError(
                        ServiceErrorCode.UNKNOWN_COMMAND,
                        f"unknown command {request.op!r}; "
                        f"see service.describe for the command list",
                    )
                args = spec.validate_args(request.args)
                if spec.requires_session:
                    session = self._session_of(request)
                    result = spec.handler(session, **args)
                else:
                    result = spec.handler(**args)
                return Response.success(result, request=request)
            except ServiceError as error:
                return Response.failure(error.code, error.message, request=request)
            except PowerApiError as error:
                return Response.failure(
                    ServiceErrorCode(error.code.value), str(error), request=request
                )
            # Before ValueError: SnapshotCorruptError subclasses it, and
            # storage corruption must stay distinguishable on the wire.
            except SnapshotCorruptError as error:
                return Response.failure(
                    ServiceErrorCode.SNAPSHOT_CORRUPT, str(error), request=request
                )
            except ValueError as error:
                return Response.failure(
                    ServiceErrorCode.BAD_VALUE, str(error), request=request
                )
            except Exception as error:  # the facade never raises
                return Response.failure(
                    ServiceErrorCode.INTERNAL,
                    f"{type(error).__name__}: {error}",
                    request=request,
                )

    def handle_dict(self, payload: Mapping[str, Any]) -> Dict[str, Any]:
        """Dict → dict dispatch (what a JSON transport calls)."""
        try:
            request = Request.from_dict(payload)
        except ServiceError as error:
            return Response.failure(error.code, error.message).to_dict()
        return self.handle(request).to_dict()

    #: Upper bound on one wire line — the transport-shared limit from
    #: :data:`repro.service.envelopes.MAX_WIRE_BYTES` (the framed TCP
    #: transport enforces the same constant per frame).
    MAX_REQUEST_BYTES = MAX_WIRE_BYTES

    def handle_wire(self, line: str) -> str:
        """One JSON line in, one JSON line out (the stdin driver's path).

        Never raises: malformed, hostile or oversized input goes through
        the transport-shared :func:`~repro.service.envelopes.parse_wire_request`
        gate and comes back as a structured failure envelope.
        """
        try:
            request = parse_wire_request(line)
        except ServiceError as error:
            return Response.failure(error.code, error.message).to_json()
        except Exception as error:  # defensive: the gate itself must not crash
            return Response.failure(
                ServiceErrorCode.BAD_REQUEST,
                f"malformed request: {type(error).__name__}: {error}",
            ).to_json()
        return self.handle(request).to_json()

    def _session_of(self, request: Request) -> Session:
        if request.session is None:
            raise ServiceError(
                ServiceErrorCode.NO_SESSION,
                f"command {request.op!r} requires a session "
                "(open one with session.open)",
            )
        session = self._sessions.get(request.session)
        if session is None:
            raise ServiceError(
                ServiceErrorCode.NO_SESSION,
                f"unknown or closed session {request.session!r}",
            )
        return session

    # -- command table -----------------------------------------------------
    def _build_commands(self) -> Dict[str, CommandSpec]:
        specs = [
            CommandSpec(
                "service.ping",
                self._cmd_ping,
                "Liveness probe; echoes the payload.",
                (ArgSpec("payload", "any", doc="echoed back verbatim"),),
                requires_session=False,
            ),
            CommandSpec(
                "service.describe",
                self._cmd_describe,
                "Protocol version, command catalogue, cluster and shard facts.",
                (),
                requires_session=False,
            ),
            CommandSpec(
                "session.open",
                self._cmd_session_open,
                "Open a tenant session carrying a Power API role, an RNG "
                "stream and an evaluation quota.",
                (
                    ArgSpec("tenant", "str", required=True),
                    ArgSpec("role", "str", doc="Power API role (default monitor)"),
                    ArgSpec("quota", "int", doc="max chargeable evaluations"),
                    ArgSpec("scope_hostnames", "list", doc="restrict writes to these nodes"),
                ),
                requires_session=False,
            ),
            CommandSpec("session.info", self._cmd_session_info, "Session facts.", ()),
            CommandSpec("session.close", self._cmd_session_close, "Close this session.", ()),
            CommandSpec(
                "session.snapshot",
                self._cmd_session_snapshot,
                "Portable session-state snapshot (identity, role, quota, "
                "RNG derivation).  Open tuning exchanges are not captured.",
                (),
            ),
            CommandSpec(
                "session.restore",
                self._cmd_session_restore,
                "Recreate a session from a session.snapshot blob; RNG "
                "streams re-derive identically.",
                (ArgSpec("state", "dict", required=True, doc="session.snapshot result"),),
                requires_session=False,
            ),
            CommandSpec(
                "power.read",
                self._cmd_power_read,
                "Read one attribute of one power object (role-checked).",
                (
                    ArgSpec("path", "str", required=True),
                    ArgSpec("attr", "str", required=True),
                ),
            ),
            CommandSpec(
                "power.write",
                self._cmd_power_write,
                "Write one attribute of one power object (role- and scope-checked).",
                (
                    ArgSpec("path", "str", required=True),
                    ArgSpec("attr", "str", required=True),
                    ArgSpec("value", "number", required=True),
                ),
            ),
            CommandSpec(
                "power.read_group",
                self._cmd_power_read_group,
                "Read one attribute across every in-scope object of a type.",
                (
                    ArgSpec("obj_type", "str", required=True),
                    ArgSpec("attr", "str", required=True),
                ),
            ),
            CommandSpec(
                "power.snapshot",
                self._cmd_power_snapshot,
                "Every readable attribute of every in-scope object.",
                (),
            ),
            CommandSpec(
                "power.set_caps",
                self._cmd_power_set_caps,
                "Batch node power caps: one envelope, one vectorised "
                "apply_power_caps pass (watts null uncaps).",
                (
                    ArgSpec("indices", "list", doc="node indices"),
                    ArgSpec("hostnames", "list", doc="node hostnames"),
                    ArgSpec("watts", "any", required=True, doc="scalar, per-node list, or null"),
                ),
            ),
            CommandSpec(
                "power.set_frequencies",
                self._cmd_power_set_frequencies,
                "Batch node core-frequency targets through the vectorised "
                "DVFS kernel.",
                (
                    ArgSpec("indices", "list"),
                    ArgSpec("hostnames", "list"),
                    ArgSpec("ghz", "any", required=True, doc="scalar or per-node list"),
                ),
            ),
            CommandSpec(
                "jobs.submit",
                self._cmd_jobs_submit,
                "Submit a job to the power-aware scheduler.",
                (
                    ArgSpec("app", "any", required=True, doc="application kind or spec"),
                    ArgSpec("nodes", "int"),
                    ArgSpec("params", "dict", doc="application parameters"),
                    ArgSpec("walltime_s", "number"),
                    ArgSpec("ranks_per_node", "int"),
                    ArgSpec("job_id", "str"),
                    ArgSpec("nodes_min", "int"),
                    ArgSpec("nodes_max", "int"),
                    ArgSpec("malleable", "bool"),
                ),
            ),
            CommandSpec(
                "jobs.query",
                self._cmd_jobs_query,
                "State and accounting of one job.",
                (ArgSpec("job_id", "str", required=True),),
            ),
            CommandSpec("jobs.list", self._cmd_jobs_list, "All jobs and their states.", ()),
            CommandSpec(
                "jobs.cancel",
                self._cmd_jobs_cancel,
                "Cancel a pending or running job (owner or operator roles).",
                (ArgSpec("job_id", "str", required=True),),
            ),
            CommandSpec(
                "jobs.run",
                self._cmd_jobs_run,
                "Drive the simulated cluster until all submitted jobs finish "
                "(operator roles).",
                (ArgSpec("extra_time_s", "number"),),
            ),
            CommandSpec(
                "jobs.advance",
                self._cmd_jobs_advance,
                "Advance the simulated clock by a fixed duration (operator roles).",
                (ArgSpec("duration_s", "number", required=True),),
            ),
            CommandSpec("jobs.stats", self._cmd_jobs_stats, "Scheduler statistics.", ()),
            CommandSpec(
                "runtime.report",
                self._cmd_runtime_report,
                "Job-runtime telemetry reported up the stack.",
                (ArgSpec("job_id", "str", required=True),),
            ),
            CommandSpec(
                "runtime.request_power",
                self._cmd_runtime_request_power,
                "Ask the RM for additional job power (§3.1.1).",
                (
                    ArgSpec("job_id", "str", required=True),
                    ArgSpec("watts", "number", required=True),
                ),
            ),
            CommandSpec(
                "runtime.return_power",
                self._cmd_runtime_return_power,
                "Declare unused job power the RM may reclaim (§3.1.1).",
                (
                    ArgSpec("job_id", "str", required=True),
                    ArgSpec("watts", "number", required=True),
                ),
            ),
            CommandSpec(
                "tuning.open",
                self._cmd_tuning_open,
                "Open an ask/tell tuning exchange over a parameter space.",
                (
                    ArgSpec("parameters", "dict", required=True, doc="{name: [values]}"),
                    ArgSpec("search", "str"),
                    ArgSpec("batch_size", "int"),
                    ArgSpec("minimize", "bool"),
                    ArgSpec("seed", "int", doc="override the session-derived seed"),
                ),
            ),
            CommandSpec(
                "tuning.ask",
                self._cmd_tuning_ask,
                "Next batch of configurations to evaluate.",
                (
                    ArgSpec("tuner_id", "str", required=True),
                    ArgSpec("n", "int"),
                ),
            ),
            CommandSpec(
                "tuning.tell",
                self._cmd_tuning_tell,
                "Report evaluated configurations (charged against the quota); "
                "results land in the sharded performance database.",
                (
                    ArgSpec("tuner_id", "str", required=True),
                    ArgSpec("results", "list", required=True),
                ),
            ),
            CommandSpec(
                "tuning.best",
                self._cmd_tuning_best,
                "Best recorded configuration of one tuning exchange.",
                (ArgSpec("tuner_id", "str", required=True),),
            ),
            CommandSpec(
                "tuning.close",
                self._cmd_tuning_close,
                "Close a tuning exchange.",
                (ArgSpec("tuner_id", "str", required=True),),
            ),
            CommandSpec(
                "tuning.run",
                self._cmd_tuning_run,
                "Run a whole batched autotuning loop service-side against a "
                "registered evaluator.",
                (
                    ArgSpec("parameters", "dict", required=True),
                    ArgSpec("evaluator", "str", required=True),
                    ArgSpec("search", "str"),
                    ArgSpec("max_evals", "int"),
                    ArgSpec("batch_size", "int"),
                    ArgSpec("cache_evaluations", "bool"),
                    ArgSpec("seed", "int"),
                ),
            ),
            CommandSpec(
                "campaign.run",
                self._cmd_campaign_run,
                "Run an experiment campaign; every run is charged and captured.",
                (
                    ArgSpec("scenarios", "list", required=True),
                    ArgSpec("executor", "str"),
                    ArgSpec("max_workers", "int"),
                    ArgSpec("name", "str"),
                ),
            ),
            CommandSpec(
                "db.best_for",
                self._cmd_db_best_for,
                "Best record matching tag filters (tenant-scoped unless a "
                "site-read role).",
                (
                    ArgSpec("tags", "dict"),
                    ArgSpec("minimize", "bool"),
                ),
            ),
            CommandSpec(
                "db.top_k",
                self._cmd_db_top_k,
                "The k best records visible to this session.",
                (
                    ArgSpec("k", "int", required=True),
                    ArgSpec("minimize", "bool"),
                ),
            ),
            CommandSpec(
                "db.aggregate",
                self._cmd_db_aggregate,
                "Objective summary statistics over visible records.",
                (ArgSpec("feasible_only", "bool"),),
            ),
            CommandSpec(
                "db.where",
                self._cmd_db_where,
                "Record selection by feasibility, objective range and tags.",
                (
                    ArgSpec("feasible", "bool"),
                    ArgSpec("min_objective", "number"),
                    ArgSpec("max_objective", "number"),
                    ArgSpec("tags", "dict"),
                ),
            ),
            CommandSpec(
                "db.stats",
                self._cmd_db_stats,
                "Shard layout and record counts.",
                (),
            ),
            CommandSpec(
                "db.checkpoint",
                self._cmd_db_checkpoint,
                "Checkpoint the sharded database into a durability root "
                "(write-ahead journal + atomic bounded snapshot "
                "generations); attaches the journal on first use "
                "(operator roles).",
                (
                    ArgSpec("directory", "str", doc="durability root (required on first use)"),
                    ArgSpec("keep_generations", "int", doc="snapshot generations to keep"),
                ),
            ),
            CommandSpec(
                "db.recover",
                self._cmd_db_recover,
                "Replace the sharded database with one recovered from a "
                "durability root: newest valid snapshot plus the journal's "
                "intact suffix (operator roles).",
                (ArgSpec("directory", "str", required=True),),
            ),
            CommandSpec(
                "chaos.inject",
                self._cmd_chaos_inject,
                "Install a named fault-injection profile on the service's "
                "power/scheduler planes (operator roles).",
                (
                    ArgSpec("profile", "str", required=True, doc="registered profile name"),
                    ArgSpec("seed", "int", doc="fault-plan seed (default 0)"),
                    ArgSpec("enabled", "bool", doc="install disarmed when false"),
                ),
            ),
            CommandSpec(
                "chaos.status",
                self._cmd_chaos_status,
                "Active fault plan and injection-event counters.",
                (),
            ),
            CommandSpec(
                "chaos.clear",
                self._cmd_chaos_clear,
                "Remove the active fault plan (operator roles).",
                (),
            ),
        ]
        return {spec.op: spec for spec in specs}

    # -- service/session commands -----------------------------------------
    def _cmd_ping(self, payload: Any = None) -> Dict[str, Any]:
        return {"pong": True, "time_s": self.env.now, "payload": payload}

    def _cmd_describe(self) -> Dict[str, Any]:
        return {
            "protocol": PROTOCOL_VERSION,
            "commands": [spec.describe() for spec in self._commands.values()],
            "roles": [role.value for role in Role],
            "evaluators": sorted(EVALUATOR_REGISTRY),
            "use_cases": [defn.name for defn in list_use_cases()],
            "database": {
                "n_shards": self.database.n_shards,
                "shard_key_tags": list(self.database.shard_key_tags),
            },
            "cluster": self.cluster.summary(),
        }

    def _cmd_session_open(
        self,
        tenant: str,
        role: str = Role.MONITOR.value,
        quota: Optional[int] = None,
        scope_hostnames: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        try:
            resolved = Role(role)
        except ValueError:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown role {role!r}; valid: {[r.value for r in Role]}",
            ) from None
        scope_paths = None
        if scope_hostnames is not None:
            root = self._admin_context.root.name
            unknown = sorted(set(scope_hostnames) - set(self._node_index))
            if unknown:
                raise ServiceError(
                    ServiceErrorCode.NO_OBJECT, f"unknown hostname(s) {unknown}"
                )
            scope_paths = [f"{root}/{hostname}" for hostname in scope_hostnames]
        context = PowerApiContext(
            self._admin_context.root, role=resolved, scope_paths=scope_paths
        )
        self._session_counter += 1
        ordinal = self._tenant_counters.get(tenant, 0) + 1
        self._tenant_counters[tenant] = ordinal
        session_id = f"s{self._session_counter:04d}-{tenant}"
        # Deterministic per-tenant stream: the same tenant opening its
        # n-th session always gets the same RNG, whatever other tenants do.
        streams = self._streams.spawn(f"tenant:{tenant}").spawn(f"session:{ordinal}")
        session = Session(
            session_id=session_id,
            tenant=tenant,
            role=resolved,
            context=context,
            streams=streams,
            quota=quota if quota is not None else self.default_quota,
            ordinal=ordinal,
            scope_hostnames=list(scope_hostnames) if scope_hostnames is not None else None,
        )
        self._sessions[session_id] = session
        return session.info()

    def _cmd_session_info(self, session: Session) -> Dict[str, Any]:
        return session.info()

    def _cmd_session_close(self, session: Session) -> Dict[str, Any]:
        self._sessions.pop(session.session_id, None)
        return {"closed": True, "used_evaluations": session.used_evaluations}

    def _cmd_session_snapshot(self, session: Session) -> Dict[str, Any]:
        return {
            "state": {
                "session": session.session_id,
                "tenant": session.tenant,
                "role": session.role.value,
                "quota": session.quota,
                "used_evaluations": session.used_evaluations,
                "ordinal": session.ordinal,
                "scope_hostnames": session.scope_hostnames,
            },
            # Tuning exchanges hold live search objects; they are not
            # portable and must be reopened after a restore.
            "open_tuners": sorted(session.tuners),
        }

    def _cmd_session_restore(self, state: Mapping[str, Any]) -> Dict[str, Any]:
        required = {"session", "tenant", "role", "ordinal"}
        missing = sorted(required - set(state))
        if missing:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"session.restore: state is missing field(s) {missing}",
            )
        session_id = str(state["session"])
        if session_id in self._sessions:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"session {session_id!r} is still open; close it before restoring",
            )
        tenant = str(state["tenant"])
        ordinal = int(state["ordinal"])
        if ordinal < 1:
            raise ServiceError(
                ServiceErrorCode.BAD_VALUE, "session ordinal must be >= 1"
            )
        try:
            role = Role(state["role"])
        except ValueError:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown role {state['role']!r} in snapshot",
            ) from None
        scope_hostnames = state.get("scope_hostnames")
        scope_paths = None
        if scope_hostnames is not None:
            root = self._admin_context.root.name
            unknown = sorted(set(scope_hostnames) - set(self._node_index))
            if unknown:
                raise ServiceError(
                    ServiceErrorCode.NO_OBJECT, f"unknown hostname(s) {unknown}"
                )
            scope_paths = [f"{root}/{hostname}" for hostname in scope_hostnames]
        quota = state.get("quota")
        used = int(state.get("used_evaluations", 0))
        # The ordinal drives the RNG derivation, so the restored session
        # draws exactly the streams the original would have; bumping the
        # tenant counter keeps future session.open calls from reusing it.
        streams = self._streams.spawn(f"tenant:{tenant}").spawn(f"session:{ordinal}")
        self._tenant_counters[tenant] = max(
            self._tenant_counters.get(tenant, 0), ordinal
        )
        prefix = session_id.split("-", 1)[0]
        if prefix.startswith("s") and prefix[1:].isdigit():
            self._session_counter = max(self._session_counter, int(prefix[1:]))
        session = Session(
            session_id=session_id,
            tenant=tenant,
            role=role,
            context=PowerApiContext(
                self._admin_context.root, role=role, scope_paths=scope_paths
            ),
            streams=streams,
            quota=None if quota is None else int(quota),
            used_evaluations=used,
            ordinal=ordinal,
            scope_hostnames=list(scope_hostnames) if scope_hostnames is not None else None,
        )
        self._sessions[session_id] = session
        return session.info()

    # -- power plane -------------------------------------------------------
    @staticmethod
    def _attr(name: str) -> AttrName:
        try:
            return AttrName(name)
        except ValueError:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown attribute {name!r}; valid: {[a.value for a in AttrName]}",
            ) from None

    def _cmd_power_read(self, session: Session, path: str, attr: str) -> Dict[str, Any]:
        value = session.context.read(path, self._attr(attr))
        return {"path": path, "attr": attr, "value": value}

    def _cmd_power_write(
        self, session: Session, path: str, attr: str, value: float
    ) -> Dict[str, Any]:
        applied = session.context.write(path, self._attr(attr), float(value))
        return {"path": path, "attr": attr, "applied": applied}

    def _cmd_power_read_group(
        self, session: Session, obj_type: str, attr: str
    ) -> Dict[str, Any]:
        try:
            resolved = ObjType(obj_type)
        except ValueError:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown object type {obj_type!r}; valid: {[t.value for t in ObjType]}",
            ) from None
        attribute = self._attr(attr)
        group = session.context.group(f"{obj_type}s", resolved)
        # Per-member reads go through the context so the role check (and
        # its error code) is identical to single-object power.read.
        return {
            "attr": attr,
            "values": {obj.path: session.context.read(obj, attribute) for obj in group},
        }

    def _cmd_power_snapshot(self, session: Session) -> Dict[str, Any]:
        return session.context.snapshot()

    def _resolve_node_indices(
        self,
        indices: Optional[Sequence[int]],
        hostnames: Optional[Sequence[str]],
    ) -> np.ndarray:
        if (indices is None) == (hostnames is None):
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                "exactly one of 'indices' and 'hostnames' must be given",
            )
        targets = hostnames if hostnames is not None else indices
        if not targets:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST, "the target node list must not be empty"
            )
        if hostnames is not None:
            unknown = sorted(set(hostnames) - set(self._node_index))
            if unknown:
                raise ServiceError(
                    ServiceErrorCode.NO_OBJECT, f"unknown hostname(s) {unknown}"
                )
            return np.asarray([self._node_index[h] for h in hostnames], dtype=int)
        out = []
        for index in indices:
            if not isinstance(index, int) or isinstance(index, bool):
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST, "'indices' must be integers"
                )
            if not 0 <= index < len(self.cluster.nodes):
                raise ServiceError(
                    ServiceErrorCode.NO_OBJECT,
                    f"node index {index} out of range (cluster has "
                    f"{len(self.cluster.nodes)} nodes)",
                )
            out.append(index)
        return np.asarray(out, dtype=int)

    @staticmethod
    def _watt_value(value: Any, field: str) -> float:
        """A cap/frequency scalar off the wire: number or null, never bool."""
        if value is None:
            return np.nan
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"{field!r} entries must be numbers (or null to uncap)",
            )
        return float(value)

    def _check_batch_node_write(
        self, session: Session, attr: AttrName, node_indices: np.ndarray
    ) -> None:
        """The exact role/scope gate ``PowerApiContext.write`` applies, once
        for a whole node batch."""
        if not session.context.permissions.may_write(attr, ObjType.NODE):
            raise ServiceError(
                ServiceErrorCode.NO_PERMISSION,
                f"role {session.role.value!r} may not write {attr.value!r} on a node",
            )
        root = self._admin_context.root.name
        for index in node_indices:
            path = f"{root}/{self.cluster.nodes[int(index)].hostname}"
            if not session.context.in_scope(path):
                raise ServiceError(
                    ServiceErrorCode.OUT_OF_SCOPE,
                    f"{path!r} is outside this session's scope",
                )

    def _cmd_power_set_caps(
        self,
        session: Session,
        watts: Any,
        indices: Optional[List[int]] = None,
        hostnames: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        node_indices = self._resolve_node_indices(indices, hostnames)
        self._check_batch_node_write(session, AttrName.POWER_LIMIT_MAX, node_indices)
        if isinstance(watts, list):
            if len(watts) != node_indices.size:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    f"'watts' list length {len(watts)} != {node_indices.size} nodes",
                )
            values = [self._watt_value(w, "watts") for w in watts]
        else:
            values = [self._watt_value(watts, "watts")] * node_indices.size
        if any(v < 0 for v in values if not np.isnan(v)):
            raise ServiceError(
                ServiceErrorCode.BAD_VALUE, "negative value for 'power_limit_max'"
            )
        caps = self.cluster.state.node_power_cap_w.copy()
        caps[node_indices] = values
        applied = self.cluster.apply_power_caps(caps)
        return {
            "applied": {
                self.cluster.nodes[int(i)].hostname: (
                    None if np.isnan(applied[int(i)]) else float(applied[int(i)])
                )
                for i in node_indices
            }
        }

    def _cmd_power_set_frequencies(
        self,
        session: Session,
        ghz: Any,
        indices: Optional[List[int]] = None,
        hostnames: Optional[List[str]] = None,
    ) -> Dict[str, Any]:
        node_indices = self._resolve_node_indices(indices, hostnames)
        self._check_batch_node_write(session, AttrName.FREQ_REQUEST, node_indices)
        def freq_value(value: Any) -> float:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST, "'ghz' entries must be numbers"
                )
            return float(value)

        if isinstance(ghz, list):
            if len(ghz) != node_indices.size:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    f"'ghz' list length {len(ghz)} != {node_indices.size} nodes",
                )
            targets = np.asarray([freq_value(g) for g in ghz])
        else:
            targets = freq_value(ghz)
        if np.any(np.asarray(targets) < 0):
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "negative value for 'freq_request'")
        granted = self.cluster.state.set_node_frequencies(targets, node_indices)
        # granted is per-package; report the node frequency the way the
        # Power API node object does (the slowest package).
        node_granted = np.asarray(granted).min(axis=1)
        return {
            "granted": {
                self.cluster.nodes[int(i)].hostname: float(node_granted[pos])
                for pos, i in enumerate(node_indices)
            }
        }

    # -- resource manager --------------------------------------------------
    def _job(self, job_id: str):
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            raise ServiceError(ServiceErrorCode.NO_JOB, f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _job_dict(job) -> Dict[str, Any]:
        return {
            "job_id": job.job_id,
            "state": job.state.value,
            "user": job.request.user,
            "nodes": [node.hostname for node in job.assigned_nodes],
            "power_budget_w": job.power_budget_w,
            "submit_time_s": job.submit_time_s,
            "start_time_s": job.start_time_s,
            "end_time_s": job.end_time_s,
            "reject_reason": job.launch_metadata.get("reject_reason"),
        }

    def _cmd_jobs_submit(
        self,
        session: Session,
        app: Any,
        nodes: int = 1,
        params: Optional[Mapping[str, Any]] = None,
        walltime_s: float = 600.0,
        ranks_per_node: int = 1,
        job_id: Optional[str] = None,
        nodes_min: Optional[int] = None,
        nodes_max: Optional[int] = None,
        malleable: bool = False,
    ) -> Dict[str, Any]:
        self._require_working_role(session, "submit jobs")
        application = _build_application(app)
        self._job_counter += 1
        identifier = job_id or f"job-{self._job_counter:05d}"
        try:
            request = JobRequest(
                job_id=identifier,
                application=application,
                params=dict(params or {}),
                nodes_requested=int(nodes),
                nodes_min=nodes_min,
                nodes_max=nodes_max,
                ranks_per_node=int(ranks_per_node),
                walltime_estimate_s=float(walltime_s),
                malleable=bool(malleable),
                arrival_time_s=self.env.now,
                user=session.tenant,
            )
            job = self.scheduler.submit(request)
        except ValueError as error:
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, str(error)) from error
        return self._job_dict(job)

    def _cmd_jobs_query(self, session: Session, job_id: str) -> Dict[str, Any]:
        return self._job_dict(self._job(job_id))

    def _cmd_jobs_list(self, session: Session) -> List[Dict[str, Any]]:
        # Working tenants see their own jobs; operators and the site-wide
        # monitor see the whole queue.
        jobs = self.scheduler.jobs.values()
        if session.role not in _OPERATOR_ROLES + _SITE_READ_ROLES:
            jobs = [job for job in jobs if job.request.user == session.tenant]
        return [self._job_dict(job) for job in jobs]

    def _require_owner_or_operator(self, session: Session, job) -> None:
        if session.role in _OPERATOR_ROLES or job.request.user == session.tenant:
            return
        raise ServiceError(
            ServiceErrorCode.NO_PERMISSION,
            f"role {session.role.value!r} of tenant {session.tenant!r} may not "
            f"operate on job {job.job_id!r} owned by {job.request.user!r}",
        )

    def _require_operator(self, session: Session, action: str) -> None:
        if session.role not in _OPERATOR_ROLES:
            raise ServiceError(
                ServiceErrorCode.NO_PERMISSION,
                f"role {session.role.value!r} may not {action} "
                f"(needs one of {[r.value for r in _OPERATOR_ROLES]})",
            )

    def _require_working_role(self, session: Session, action: str) -> None:
        if session.role in _READ_ONLY_ROLES:
            raise ServiceError(
                ServiceErrorCode.NO_PERMISSION,
                f"read-only role {session.role.value!r} may not {action}",
            )

    def _cmd_jobs_cancel(self, session: Session, job_id: str) -> Dict[str, Any]:
        job = self._job(job_id)
        self._require_owner_or_operator(session, job)
        if job.state in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            raise ServiceError(
                ServiceErrorCode.BAD_VALUE,
                f"job {job_id!r} is already {job.state.value}",
            )
        self.scheduler.cancel(job_id)
        return self._job_dict(job)

    def _cmd_jobs_run(self, session: Session, extra_time_s: float = 0.0) -> Dict[str, Any]:
        self._require_operator(session, "drive the cluster")
        stats = self.scheduler.run_until_complete(extra_time_s=float(extra_time_s))
        return {"time_s": self.env.now, "stats": stats.as_dict()}

    def _cmd_jobs_advance(self, session: Session, duration_s: float) -> Dict[str, Any]:
        self._require_operator(session, "advance the clock")
        if duration_s <= 0:
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "duration_s must be positive")
        self.scheduler.start()
        self.env.run(until=self.env.now + float(duration_s))
        return {"time_s": self.env.now}

    def _cmd_jobs_stats(self, session: Session) -> Dict[str, Any]:
        return self.scheduler.stats().as_dict()

    # -- runtime layer -----------------------------------------------------
    def _runtime(self, session: Session, job_id: str) -> JobRuntime:
        job = self._job(job_id)
        self._require_owner_or_operator(session, job)
        handle = self.scheduler.runtime_handles.get(job_id)
        if not isinstance(handle, JobRuntime):
            raise ServiceError(
                ServiceErrorCode.NOT_IMPLEMENTED,
                f"job {job_id!r} has no budget-capable runtime attached",
            )
        return handle

    def _cmd_runtime_report(self, session: Session, job_id: str) -> Dict[str, Any]:
        return dict(self._runtime(session, job_id).report())

    def _cmd_runtime_request_power(
        self, session: Session, job_id: str, watts: float
    ) -> Dict[str, Any]:
        runtime = self._runtime(session, job_id)
        granted = runtime.request_power(float(watts))
        return {"job_id": job_id, "requested_w": granted, "report": dict(runtime.report())}

    def _cmd_runtime_return_power(
        self, session: Session, job_id: str, watts: float
    ) -> Dict[str, Any]:
        runtime = self._runtime(session, job_id)
        returned = runtime.return_power(float(watts))
        return {"job_id": job_id, "returned_w": returned, "report": dict(runtime.report())}

    # -- tuning plane ------------------------------------------------------
    def _best_feasible(self, session: Session, state: _TuningState):
        """Best *feasible* record of one tuning exchange (first on ties).

        ``best_for`` alone would happily return a record the client
        declared infeasible; a reported best must be deployable.
        """
        pool = self.database.where(
            feasible=True,
            tenant=session.tenant,
            session=session.session_id,
            tuner=state.tuner_id,
        )
        if not pool:
            return None
        key = min if state.minimize else max
        return key(pool, key=lambda record: record.objective)

    def _tuner(self, session: Session, tuner_id: str) -> _TuningState:
        state = session.tuners.get(tuner_id)
        if state is None:
            raise ServiceError(
                ServiceErrorCode.NO_TUNER,
                f"unknown tuner {tuner_id!r} in session {session.session_id!r}",
            )
        return state

    def _make_space(self, parameters: Mapping[str, Any]) -> ParameterSpace:
        if not parameters:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST, "'parameters' must not be empty"
            )
        for name, values in parameters.items():
            if not isinstance(values, list) or not values:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    f"parameter {name!r} must map to a non-empty list of values",
                )
        return ParameterSpace.from_dict(parameters, name="service")

    def _cmd_tuning_open(
        self,
        session: Session,
        parameters: Mapping[str, Any],
        search: str = "forest",
        batch_size: int = 8,
        minimize: bool = True,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        self._require_working_role(session, "open tuning sessions")
        if batch_size < 1:
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "batch_size must be >= 1")
        space = self._make_space(parameters)
        session._tuner_counter += 1
        ordinal = session._tuner_counter
        if seed is None:
            # Per-tuner deterministic seed off the session's tenant stream.
            seed = int(
                session.streams.stream(f"tuner:{ordinal}").integers(0, 2**31 - 1)
            )
        try:
            algorithm = make_search(search, space, seed=int(seed))
        except ValueError as error:
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, str(error)) from error
        tuner_id = f"{session.session_id}/t{ordinal}"
        session.tuners[tuner_id] = _TuningState(
            tuner_id=tuner_id,
            space=space,
            search=algorithm,
            minimize=bool(minimize),
            batch_size=int(batch_size),
            seed=int(seed),
        )
        return {
            "tuner_id": tuner_id,
            "search": search,
            "seed": int(seed),
            "batch_size": int(batch_size),
            "minimize": bool(minimize),
            "cardinality": session.tuners[tuner_id].space.cardinality(),
        }

    def _cmd_tuning_ask(
        self, session: Session, tuner_id: str, n: Optional[int] = None
    ) -> Dict[str, Any]:
        state = self._tuner(session, tuner_id)
        count = state.batch_size if n is None else int(n)
        if count < 1:
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "n must be >= 1")
        configs: List[Dict[str, Any]] = []
        if not state.search.is_exhausted():
            # Forbidden combinations are rejected service-side without
            # spending client evaluations — mirroring BatchAutotuner.
            for config in state.search.ask_batch(count):
                config = state.space.validate(config)
                if state.space.is_allowed(config):
                    configs.append(config)
                else:
                    state.search.tell(config, PENALTY_OBJECTIVE)
        return {
            "tuner_id": tuner_id,
            "configs": configs,
            "exhausted": state.search.is_exhausted() and not configs,
        }

    def _cmd_tuning_tell(
        self, session: Session, tuner_id: str, results: List[Any]
    ) -> Dict[str, Any]:
        state = self._tuner(session, tuner_id)
        parsed: List[Tuple[Dict[str, Any], float, Dict[str, float], bool]] = []
        for entry in results:
            if not isinstance(entry, Mapping) or "config" not in entry or "objective" not in entry:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    "each result must be an object with 'config' and 'objective'",
                )
            try:
                config = state.space.validate(dict(entry["config"]))
            except (KeyError, ValueError) as error:
                raise ServiceError(ServiceErrorCode.BAD_VALUE, str(error)) from error
            objective = float(entry["objective"])
            metrics = dict(entry.get("metrics", {}))
            feasible = bool(entry.get("feasible", True))
            parsed.append((config, objective, metrics, feasible))
        session.charge(len(parsed))
        for config, objective, metrics, feasible in parsed:
            if not feasible:
                search_value = PENALTY_OBJECTIVE
            else:
                search_value = objective if state.minimize else -objective
            state.search.tell(config, search_value)
            state.told += 1
            self.database.add_evaluation(
                config=config,
                metrics=metrics,
                objective=objective,
                feasible=feasible,
                tenant=session.tenant,
                session=session.session_id,
                tuner=state.tuner_id,
            )
        best = self._best_feasible(session, state)
        return {
            "tuner_id": tuner_id,
            "recorded": len(parsed),
            "told_total": state.told,
            "quota_remaining": (
                None if session.quota is None else session.quota - session.used_evaluations
            ),
            "best": None if best is None else best.to_dict(),
        }

    def _cmd_tuning_best(self, session: Session, tuner_id: str) -> Dict[str, Any]:
        state = self._tuner(session, tuner_id)
        best = self._best_feasible(session, state)
        return {"tuner_id": tuner_id, "best": None if best is None else best.to_dict()}

    def _cmd_tuning_close(self, session: Session, tuner_id: str) -> Dict[str, Any]:
        state = self._tuner(session, tuner_id)
        del session.tuners[tuner_id]
        return {"tuner_id": tuner_id, "told_total": state.told}

    def _cmd_tuning_run(
        self,
        session: Session,
        parameters: Mapping[str, Any],
        evaluator: str,
        search: str = "forest",
        max_evals: int = 30,
        batch_size: int = 8,
        cache_evaluations: bool = False,
        seed: Optional[int] = None,
    ) -> Dict[str, Any]:
        self._require_working_role(session, "run tuning loops")
        if max_evals < 1:
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "max_evals must be >= 1")
        fn = EVALUATOR_REGISTRY.get(evaluator)
        if fn is None:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown evaluator {evaluator!r}; registered: {sorted(EVALUATOR_REGISTRY)}",
            )
        space = self._make_space(parameters)
        self._run_counter += 1
        run_id = f"run-{self._run_counter:04d}"
        if seed is None:
            seed = int(session.streams.stream(f"tuning-run:{run_id}").integers(0, 2**31 - 1))
        try:
            tuner = BatchAutotuner(
                space,
                fn,
                batch_size=int(batch_size),
                search=search,
                max_evals=int(max_evals),
                seed=int(seed),
                cache_evaluations=bool(cache_evaluations),
                name=run_id,
            )
        except ValueError as error:
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, str(error)) from error
        # Charge the whole budget as a reservation only once the tuner is
        # actually constructed (a rejected config must cost nothing), and
        # unwind it in ``finally`` so an evaluator exploding mid-batch
        # refunds the slots it never consumed instead of leaking them.
        session.charge(int(max_evals))
        try:
            result = tuner.run()
        except Exception as error:
            raise ServiceError(
                ServiceErrorCode.INTERNAL,
                f"evaluator {evaluator!r} failed mid-run: "
                f"{type(error).__name__}: {error}",
            ) from error
        finally:
            session.used_evaluations -= max(0, int(max_evals) - len(tuner.database))
            tuner.close()
        self.database.merge(
            result.database,
            tenant=session.tenant,
            session=session.session_id,
            tuner=run_id,
        )
        return {
            "run_id": run_id,
            "seed": int(seed),
            "evaluations": result.evaluations,
            "best_config": result.best_config,
            "best_objective": result.best_objective,
            "cache_hits": result.cache_hits,
            "objective": result.objective_name,
        }

    # -- campaign plane ----------------------------------------------------
    def _cmd_campaign_run(
        self,
        session: Session,
        scenarios: List[Any],
        executor: str = "serial",
        max_workers: Optional[int] = None,
        name: Optional[str] = None,
    ) -> Dict[str, Any]:
        self._require_working_role(session, "run campaigns")
        if executor not in ("serial", "thread", "process"):
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST,
                f"unknown executor {executor!r}; available: serial, thread, process",
            )
        built = []
        for index, entry in enumerate(scenarios):
            if not isinstance(entry, Mapping) or "use_case" not in entry:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    "each scenario must be an object with a 'use_case' field",
                )
            try:
                built.append(
                    build_scenario(
                        entry["use_case"],
                        params=entry.get("params"),
                        seeds=tuple(entry.get("seeds", (1,))),
                        name=entry.get("name", ""),
                        tags=entry.get("tags"),
                    )
                )
            except (KeyError, ValueError, TypeError) as error:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST, f"scenario #{index}: {error}"
                ) from error
        self._run_counter += 1
        campaign_name = name or f"campaign-{self._run_counter:04d}"
        try:
            campaign = Campaign(built, name=campaign_name)
        except ValueError as error:
            raise ServiceError(ServiceErrorCode.BAD_REQUEST, str(error)) from error
        session.charge(campaign.total_runs)
        result = campaign.run(executor=executor, max_workers=max_workers)
        self.database.merge(
            result.database,
            tenant=session.tenant,
            session=session.session_id,
            campaign=campaign_name,
        )
        return result.summary()

    # -- database plane ----------------------------------------------------
    def _scope_tags(self, session: Session, tags: Optional[Mapping[str, Any]]) -> Dict[str, str]:
        filters = {str(k): str(v) for k, v in (tags or {}).items()}
        # Tenant isolation: only site-read roles see other tenants'
        # records — a working role's tenant filter is *forced*, so an
        # explicit tags={"tenant": ...} cannot reach across tenants.
        if session.role not in _SITE_READ_ROLES:
            filters["tenant"] = session.tenant
        return filters

    def _cmd_db_best_for(
        self,
        session: Session,
        tags: Optional[Mapping[str, Any]] = None,
        minimize: bool = True,
    ) -> Dict[str, Any]:
        best = self.database.best_for(minimize=bool(minimize), **self._scope_tags(session, tags))
        return {"best": None if best is None else best.to_dict()}

    def _cmd_db_top_k(
        self, session: Session, k: int, minimize: bool = True
    ) -> Dict[str, Any]:
        if k < 0:
            raise ServiceError(ServiceErrorCode.BAD_VALUE, "k must be >= 0")
        filters = self._scope_tags(session, None)
        if filters:
            # Tenant view through the one canonical top_k implementation.
            pool = PerformanceDatabase.from_records(self.database.where(**filters))
            records = pool.top_k(int(k), minimize=bool(minimize))
        else:
            records = self.database.top_k(int(k), minimize=bool(minimize))
        return {"records": [record.to_dict() for record in records]}

    def _cmd_db_aggregate(
        self, session: Session, feasible_only: bool = False
    ) -> Dict[str, Any]:
        filters = self._scope_tags(session, None)
        if filters:
            pool = self.database.where(
                feasible=True if feasible_only else None, **filters
            )
            return objective_stats(np.asarray([r.objective for r in pool]))
        return self.database.aggregate(feasible_only=bool(feasible_only))

    def _cmd_db_where(
        self,
        session: Session,
        feasible: Optional[bool] = None,
        min_objective: Optional[float] = None,
        max_objective: Optional[float] = None,
        tags: Optional[Mapping[str, Any]] = None,
    ) -> Dict[str, Any]:
        records = self.database.where(
            feasible=feasible,
            min_objective=min_objective,
            max_objective=max_objective,
            **self._scope_tags(session, tags),
        )
        return {"records": [record.to_dict() for record in records]}

    def _cmd_db_stats(self, session: Session) -> Dict[str, Any]:
        if session.role not in _SITE_READ_ROLES:
            # Tenant view: own record count only — no cross-tenant names,
            # no global sizes (the same isolation _scope_tags enforces).
            return {
                "n_records": len(self.database.where(tenant=session.tenant)),
                "n_shards": self.database.n_shards,
                "tenants": [session.tenant],
            }
        return {
            "n_records": len(self.database),
            "n_shards": self.database.n_shards,
            "shard_sizes": self.database.shard_sizes(),
            "tenants": self.database.tag_values("tenant"),
        }

    def _cmd_db_checkpoint(
        self,
        session: Session,
        directory: Optional[str] = None,
        keep_generations: Optional[int] = None,
    ) -> Dict[str, Any]:
        self._require_operator(session, "checkpoint the database")
        from repro import durability

        journal = self.database.journal
        if journal is None:
            if directory is None:
                raise ServiceError(
                    ServiceErrorCode.BAD_REQUEST,
                    "no journal attached yet; 'directory' is required on the "
                    "first db.checkpoint",
                )
            durability.attach(
                self.database,
                directory,
                keep_generations=int(keep_generations) if keep_generations else 2,
            )
            journal = self.database.journal
        elif directory is not None and os.path.abspath(directory) != journal.directory:
            raise ServiceError(
                ServiceErrorCode.BAD_VALUE,
                f"journal is attached at {journal.directory!r}; detach before "
                f"checkpointing into {directory!r}",
            )
        kwargs = {}
        if keep_generations is not None:
            if keep_generations < 1:
                raise ServiceError(
                    ServiceErrorCode.BAD_VALUE, "keep_generations must be >= 1"
                )
            kwargs["keep_generations"] = int(keep_generations)
        info = self.database.checkpoint(**kwargs)
        return {
            "directory": journal.directory,
            "generation": info["generation"],
            "records": info["records"],
            "absorbed_entries": info["absorbed_entries"],
        }

    def _cmd_db_recover(self, session: Session, directory: str) -> Dict[str, Any]:
        self._require_operator(session, "recover the database")
        try:
            recovered = ShardedPerformanceDatabase.recover(directory)
        except FileNotFoundError as error:
            raise ServiceError(
                ServiceErrorCode.NO_OBJECT,
                f"{directory!r} is not a durability root: {error}",
            ) from error
        # SnapshotCorruptError (unrecoverable config corruption) propagates
        # and maps to SVC_RET_SNAPSHOT_CORRUPT in handle().
        old_journal = self.database.detach_journal()
        if old_journal is not None:
            old_journal.close()
        self.database = recovered
        return {
            "directory": directory,
            "n_records": len(recovered),
            "n_shards": recovered.n_shards,
            "shard_sizes": recovered.shard_sizes(),
            "journal_attached": recovered.journal is not None,
        }

    # -- chaos plane -------------------------------------------------------
    def _cmd_chaos_inject(
        self,
        session: Session,
        profile: str,
        seed: int = 0,
        enabled: bool = True,
    ) -> Dict[str, Any]:
        self._require_working_role(session, "inject faults")
        from repro.faults import injector as fault_injector
        from repro.faults import profiles as fault_profiles

        try:
            plan = fault_profiles.get_profile(
                str(profile), seed=int(seed), enabled=bool(enabled)
            )
        except KeyError as error:
            raise ServiceError(
                ServiceErrorCode.BAD_REQUEST, str(error.args[0])
            ) from None
        injector = fault_injector.install(plan)
        return {
            "profile": plan.name,
            "seed": plan.seed,
            "enabled": injector.enabled,
            "kinds": sorted(plan.kinds),
        }

    def _cmd_chaos_status(self, session: Session) -> Dict[str, Any]:
        from repro.faults import injector as fault_injector

        injector = fault_injector.active()
        if injector is None:
            return {"active": False}
        return {"active": True, **injector.stats()}

    def _cmd_chaos_clear(self, session: Session) -> Dict[str, Any]:
        self._require_working_role(session, "clear fault plans")
        from repro.faults import injector as fault_injector

        injector = fault_injector.clear()
        if injector is None:
            return {"cleared": False}
        return {"cleared": True, **injector.stats()}
