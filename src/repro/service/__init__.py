"""Versioned control-plane service API over the whole stack.

The paper's standardised-interfaces thesis applied to our own public
surface: one transport-agnostic :class:`StackService` speaks typed,
JSON-round-trippable request/response envelopes to every layer — Power
API attribute get/set, scheduler job control, runtime power budgets,
ask/tell tuning sessions, experiment campaigns — under multi-tenant
sessions with role enforcement, deterministic RNG streams and
evaluation quotas, capturing all results in a tenant-sharded
performance database.

Run ``python -m repro.service`` for the JSON-lines driver / REPL, or use
:class:`ServiceClient` in-process.
"""

from repro.service.client import ServiceCallError, ServiceClient, SessionHandle
from repro.service.envelopes import (
    MAX_WIRE_BYTES,
    PROTOCOL_VERSION,
    Request,
    Response,
    ServiceError,
    ServiceErrorCode,
)
from repro.service.service import (
    EVALUATOR_REGISTRY,
    Session,
    StackService,
    register_evaluator,
)

__all__ = [
    "EVALUATOR_REGISTRY",
    "MAX_WIRE_BYTES",
    "PROTOCOL_VERSION",
    "Request",
    "Response",
    "ServiceCallError",
    "ServiceClient",
    "ServiceError",
    "ServiceErrorCode",
    "Session",
    "SessionHandle",
    "StackService",
    "register_evaluator",
]
