"""Node monitoring daemon: periodic power/energy/thermal sampling.

Every layer above the node needs telemetry: the resource manager needs
node power for the system budget, the job runtime needs per-node energy
for its control loop, the site needs thermal outlier detection
(§3.2.2 "systemwide characterization of frequency, power, and thermal
variation across the system plus node outlier detection").  The
:class:`NodeMonitor` is a DES process that samples a node at a fixed
interval and appends to a shared time series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.hardware.node import Node
from repro.sim.engine import Environment, Interrupt
from repro.telemetry.sampler import PowerTimeSeries

__all__ = ["NodeSample", "NodeMonitor"]


@dataclass(frozen=True)
class NodeSample:
    """One periodic node telemetry sample."""

    time_s: float
    hostname: str
    power_w: float
    energy_j: float
    temperature_c: float
    rapl_energy_j: float
    allocated: bool


class NodeMonitor:
    """Samples one node at a fixed interval inside a DES environment."""

    def __init__(
        self,
        env: Environment,
        node: Node,
        interval_s: float = 1.0,
        callback: Optional[Callable[[NodeSample], None]] = None,
    ):
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        self.env = env
        self.node = node
        self.interval_s = float(interval_s)
        self.callback = callback
        self.samples: List[NodeSample] = []
        self.power_series = PowerTimeSeries(node.hostname)
        self._process = None
        self._running = False

    def start(self) -> None:
        """Start the periodic sampling process."""
        if self._running:
            return
        self._running = True
        self._process = self.env.process(self._run())

    def stop(self) -> None:
        """Stop sampling."""
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")
        self._running = False

    def sample_once(self) -> NodeSample:
        """Take (and record) a single sample immediately."""
        node = self.node
        sample = NodeSample(
            time_s=self.env.now,
            hostname=node.hostname,
            power_w=node.current_power_w if not node.is_free else node.idle_power_w(),
            energy_j=node.total_energy_j(),
            temperature_c=node.max_temperature_c(),
            rapl_energy_j=sum(d.total_energy_j() for d in node.rapl.package_domains()),
            allocated=not node.is_free,
        )
        self.samples.append(sample)
        self.power_series.record(sample.time_s, sample.power_w)
        if self.callback is not None:
            self.callback(sample)
        return sample

    def _run(self):
        try:
            while self._running:
                self.sample_once()
                yield self.env.timeout(self.interval_s)
        except Interrupt:
            pass

    # -- analysis helpers --------------------------------------------------
    def average_power_w(self) -> float:
        return self.power_series.mean_power_w() if len(self.power_series) else 0.0

    def peak_power_w(self) -> float:
        return self.power_series.max_power_w()

    def utilization(self) -> float:
        """Fraction of samples during which the node was allocated."""
        if not self.samples:
            return 0.0
        return sum(1 for s in self.samples if s.allocated) / len(self.samples)
