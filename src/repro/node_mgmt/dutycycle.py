"""Duty-cycle modulation (T-states).

Bhalachandra et al. (reference [3] of the paper) improve energy
efficiency with *dynamic duty cycle modulation*: inserting forced-idle
windows so a core's effective throughput (and power) drops below what
the lowest P-state provides.  The node layer uses it as a finer/deeper
control than DVFS when a cap cannot be met otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DutyCycleSetting", "DutyCycleModulator"]

#: Discrete duty-cycle levels supported by the (simulated) hardware, as
#: fractions of time the clock is enabled.  Mirrors the 16-level MSR knob.
DUTY_LEVELS = tuple(np.round(np.linspace(1.0, 0.25, 13), 4))


@dataclass(frozen=True)
class DutyCycleSetting:
    """An applied duty-cycle level and its modelled effect."""

    level: float
    slowdown_factor: float
    power_factor: float


class DutyCycleModulator:
    """Applies duty-cycle modulation to a node's compute phases."""

    def __init__(self, overhead_fraction: float = 0.03):
        if not 0.0 <= overhead_fraction < 0.5:
            raise ValueError("overhead_fraction must be in [0, 0.5)")
        self.overhead_fraction = float(overhead_fraction)
        self._level = 1.0

    @property
    def level(self) -> float:
        return self._level

    @staticmethod
    def supported_levels() -> tuple:
        return DUTY_LEVELS

    def set_level(self, level: float) -> DutyCycleSetting:
        """Set the duty-cycle level (snapped to a supported value)."""
        if level <= 0 or level > 1:
            raise ValueError("level must be in (0, 1]")
        snapped = float(min(DUTY_LEVELS, key=lambda lv: abs(lv - level)))
        self._level = snapped
        return self.effect()

    def effect(self) -> DutyCycleSetting:
        """The modelled slowdown and dynamic-power scaling at this level.

        Compute throughput tracks the enabled fraction (plus a small
        modulation overhead); dynamic power tracks it slightly
        super-linearly because idle windows still leak.
        """
        enabled = self._level
        slowdown = (1.0 / enabled) * (1.0 + self.overhead_fraction * (1.0 - enabled))
        power = enabled + 0.1 * (1.0 - enabled)
        return DutyCycleSetting(level=enabled, slowdown_factor=slowdown, power_factor=power)

    def level_for_power_fraction(self, power_fraction: float) -> float:
        """Smallest-slowdown level whose power factor is below a target."""
        if not 0.0 < power_fraction <= 1.0:
            raise ValueError("power_fraction must be in (0, 1]")
        for level in DUTY_LEVELS:  # descending order: least slowdown first
            power = level + 0.1 * (1.0 - level)
            if power <= power_fraction + 1e-9:
                return float(level)
        return float(DUTY_LEVELS[-1])
