"""Node-level power management (the PowerStack's lowest software layer).

Table 1's node-level row lists the controls this layer owns — power
capping (RAPL), DVFS/P-states, uncore frequency, duty-cycle modulation —
and Table 2 lists the tools that exercise them.  This subpackage
implements that layer for the simulated hardware:

* :class:`~repro.node_mgmt.dvfs.DvfsGovernor` — per-node frequency
  governors (performance, powersave, ondemand-like adaptive, fixed).
* :class:`~repro.node_mgmt.powercap.NodePowerCapManager` — enforces a
  node power cap through RAPL and reports headroom.
* :class:`~repro.node_mgmt.powercap.ClusterPowerCapManager` — splits a
  system power budget into per-node caps with one vectorised
  waterfilling pass over the cluster state.
* :class:`~repro.node_mgmt.dutycycle.DutyCycleModulator` — T-state style
  duty-cycle modulation used when even the lowest P-state is too hot.
* :class:`~repro.node_mgmt.monitor.NodeMonitor` — the node daemon that
  samples power/energy/temperature and feeds the upper layers.
"""

from repro.node_mgmt.dutycycle import DutyCycleModulator
from repro.node_mgmt.dvfs import DvfsGovernor, GovernorPolicy
from repro.node_mgmt.monitor import NodeMonitor, NodeSample
from repro.node_mgmt.powercap import (
    ClusterPowerCapManager,
    NodePowerCapManager,
    distribute_power_budget,
)

__all__ = [
    "ClusterPowerCapManager",
    "DutyCycleModulator",
    "DvfsGovernor",
    "GovernorPolicy",
    "NodeMonitor",
    "NodePowerCapManager",
    "NodeSample",
    "distribute_power_budget",
]
