"""Node-level power cap enforcement and headroom reporting.

The node power manager is the layer that turns a job- or system-level
power budget into RAPL limits, and that answers "how much of my budget am
I actually using?" — the headroom question the power-balancing runtimes
(Conductor, GEOPM power balancer) and the resource manager's power pool
both depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.hardware.node import Node
from repro.hardware.workload import PhaseDemand

__all__ = ["PowerCapStatus", "NodePowerCapManager"]


@dataclass(frozen=True)
class PowerCapStatus:
    """Snapshot of a node's power-cap state."""

    cap_w: Optional[float]
    measured_w: float
    headroom_w: float
    capped: bool


class NodePowerCapManager:
    """Enforces a node power cap and tracks measured power against it."""

    def __init__(self, node: Node, min_cap_w: Optional[float] = None):
        self.node = node
        self.min_cap_w = float(min_cap_w) if min_cap_w is not None else node.spec.min_power_w
        self._cap_w: Optional[float] = None
        self._last_measured_w: float = node.idle_power_w()

    @property
    def cap_w(self) -> Optional[float]:
        return self._cap_w

    @property
    def max_cap_w(self) -> float:
        return self.node.max_power_w()

    def set_cap(self, watts: Optional[float]) -> Optional[float]:
        """Apply a node power cap (clamped to the enforceable range)."""
        if watts is None:
            self._cap_w = None
            self.node.set_power_cap(None)
            return None
        watts = min(max(float(watts), self.min_cap_w), self.max_cap_w)
        self._cap_w = self.node.set_power_cap(watts)
        return self._cap_w

    def observe(self, measured_w: float) -> None:
        """Record the latest measured node power (from the monitor)."""
        if measured_w < 0:
            raise ValueError("measured power must be >= 0")
        self._last_measured_w = float(measured_w)

    def status(self) -> PowerCapStatus:
        cap = self._cap_w
        measured = self._last_measured_w
        if cap is None:
            return PowerCapStatus(None, measured, float("inf"), False)
        return PowerCapStatus(cap, measured, max(0.0, cap - measured), measured >= cap * 0.98)

    def headroom_w(self) -> float:
        """Unused watts under the current cap (inf when uncapped)."""
        return self.status().headroom_w

    def estimated_uncapped_power_w(self, demand: PhaseDemand) -> float:
        """What the node would draw for a demand with no cap in force.

        Used by power-balancing runtimes to decide how much budget a node
        *wants* before distributing the job-level budget.
        """
        total = self.node.spec.platform_power_w
        for pkg in self.node.packages:
            total += pkg.power_at(demand, freq_ghz=pkg.frequency_ghz)
        return total

    def minimum_useful_cap_w(self) -> float:
        """The cap below which the node cannot go without duty cycling."""
        return self.min_cap_w
