"""Node-level power cap enforcement and headroom reporting.

The node power manager is the layer that turns a job- or system-level
power budget into RAPL limits, and that answers "how much of my budget am
I actually using?" — the headroom question the power-balancing runtimes
(Conductor, GEOPM power balancer) and the resource manager's power pool
both depend on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.hardware.cluster import Cluster
from repro.hardware.node import Node
from repro.hardware.workload import PhaseDemand

__all__ = [
    "PowerCapStatus",
    "NodePowerCapManager",
    "distribute_power_budget",
    "ClusterPowerCapManager",
]


def distribute_power_budget(
    budget_w: float,
    n_nodes: int,
    min_w: float,
    max_w: float,
    weights: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Split a system power budget into per-node caps, vectorised.

    Waterfilling: each node starts at its weighted share of the budget,
    shares are clamped into ``[min_w, max_w]``, and the slack freed by
    clamped nodes is redistributed over the unclamped ones — each round
    is a single set of numpy expressions over the whole cluster, and at
    most ``n_nodes`` rounds are needed (each round clamps at least one
    node or terminates).

    The result always respects the floor: when ``budget_w`` is below
    ``n_nodes * min_w`` every node gets ``min_w`` (the budget is
    infeasible and the caller's corridor logic must shed load instead).
    """
    if n_nodes < 1:
        raise ValueError("n_nodes must be >= 1")
    if min_w <= 0 or max_w < min_w:
        raise ValueError("require 0 < min_w <= max_w")
    if weights is None:
        weights = np.ones(n_nodes)
    weights = np.asarray(weights, dtype=float)
    if weights.shape != (n_nodes,):
        raise ValueError(f"weights must have shape ({n_nodes},)")
    if np.any(weights <= 0):
        raise ValueError("weights must be positive")

    caps = np.full(n_nodes, min_w)
    remaining = budget_w - n_nodes * min_w
    if remaining <= 0:
        return caps
    headroom = np.full(n_nodes, max_w - min_w)
    open_mask = headroom > 0
    for _ in range(n_nodes):
        if remaining <= 1e-12 or not np.any(open_mask):
            break
        share = remaining * np.where(open_mask, weights, 0.0) / weights[open_mask].sum()
        grant = np.minimum(share, headroom)
        caps += grant
        headroom -= grant
        remaining -= float(grant.sum())
        newly_closed = open_mask & (headroom <= 1e-12)
        if not np.any(newly_closed):
            break
        open_mask &= ~newly_closed
    return caps


class ClusterPowerCapManager:
    """Distributes a system budget across a cluster's nodes in one pass.

    The system-level counterpart of :class:`NodePowerCapManager`: the
    budget split (:func:`distribute_power_budget`) and the cap
    application (:meth:`Cluster.apply_power_caps`) are both vectorised
    over the struct-of-arrays cluster state, so re-balancing a power
    corridor at every tick stays cheap at thousands of nodes.
    """

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.min_cap_w = cluster.spec.node.min_power_w
        self.max_cap_w = cluster.spec.node.tdp_w

    def set_system_budget(
        self, budget_w: float, weights: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Cap every node so the cluster fits under ``budget_w``; returns caps."""
        caps = distribute_power_budget(
            budget_w, len(self.cluster.nodes), self.min_cap_w, self.max_cap_w, weights
        )
        return self.cluster.apply_power_caps(caps)

    def clear(self) -> None:
        """Remove all node caps."""
        self.cluster.apply_uniform_power_cap(None)

    def total_cap_w(self) -> float:
        """Sum of the node caps in force (uncapped nodes count their TDP)."""
        caps = self.cluster.state.node_power_cap_w
        return float(np.where(np.isnan(caps), self.max_cap_w, caps).sum())

    def total_headroom_w(self) -> float:
        """Unused watts under the caps, summed over capped nodes."""
        caps = self.cluster.state.node_power_cap_w
        current = self.cluster.state.node_current_power_w
        headroom = np.where(np.isnan(caps), 0.0, caps - current)
        return float(np.maximum(headroom, 0.0).sum())


@dataclass(frozen=True)
class PowerCapStatus:
    """Snapshot of a node's power-cap state."""

    cap_w: Optional[float]
    measured_w: float
    headroom_w: float
    capped: bool


class NodePowerCapManager:
    """Enforces a node power cap and tracks measured power against it."""

    def __init__(self, node: Node, min_cap_w: Optional[float] = None):
        self.node = node
        self.min_cap_w = float(min_cap_w) if min_cap_w is not None else node.spec.min_power_w
        self._cap_w: Optional[float] = None
        self._last_measured_w: float = node.idle_power_w()

    @property
    def cap_w(self) -> Optional[float]:
        return self._cap_w

    @property
    def max_cap_w(self) -> float:
        return self.node.max_power_w()

    def set_cap(self, watts: Optional[float]) -> Optional[float]:
        """Apply a node power cap (clamped to the enforceable range)."""
        if watts is None:
            self._cap_w = None
            self.node.set_power_cap(None)
            return None
        watts = min(max(float(watts), self.min_cap_w), self.max_cap_w)
        self._cap_w = self.node.set_power_cap(watts)
        return self._cap_w

    def observe(self, measured_w: float) -> None:
        """Record the latest measured node power (from the monitor)."""
        if measured_w < 0:
            raise ValueError("measured power must be >= 0")
        self._last_measured_w = float(measured_w)

    def status(self) -> PowerCapStatus:
        cap = self._cap_w
        measured = self._last_measured_w
        if cap is None:
            return PowerCapStatus(None, measured, float("inf"), False)
        return PowerCapStatus(cap, measured, max(0.0, cap - measured), measured >= cap * 0.98)

    def headroom_w(self) -> float:
        """Unused watts under the current cap (inf when uncapped)."""
        return self.status().headroom_w

    def estimated_uncapped_power_w(self, demand: PhaseDemand) -> float:
        """What the node would draw for a demand with no cap in force.

        Used by power-balancing runtimes to decide how much budget a node
        *wants* before distributing the job-level budget.
        """
        total = self.node.spec.platform_power_w
        for pkg in self.node.packages:
            total += pkg.power_at(demand, freq_ghz=pkg.frequency_ghz)
        return total

    def minimum_useful_cap_w(self) -> float:
        """The cap below which the node cannot go without duty cycling."""
        return self.min_cap_w
