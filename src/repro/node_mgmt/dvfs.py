"""DVFS governors for node-level frequency control.

A governor owns the frequency knob of a node and implements one of the
standard policies.  Job-level runtimes either bypass the governor (pin a
frequency through :meth:`DvfsGovernor.pin`) or let it adapt, which is the
"node manager" behaviour the paper's node layer describes.
"""

from __future__ import annotations

from enum import Enum
from typing import Optional

from repro.hardware.node import Node
from repro.hardware.workload import PhaseDemand

__all__ = ["GovernorPolicy", "DvfsGovernor"]


class GovernorPolicy(str, Enum):
    """Standard cpufreq-style governor policies."""

    PERFORMANCE = "performance"
    POWERSAVE = "powersave"
    ONDEMAND = "ondemand"
    USERSPACE = "userspace"


class DvfsGovernor:
    """Controls a node's core frequency according to a policy."""

    def __init__(self, node: Node, policy: GovernorPolicy = GovernorPolicy.PERFORMANCE):
        self.node = node
        self._policy = policy
        self._pinned_ghz: Optional[float] = None
        self.apply_policy()

    @property
    def policy(self) -> GovernorPolicy:
        return self._policy

    @property
    def pinned_ghz(self) -> Optional[float]:
        return self._pinned_ghz

    def set_policy(self, policy: GovernorPolicy) -> None:
        self._policy = policy
        if policy is not GovernorPolicy.USERSPACE:
            self._pinned_ghz = None
        self.apply_policy()

    def pin(self, freq_ghz: float) -> float:
        """Pin a fixed frequency (switches to the userspace policy)."""
        self._policy = GovernorPolicy.USERSPACE
        granted = self.node.set_frequency(freq_ghz)
        self._pinned_ghz = granted
        return granted

    def unpin(self) -> None:
        """Return to the performance policy."""
        self.set_policy(GovernorPolicy.PERFORMANCE)

    def apply_policy(self) -> float:
        """Apply the current policy's static frequency choice."""
        spec = self.node.spec.cpu
        if self._policy is GovernorPolicy.PERFORMANCE:
            return self.node.set_frequency(spec.freq_max_ghz)
        if self._policy is GovernorPolicy.POWERSAVE:
            return self.node.set_frequency(spec.freq_min_ghz)
        if self._policy is GovernorPolicy.USERSPACE and self._pinned_ghz is not None:
            return self.node.set_frequency(self._pinned_ghz)
        # ONDEMAND starts at base frequency and adapts per phase.
        return self.node.set_frequency(spec.freq_base_ghz)

    def adapt(self, demand: PhaseDemand) -> float:
        """Ondemand-style adaptation: pick a frequency matched to the phase.

        Memory- and communication-bound phases gain nothing from high core
        frequency, so the governor backs off; compute-bound phases get the
        maximum.  Returns the granted frequency.  Only active under the
        ONDEMAND policy — other policies return their static choice.
        """
        if self._policy is not GovernorPolicy.ONDEMAND:
            return self.node.packages[0].frequency_ghz
        spec = self.node.spec.cpu
        sensitivity = demand.core_fraction  # fraction of time that scales with f
        freq = spec.freq_min_ghz + sensitivity * (spec.freq_max_ghz - spec.freq_min_ghz)
        return self.node.set_frequency(freq)
