"""Deterministic fault injection and chaos profiles.

``repro.faults`` seats typed, replayable faults at the Power API / BMC
boundary and the executor layer:

- :mod:`repro.faults.plan` — frozen :class:`FaultPlan` / fault specs,
  JSON round-trippable.
- :mod:`repro.faults.injector` — the :class:`FaultInjector` drawing
  per-``(kind, entity)`` RNG streams, plus the process-global
  ``install()`` / ``active()`` / ``injected()`` hook instrumented code
  checks.
- :mod:`repro.faults.profiles` — named profiles (``flaky-rack``,
  ``bmc-chaos``, ``node-crash``, ``straggler``, ``storage-chaos``,
  ``all``) usable as scenario axes and service commands.
- :mod:`repro.faults.conformance` — the QA invariant battery (imported
  explicitly, not re-exported here, to keep this package importable
  from the hardware layer without cycles).
"""

from repro.faults.injector import (
    ChaoticEvaluator,
    FaultInjector,
    active,
    clear,
    injected,
    install,
)
from repro.faults.plan import (
    BmcTimeoutFault,
    CapWriteFault,
    DiskStallFault,
    FaultPlan,
    FaultSpec,
    JournalTornWriteFault,
    NodeCrashFault,
    StaleReadFault,
    StragglerFault,
    ThermalExcursionFault,
    fault_from_dict,
)
from repro.faults.profiles import get_profile, list_profiles, register_profile

__all__ = [
    "FaultPlan",
    "FaultSpec",
    "BmcTimeoutFault",
    "StaleReadFault",
    "CapWriteFault",
    "NodeCrashFault",
    "ThermalExcursionFault",
    "StragglerFault",
    "JournalTornWriteFault",
    "DiskStallFault",
    "fault_from_dict",
    "FaultInjector",
    "ChaoticEvaluator",
    "install",
    "active",
    "clear",
    "injected",
    "get_profile",
    "list_profiles",
    "register_profile",
]
