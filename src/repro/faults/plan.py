"""Typed, serialisable fault plans.

A :class:`FaultPlan` is the declarative half of the fault-injection
subsystem: a frozen collection of typed fault specs (BMC read timeouts,
stale sensor reads, failed/partial cap writes, node crashes, thermal
excursions, straggler/poisoned evaluators) plus the seed the injector
derives its per-fault RNG streams from.  Plans round-trip through plain
dictionaries/JSON so they can ride inside scenario specs, service
commands, and CI configuration.

Two knobs matter for realism (see ISSUE 6 / Sasaki & Wang):

``probability``
    Per-opportunity firing probability (per sensor read, per cap write,
    per launched job, ...).

``node_fraction``
    The fraction of nodes *eligible* for the fault at all.  Eligibility
    is decided by a stable hash of ``(seed, kind, hostname)`` — not by
    consuming RNG — so a plan with ``node_fraction=0.25`` concentrates
    its chaos on one deterministic "flaky rack" instead of spreading
    uniform noise over the fleet.  Heavy-tailed failure patterns are the
    ones that break naive robustness claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, Mapping, Sequence, Tuple, Type

__all__ = [
    "FaultSpec",
    "BmcTimeoutFault",
    "StaleReadFault",
    "CapWriteFault",
    "NodeCrashFault",
    "ThermalExcursionFault",
    "StragglerFault",
    "JournalTornWriteFault",
    "DiskStallFault",
    "FaultPlan",
    "fault_from_dict",
]


@dataclass(frozen=True)
class FaultSpec:
    """Base class for one typed fault: probability + eligible-node slice."""

    probability: float = 0.0
    node_fraction: float = 1.0

    #: Dispatch tag; every concrete subclass overrides this.
    kind = "base"

    def __post_init__(self) -> None:
        if not 0.0 <= float(self.probability) <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not 0.0 <= float(self.node_fraction) <= 1.0:
            raise ValueError(f"node_fraction must be in [0, 1], got {self.node_fraction}")

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": self.kind}
        for spec_field in fields(self):
            out[spec_field.name] = getattr(self, spec_field.name)
        return out


@dataclass(frozen=True)
class BmcTimeoutFault(FaultSpec):
    """A BMC sensor read times out: last-known value, ``healthy=False``."""

    kind = "bmc_timeout"


@dataclass(frozen=True)
class StaleReadFault(FaultSpec):
    """A BMC sensor read silently returns the *previous* sample."""

    kind = "bmc_stale"


@dataclass(frozen=True)
class CapWriteFault(FaultSpec):
    """A power-cap write fails outright or lands only partially.

    ``partial_fraction == 0`` drops the write (the old limit stays in
    force); ``0 < partial_fraction < 1`` moves the limit only that far
    from the previous value toward the requested one.
    """

    partial_fraction: float = 0.0
    kind = "cap_write"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 <= float(self.partial_fraction) < 1.0:
            raise ValueError(
                f"partial_fraction must be in [0, 1), got {self.partial_fraction}"
            )


@dataclass(frozen=True)
class NodeCrashFault(FaultSpec):
    """An allocated node dies mid-job after an exponential delay."""

    mean_delay_s: float = 120.0
    repair_time_s: float = 900.0
    kind = "node_crash"

    def __post_init__(self) -> None:
        super().__post_init__()
        if float(self.mean_delay_s) <= 0.0:
            raise ValueError(f"mean_delay_s must be positive, got {self.mean_delay_s}")
        if float(self.repair_time_s) <= 0.0:
            raise ValueError(f"repair_time_s must be positive, got {self.repair_time_s}")


@dataclass(frozen=True)
class ThermalExcursionFault(FaultSpec):
    """A package on an eligible node spikes ``delta_c`` degrees hotter."""

    delta_c: float = 15.0
    kind = "thermal"

    def __post_init__(self) -> None:
        super().__post_init__()
        if float(self.delta_c) <= 0.0:
            raise ValueError(f"delta_c must be positive, got {self.delta_c}")


@dataclass(frozen=True)
class StragglerFault(FaultSpec):
    """A tuning evaluation straggles (sleeps) or is poisoned (raises).

    ``probability`` is the straggle probability; ``poison_probability``
    is drawn from the same uniform sample, so the two are mutually
    exclusive per evaluation.  ``node_fraction`` is ignored — evaluator
    workers are not cluster nodes.
    """

    delay_s: float = 0.05
    poison_probability: float = 0.0
    kind = "straggler"

    def __post_init__(self) -> None:
        super().__post_init__()
        if float(self.delay_s) < 0.0:
            raise ValueError(f"delay_s must be non-negative, got {self.delay_s}")
        if not 0.0 <= float(self.poison_probability) <= 1.0:
            raise ValueError(
                f"poison_probability must be in [0, 1], got {self.poison_probability}"
            )
        if float(self.poison_probability) + float(self.probability) > 1.0:
            raise ValueError("probability + poison_probability must not exceed 1")


@dataclass(frozen=True)
class JournalTornWriteFault(FaultSpec):
    """A write-ahead journal append is torn mid-entry (simulated crash).

    Only a prefix of the entry's bytes — ``torn_fraction`` of them, at
    least one and never all — reaches the segment before the writer
    dies (:class:`repro.durability.JournalTornWriteError`).  Recovery
    must discard the torn tail by checksum and keep every completed
    entry.  ``node_fraction`` slices over segment names, so chaos can
    target one shard's journal.
    """

    torn_fraction: float = 0.5
    kind = "journal_torn_write"

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0.0 < float(self.torn_fraction) < 1.0:
            raise ValueError(
                f"torn_fraction must be in (0, 1), got {self.torn_fraction}"
            )


@dataclass(frozen=True)
class DiskStallFault(FaultSpec):
    """A journal append stalls ``stall_s`` seconds before completing.

    Models a saturated or degraded storage device: the write eventually
    lands intact, but the fsync path blocks — what the durability layer's
    batch fsync policy is designed to amortise.
    """

    stall_s: float = 0.01
    kind = "disk_stall"

    def __post_init__(self) -> None:
        super().__post_init__()
        if float(self.stall_s) < 0.0:
            raise ValueError(f"stall_s must be non-negative, got {self.stall_s}")


_FAULT_TYPES: Dict[str, Type[FaultSpec]] = {
    cls.kind: cls
    for cls in (
        BmcTimeoutFault,
        StaleReadFault,
        CapWriteFault,
        NodeCrashFault,
        ThermalExcursionFault,
        StragglerFault,
        JournalTornWriteFault,
        DiskStallFault,
    )
}


def fault_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    """Rebuild one typed fault spec from its ``to_dict`` form."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    if kind not in _FAULT_TYPES:
        raise ValueError(
            f"unknown fault kind {kind!r}; known: {sorted(_FAULT_TYPES)}"
        )
    return _FAULT_TYPES[kind](**payload)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded collection of fault specs.

    ``enabled=False`` keeps the plan inert: hot paths see a single
    attribute check and no RNG is ever consumed, which is what the
    near-zero-overhead bench (`bench_perf_chaos.py`) verifies.
    """

    faults: Tuple[FaultSpec, ...] = ()
    seed: int = 0
    enabled: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"faults must be FaultSpec instances, got {spec!r}")
        kinds = [spec.kind for spec in self.faults]
        if len(kinds) != len(set(kinds)):
            raise ValueError(f"duplicate fault kinds in plan: {sorted(kinds)}")

    @property
    def kinds(self) -> Tuple[str, ...]:
        return tuple(spec.kind for spec in self.faults)

    def spec(self, kind: str) -> FaultSpec:
        for spec_ in self.faults:
            if spec_.kind == kind:
                return spec_
        raise KeyError(kind)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "seed": int(self.seed),
            "enabled": bool(self.enabled),
            "faults": [spec.to_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        raw_faults: Sequence[Mapping[str, Any]] = data.get("faults", ())
        return cls(
            faults=tuple(fault_from_dict(item) for item in raw_faults),
            seed=int(data.get("seed", 0)),
            enabled=bool(data.get("enabled", True)),
            name=str(data.get("name", "")),
        )
