"""Deterministic fault injector and the process-global injection point.

The injector is the imperative half of the subsystem: instrumented hot
paths (BMC reads, ``Cluster.apply_power_caps``, scheduler launches,
tuning evaluators) ask it whether a fault fires *here, now*.  Decisions
are drawn from per-``(kind, entity)`` named streams derived via
:class:`repro.sim.rng.RandomStreams`, so a chaos run replays bit-for-bit
for a fixed plan seed regardless of which component asks first.

Instrumented code reaches the injector through the module-global
:func:`active` handle::

    from repro.faults import injector as faults

    inj = faults.active()
    if inj is not None and inj.enabled:
        ...

which keeps the disabled / not-installed cost to one global read and one
branch — the overhead budget checked by ``benchmarks/bench_perf_chaos.py``.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.faults.plan import FaultPlan, FaultSpec
from repro.sim.rng import RandomStreams, stable_name_key

__all__ = [
    "FaultInjector",
    "ChaoticEvaluator",
    "install",
    "active",
    "clear",
    "injected",
]

#: Hard cap on the per-injector event log (counters are unbounded).
_EVENT_LOG_LIMIT = 512


class FaultInjector:
    """Draws fault decisions for one :class:`FaultPlan`, deterministically."""

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.streams = RandomStreams(plan.seed).spawn("faults")
        self._specs: Dict[str, FaultSpec] = {spec.kind: spec for spec in plan.faults}
        self.enabled = bool(plan.enabled) and any(
            spec.probability > 0.0 or getattr(spec, "poison_probability", 0.0) > 0.0
            for spec in plan.faults
        )
        self._eligible_cache: Dict[Tuple[str, str], bool] = {}
        self._counters: Dict[str, int] = {}
        self._events: List[Tuple[str, str]] = []

    # ------------------------------------------------------------------
    # bookkeeping

    def _record(self, event: str, entity: str) -> None:
        self._counters[event] = self._counters.get(event, 0) + 1
        if len(self._events) < _EVENT_LOG_LIMIT:
            self._events.append((event, entity))

    def _eligible(self, kind: str, hostname: str) -> bool:
        """Stable-hash membership in the fault's eligible-node slice.

        Hashing ``(seed, kind, hostname)`` instead of drawing RNG keeps
        eligibility independent of call order *and* concentrates chaos
        on a fixed node subset — the heavy-tailed "one flaky rack"
        pattern rather than uniform noise.
        """
        key = (kind, hostname)
        cached = self._eligible_cache.get(key)
        if cached is None:
            fraction = float(self._specs[kind].node_fraction)
            if fraction >= 1.0:
                cached = True
            elif fraction <= 0.0:
                cached = False
            else:
                token = stable_name_key(f"{self.plan.seed}:{kind}:{hostname}")
                cached = token < fraction * 2**31
            self._eligible_cache[key] = cached
        return cached

    def events(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._events)

    def stats(self) -> Dict[str, object]:
        """Wire/metrics-safe summary (scalars and a flat counter dict)."""
        return {
            "profile": self.plan.name,
            "enabled": bool(self.enabled),
            "seed": int(self.plan.seed),
            "events_total": int(sum(self._counters.values())),
            "events": {k: int(v) for k, v in sorted(self._counters.items())},
        }

    # ------------------------------------------------------------------
    # decision points

    def sensor_fault(self, hostname: str, sensor: str) -> Optional[str]:
        """``"timeout"`` / ``"stale"`` / ``None`` for one BMC sensor read."""
        spec = self._specs.get("bmc_timeout")
        if spec is not None and spec.probability > 0.0 and self._eligible("bmc_timeout", hostname):
            rng = self.streams.stream(f"bmc_timeout:{hostname}:{sensor}")
            if rng.random() < spec.probability:
                self._record("bmc_timeout", hostname)
                return "timeout"
        spec = self._specs.get("bmc_stale")
        if spec is not None and spec.probability > 0.0 and self._eligible("bmc_stale", hostname):
            rng = self.streams.stream(f"bmc_stale:{hostname}:{sensor}")
            if rng.random() < spec.probability:
                self._record("bmc_stale", hostname)
                return "stale"
        return None

    def cap_writes(
        self,
        hostnames: Sequence[str],
        requested: np.ndarray,
        previous: np.ndarray,
    ) -> np.ndarray:
        """Corrupt a vector of requested per-node caps (NaN = uncapped).

        No-op writes (requested == previous) consume no RNG, so the
        replay stream tracks actual state changes, not call counts.
        """
        spec = self._specs.get("cap_write")
        if spec is None or spec.probability <= 0.0:
            return requested
        out = np.array(requested, dtype=float, copy=True)
        for i, hostname in enumerate(hostnames):
            if not self._eligible("cap_write", hostname):
                continue
            req, prev = out[i], previous[i]
            if req == prev or (np.isnan(req) and np.isnan(prev)):
                continue
            rng = self.streams.stream(f"cap_write:{hostname}")
            if rng.random() >= spec.probability:
                continue
            if spec.partial_fraction > 0.0 and not np.isnan(req) and not np.isnan(prev):
                out[i] = prev + spec.partial_fraction * (req - prev)
                self._record("cap_write_partial", hostname)
            else:
                out[i] = prev
                self._record("cap_write_failed", hostname)
        return out

    def cap_write(
        self, hostname: str, requested_w: float, current_w: Optional[float]
    ) -> Optional[float]:
        """Single-chassis cap write (Redfish path): wattage actually applied.

        Returns ``None`` when the write is dropped and there is no
        current limit to fall back to — the caller keeps the chassis
        uncapped and reports the old state, never raises.
        """
        spec = self._specs.get("cap_write")
        if spec is None or spec.probability <= 0.0 or not self._eligible("cap_write", hostname):
            return requested_w
        rng = self.streams.stream(f"cap_write:{hostname}")
        if rng.random() >= spec.probability:
            return requested_w
        if spec.partial_fraction > 0.0 and current_w is not None:
            self._record("cap_write_partial", hostname)
            return current_w + spec.partial_fraction * (requested_w - current_w)
        self._record("cap_write_failed", hostname)
        return current_w

    def node_crash(
        self,
        job_id: str,
        hostnames: Sequence[str],
        walltime_s: Optional[float] = None,
    ) -> Optional[Tuple[str, float]]:
        """Decide at launch whether one of the job's nodes dies mid-run.

        Returns ``(hostname, delay_s)`` or ``None``.  The delay is
        exponential around the spec's mean, clipped inside the job's
        walltime estimate so the crash interrupts real work.
        """
        spec = self._specs.get("node_crash")
        if spec is None or spec.probability <= 0.0:
            return None
        victims = [h for h in hostnames if self._eligible("node_crash", h)]
        if not victims:
            return None
        rng = self.streams.stream(f"node_crash:{job_id}")
        if rng.random() >= spec.probability:
            return None
        victim = victims[int(rng.integers(0, len(victims)))]
        delay_s = float(rng.exponential(float(spec.mean_delay_s)))
        if walltime_s is not None and walltime_s > 0:
            delay_s = min(delay_s, 0.9 * float(walltime_s))
        delay_s = max(delay_s, 1.0)
        self._record("node_crash", victim)
        return victim, delay_s

    def repair_time_s(self, default: float = 900.0) -> float:
        spec = self._specs.get("node_crash")
        if spec is None:
            return float(default)
        return float(spec.repair_time_s)

    def thermal_excursions(self, hostnames: Sequence[str]) -> List[Tuple[str, float]]:
        """Per monitoring tick: ``(hostname, delta_c)`` spikes to apply."""
        spec = self._specs.get("thermal")
        if spec is None or spec.probability <= 0.0:
            return []
        events: List[Tuple[str, float]] = []
        for hostname in hostnames:
            if not self._eligible("thermal", hostname):
                continue
            rng = self.streams.stream(f"thermal:{hostname}")
            if rng.random() < spec.probability:
                self._record("thermal", hostname)
                events.append((hostname, float(spec.delta_c)))
        return events

    def disk_stall(self, entity: str) -> Optional[float]:
        """Seconds one journal append stalls, or ``None`` (the usual case).

        ``entity`` is the segment name (e.g. ``shard-0.wal``); eligibility
        slices over segments exactly like hostnames, so a plan can pin
        storage chaos to one shard's journal.
        """
        spec = self._specs.get("disk_stall")
        if spec is None or spec.probability <= 0.0 or not self._eligible("disk_stall", entity):
            return None
        rng = self.streams.stream(f"disk_stall:{entity}")
        if rng.random() < spec.probability:
            self._record("disk_stall", entity)
            return float(spec.stall_s)
        return None

    def journal_torn_write(self, entity: str) -> Optional[float]:
        """Fraction of this journal append to persist before dying, or ``None``.

        A non-``None`` return instructs the segment to write only that
        prefix of the encoded entry and raise
        :class:`~repro.durability.JournalTornWriteError` — the replayable
        stand-in for a process killed mid-append.
        """
        spec = self._specs.get("journal_torn_write")
        if (
            spec is None
            or spec.probability <= 0.0
            or not self._eligible("journal_torn_write", entity)
        ):
            return None
        rng = self.streams.stream(f"journal_torn_write:{entity}")
        if rng.random() < spec.probability:
            self._record("journal_torn_write", entity)
            return float(spec.torn_fraction)
        return None

    def evaluator_fault(self, key: str, attempt: int) -> Optional[str]:
        """``"poison"`` / ``"straggle"`` / ``None`` for one evaluation attempt.

        The attempt index is part of the stream name so a retried
        evaluation redraws — transient faults are recoverable, which is
        what the tuner's retry-with-backoff policy exploits.
        """
        spec = self._specs.get("straggler")
        if spec is None:
            return None
        poison_p = float(spec.poison_probability)
        straggle_p = float(spec.probability)
        if poison_p <= 0.0 and straggle_p <= 0.0:
            return None
        rng = self.streams.stream(f"straggler:{key}:{int(attempt)}")
        draw = float(rng.random())
        if draw < poison_p:
            self._record("evaluator_poisoned", key)
            return "poison"
        if draw < poison_p + straggle_p:
            self._record("evaluator_straggle", key)
            return "straggle"
        return None


class ChaoticEvaluator:
    """Picklable evaluator wrapper injecting straggle/poison faults.

    Wraps a (module-level, hence picklable) evaluator so chaos follows
    it into ``ProcessExecutor`` workers: each worker rebuilds its own
    :class:`FaultInjector` from the plan on unpickle, and the per-key,
    per-attempt streams keep serial and process execution bit-identical.
    """

    def __init__(self, evaluator, plan: FaultPlan):
        self.evaluator = evaluator
        self.plan = plan
        self._injector: Optional[FaultInjector] = None
        self._attempts: Dict[str, int] = {}

    def __getstate__(self):
        return {"evaluator": self.evaluator, "plan": self.plan}

    def __setstate__(self, state):
        self.__init__(state["evaluator"], state["plan"])

    def __call__(self, config):
        if self._injector is None:
            self._injector = FaultInjector(self.plan)
        if self._injector.enabled:
            key = repr(sorted(config.items()))
            attempt = self._attempts.get(key, 0)
            self._attempts[key] = attempt + 1
            fault = self._injector.evaluator_fault(key, attempt)
            if fault == "poison":
                raise RuntimeError(
                    f"chaos: poisoned evaluation (attempt {attempt})"
                )
            if fault == "straggle":
                import time

                time.sleep(float(self.plan.spec("straggler").delay_s))
        return self.evaluator(config)


# ----------------------------------------------------------------------
# Process-global injection point

_ACTIVE: Optional[FaultInjector] = None
_LOCK = threading.Lock()


def install(plan_or_injector: Union[FaultPlan, FaultInjector]) -> FaultInjector:
    """Install (replacing any current) the process-global injector."""
    global _ACTIVE
    if isinstance(plan_or_injector, FaultInjector):
        inj = plan_or_injector
    else:
        inj = FaultInjector(plan_or_injector)
    with _LOCK:
        _ACTIVE = inj
    return inj


def active() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` (the common, zero-cost case)."""
    return _ACTIVE


def clear() -> Optional[FaultInjector]:
    """Uninstall and return the current injector, if any."""
    global _ACTIVE
    with _LOCK:
        inj = _ACTIVE
        _ACTIVE = None
    return inj


@contextmanager
def injected(plan: Union[FaultPlan, FaultInjector]) -> Iterator[FaultInjector]:
    """Scope an injector installation; restores the previous one on exit."""
    global _ACTIVE
    previous = _ACTIVE
    inj = install(plan)
    try:
        yield inj
    finally:
        with _LOCK:
            _ACTIVE = previous
