"""QA conformance battery: invariants chaos runs must preserve.

Fault injection is only useful if recovery is *checkable*: a crash that
silently loses a job or leaks committed power is worse than no chaos at
all.  This module collects the invariants the resilience policies
promise, as plain predicate helpers the test battery (and the chaos
benchmark) assert after running use cases under fault profiles:

- **no lost or duplicated jobs** — every submitted job reaches a
  terminal state, and the completion ledger holds each at most once;
- **conserved accounting** — the committed-power ledger returns to
  zero, node ownership is fully released (quarantine aside), and both
  energy meters stay inside the machine's physical capacity envelope;
- **bit-identical replay** — the same payload under the same fault
  plan produces the same JSON, serial or process, first run or tenth.

Kept import-light on purpose: the scheduler/campaign objects are passed
in, never constructed here, so ``repro.faults`` stays importable from
the hardware layer without cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.resource_manager.job import JobState

__all__ = [
    "scheduler_invariants",
    "assert_scheduler_invariants",
    "durability_invariants",
    "assert_durability_invariants",
    "run_payload_twice",
    "replay_is_bit_identical",
]

#: Slack for float ledger comparisons (watts / joules are O(1e3..1e9)).
_EPS = 1e-6


def scheduler_invariants(scheduler) -> Dict[str, bool]:
    """Evaluate the post-run invariants of a (possibly chaos-ridden) scheduler.

    Expects the scheduler to have been driven to completion
    (``run_until_complete``).  Quarantined nodes still draining count as
    accounted-for, not leaked.
    """
    jobs = list(scheduler.jobs.values())
    completed_ids = [job.job_id for job in scheduler.completed]
    quarantine_owners = {
        f"__quarantine__:{hostname}" for hostname in scheduler.quarantined
    }
    owners = {node.allocated_to for node in scheduler.cluster.nodes if not node.is_free}
    completed_energies = [
        job.result.energy_j
        for job in jobs
        if job.state is JobState.COMPLETED and job.result is not None
    ]
    job_energy = sum(completed_energies)
    cluster_energy = scheduler.cluster.total_energy_j()
    # Physical capacity bound: no accounting (site meter or summed job
    # results) may exceed the whole machine drawing its maximum power
    # for the whole elapsed time.  Requeue double-counting or a leaked
    # partial-run record blows through this; sampling-cadence skew
    # between the two meters does not.
    capacity_j = sum(
        node.max_power_w() for node in scheduler.cluster.nodes
    ) * max(float(scheduler.env.now), 0.0)
    return {
        # Every submitted job reached a terminal state — nothing lost.
        "all_jobs_terminal": all(not job.is_active for job in jobs),
        # The completion ledger holds each job at most once — nothing
        # duplicated by a requeue racing a finish.
        "no_duplicate_completions": len(completed_ids) == len(set(completed_ids)),
        # The committed-power ledger fully unwound.
        "power_ledger_zero": abs(scheduler._committed_power_w) < _EPS
        and not scheduler._commitments,
        # No job still owns nodes; only quarantine holds are outstanding.
        "nodes_released": not scheduler._owned_nodes and owners <= quarantine_owners,
        # free + quarantined covers the machine.
        "node_count_conserved": scheduler.cluster.state.free_count
        + len(scheduler.quarantined)
        == len(scheduler.cluster),
        # Pending releases in the availability profile are exactly the
        # quarantine drains.
        "availability_consistent": len(scheduler._availability)
        == len(scheduler.quarantined),
        # Both meters stay within the machine's physical capacity and
        # every completed job accounts a positive, finite energy.
        "energy_conserved": (
            0.0 <= cluster_energy <= capacity_j + _EPS
            and job_energy <= capacity_j + _EPS
            and all(0.0 < e < float("inf") for e in completed_energies)
        ),
    }


def assert_scheduler_invariants(scheduler) -> None:
    """Raise ``AssertionError`` naming every violated invariant."""
    checks = scheduler_invariants(scheduler)
    violated = sorted(name for name, ok in checks.items() if not ok)
    if violated:
        raise AssertionError(f"scheduler invariants violated: {violated}")


def durability_invariants(directory, reference=None) -> Dict[str, bool]:
    """Post-chaos invariants of one durability root (``repro.durability``).

    Run after storage chaos (``journal_torn_write`` / ``disk_stall``
    plans, or a plain kill): recovery from ``directory`` must always
    succeed, be idempotent, keep the sharded/merged parity contract,
    and — when the uninterrupted run's records are passed as
    ``reference`` (a sequence of ``EvaluationRecord`` or their dicts) —
    equal some completed-record prefix of it.
    """
    from repro.durability import recover

    checks = {
        "recover_succeeds": False,
        "recover_idempotent": False,
        "sharded_merged_parity": False,
    }
    if reference is not None:
        checks["prefix_of_reference"] = False
    try:
        db = recover(directory, reattach=False)
    except Exception:
        return checks
    checks["recover_succeeds"] = True
    records = [record.to_dict() for record in db]
    try:
        again = recover(directory, reattach=False)
    except Exception:
        return checks
    checks["recover_idempotent"] = [r.to_dict() for r in again] == records
    checks["sharded_merged_parity"] = (
        [record.to_dict() for record in db.merged()] == records
        and db.merged().to_json() == db.merged(db.name).to_json()
    )
    if reference is not None:
        expected = [
            record if isinstance(record, Mapping) else record.to_dict()
            for record in reference
        ]
        checks["prefix_of_reference"] = records == expected[: len(records)]
    return checks


def assert_durability_invariants(directory, reference=None) -> None:
    """Raise ``AssertionError`` naming every violated durability invariant."""
    checks = durability_invariants(directory, reference=reference)
    violated = sorted(name for name, ok in checks.items() if not ok)
    if violated:
        raise AssertionError(f"durability invariants violated: {violated}")


def _normalise(value: Any) -> Any:
    """JSON-normalise a result payload for bitwise comparison."""
    if isinstance(value, Mapping):
        return {str(k): _normalise(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalise(v) for v in value]
    if hasattr(value, "item"):  # numpy scalar
        return value.item()
    return value


def run_payload_twice(payload: Mapping[str, Any]) -> tuple:
    """Execute one campaign payload twice, returning both JSON dumps."""
    from repro.experiments.campaign import _execute_run

    first = json.dumps(_normalise(_execute_run(dict(payload))["result"]), sort_keys=True)
    second = json.dumps(_normalise(_execute_run(dict(payload))["result"]), sort_keys=True)
    return first, second


def replay_is_bit_identical(payload: Mapping[str, Any]) -> bool:
    """Whether a (chaos) run replays bit-for-bit under its fault plan."""
    first, second = run_payload_twice(payload)
    return first == second
