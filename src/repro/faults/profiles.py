"""Named fault profiles — the chaos vocabulary for scenarios and CI.

A profile is a factory that binds a curated set of fault specs to a
seed; campaigns reference profiles by name (``ScenarioSpec.fault_profile``)
and the service exposes them via ``chaos.inject``.  Per Sasaki & Wang's
caution about cluster-robust claims, the default profiles are
heavy-tailed: ``flaky-rack`` concentrates every hardware fault on a
quarter of the fleet and ``straggler`` poisons a single worker pattern,
rather than sprinkling uniform noise.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.faults.plan import (
    BmcTimeoutFault,
    CapWriteFault,
    DiskStallFault,
    FaultPlan,
    JournalTornWriteFault,
    NodeCrashFault,
    StaleReadFault,
    StragglerFault,
    ThermalExcursionFault,
)

__all__ = ["get_profile", "list_profiles", "register_profile", "PROFILES"]

#: name -> (description, spec factory)
PROFILES: Dict[str, Tuple[str, Callable[[], Tuple]]] = {}


def register_profile(name: str, description: str):
    """Register a fault-spec factory under a profile name."""

    def decorator(factory: Callable[[], Tuple]):
        if name in PROFILES:
            raise ValueError(f"duplicate fault profile {name!r}")
        PROFILES[name] = (description, factory)
        return factory

    return decorator


@register_profile(
    "flaky-rack",
    "Heavy-tailed hardware chaos concentrated on ~25% of nodes: BMC "
    "timeouts/stale reads, failed and partial cap writes, mid-job "
    "crashes, thermal excursions.",
)
def _flaky_rack():
    return (
        BmcTimeoutFault(probability=0.10, node_fraction=0.25),
        StaleReadFault(probability=0.10, node_fraction=0.25),
        CapWriteFault(probability=0.15, node_fraction=0.25, partial_fraction=0.5),
        NodeCrashFault(
            probability=0.25, node_fraction=0.25, mean_delay_s=90.0, repair_time_s=600.0
        ),
        ThermalExcursionFault(probability=0.05, node_fraction=0.25, delta_c=12.0),
    )


@register_profile(
    "bmc-chaos",
    "Fleet-wide sensor/cap-write flakiness: read timeouts, stale "
    "samples, dropped cap writes.  No crashes.",
)
def _bmc_chaos():
    return (
        BmcTimeoutFault(probability=0.15),
        StaleReadFault(probability=0.15),
        CapWriteFault(probability=0.10),
    )


@register_profile(
    "node-crash",
    "Aggressive mid-job node deaths on half the fleet; exercises "
    "re-queue, quarantine/drain, and budget reclaim.",
)
def _node_crash():
    return (
        NodeCrashFault(
            probability=0.50, node_fraction=0.5, mean_delay_s=60.0, repair_time_s=300.0
        ),
    )


@register_profile(
    "straggler",
    "Tuning-evaluator chaos: straggling (delayed) and poisoned "
    "(raising) evaluations; exercises tuner retry-with-backoff.",
)
def _straggler():
    return (
        StragglerFault(probability=0.20, delay_s=0.02, poison_probability=0.10),
    )


@register_profile(
    "storage-chaos",
    "Durability-layer chaos: torn write-ahead-journal appends "
    "(simulated crash mid-entry) and disk stalls on half the journal "
    "segments; exercises checksum-discard recovery and the batch "
    "fsync path.",
)
def _storage_chaos():
    return (
        JournalTornWriteFault(probability=0.05, node_fraction=0.5, torn_fraction=0.5),
        DiskStallFault(probability=0.10, node_fraction=0.5, stall_s=0.002),
    )


@register_profile(
    "all",
    "Every hardware/evaluator fault kind at moderate rates — the "
    "kitchen-sink conformance profile (storage chaos lives in "
    "'storage-chaos', which needs a journal to bite).",
)
def _all():
    return (
        BmcTimeoutFault(probability=0.05, node_fraction=0.5),
        StaleReadFault(probability=0.05, node_fraction=0.5),
        CapWriteFault(probability=0.08, node_fraction=0.5, partial_fraction=0.3),
        NodeCrashFault(
            probability=0.15, node_fraction=0.5, mean_delay_s=120.0, repair_time_s=600.0
        ),
        ThermalExcursionFault(probability=0.03, node_fraction=0.5, delta_c=10.0),
        StragglerFault(probability=0.10, delay_s=0.01, poison_probability=0.05),
    )


def get_profile(name: str, seed: int = 0, enabled: bool = True) -> FaultPlan:
    """Instantiate a named profile as a seeded :class:`FaultPlan`."""
    if name not in PROFILES:
        raise KeyError(
            f"unknown fault profile {name!r}; known: {sorted(PROFILES)}"
        )
    _, factory = PROFILES[name]
    return FaultPlan(
        faults=tuple(factory()), seed=int(seed), enabled=bool(enabled), name=name
    )


def list_profiles() -> List[Dict[str, str]]:
    """Name + description for every registered profile (sorted)."""
    return [
        {"name": name, "description": PROFILES[name][0]}
        for name in sorted(PROFILES)
    ]
