"""Shared experiment plumbing the seven use-case modules used to copy.

Every use case needs the same two setup moves: build a seeded cluster,
and hand an experiment a set of freshly reset nodes.  Both live here
once; the reset goes through the vectorised
:meth:`~repro.hardware.cluster.Cluster.reset_nodes` kernel so the
free/busy mask and power-cap bookkeeping can never desync from the
per-node attributes (the failure mode of the old per-use-case
``_fresh_nodes`` copies that assigned ``node.allocated_to`` directly).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.hardware.cluster import Cluster, ClusterSpec
from repro.hardware.node import Node

__all__ = ["make_cluster", "fresh_nodes"]


def make_cluster(
    n_nodes: int, seed: int, spec: Optional[ClusterSpec] = None
) -> Cluster:
    """Build the standard seeded experiment cluster.

    The single replacement for the ``Cluster(ClusterSpec(n_nodes=...),
    seed=...)`` boilerplate: same construction, so seeded clusters are
    bit-identical to the historical per-use-case copies.
    """
    return Cluster(spec if spec is not None else ClusterSpec(n_nodes=n_nodes), seed=seed)


def fresh_nodes(
    cluster: Cluster,
    count: int,
    cap_w: Optional[float] = None,
    freq_ghz: Optional[float] = None,
    uncore_ghz: Optional[float] = None,
) -> List[Node]:
    """The first ``count`` nodes, reset for a fresh experiment run.

    Allocation cleared, power cap set to ``cap_w`` (``None`` uncaps) and
    core/uncore frequencies restored (base / max by default) — all
    through :meth:`Cluster.reset_nodes`, i.e. through ``ClusterState``.

    ``count`` beyond the cluster truncates to the whole cluster, the
    ``cluster.nodes[:count]`` semantics every historical experiment
    relied on (uc1's co-tuner deliberately proposes node counts larger
    than small test clusters and expects the run to proceed on what
    exists).
    """
    return cluster.reset_nodes(
        np.arange(min(int(count), len(cluster.nodes))),
        cap_w=cap_w,
        freq_ghz=freq_ghz,
        uncore_ghz=uncore_ghz,
    )
