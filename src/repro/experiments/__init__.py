"""Unified experiment-campaign subsystem for the seven §3.2 use cases.

The paper's product is its experiments; this package is the layer that
runs them at scale.  A declarative :class:`ScenarioSpec` names a use
case, its parameters, a seed list and (optionally) a time-varying
per-node power-budget trace; a :class:`Campaign` expands scenario×seed
grids and fans the runs out over the PR 1/2 executors (``serial`` /
``thread`` / ``process``), captures every run's metrics into one
columnar :class:`~repro.telemetry.database.PerformanceDatabase` (tagged
by use case, scenario and seed) and aggregates across seeds.

The seven use-case modules register themselves here
(:func:`register_use_case`); their public ``run_use_case`` functions are
thin shims over the same registered runners, so a campaign of one
scenario and one seed is bit-identical to the historical direct call.

Run campaigns from the command line with ``python -m repro.experiments``.
"""

from repro.experiments.campaign import (
    Campaign,
    CampaignResult,
    RunResult,
    RunSpec,
    derive_seeds,
)
from repro.experiments.registry import (
    UseCaseDef,
    build_scenario,
    get_use_case,
    list_use_cases,
    register_use_case,
    run_registered,
    scalar_metrics,
)
from repro.experiments.scenarios import BudgetTrace, ScenarioSpec
from repro.experiments.shared import fresh_nodes, make_cluster

__all__ = [
    "BudgetTrace",
    "Campaign",
    "CampaignResult",
    "RunResult",
    "RunSpec",
    "ScenarioSpec",
    "UseCaseDef",
    "build_scenario",
    "derive_seeds",
    "fresh_nodes",
    "get_use_case",
    "list_use_cases",
    "make_cluster",
    "register_use_case",
    "run_registered",
    "scalar_metrics",
]
