"""Registry of runnable use cases.

Each use-case module registers its module-level experiment function with
:func:`register_use_case`; the registry is what the campaign runner, the
CLI and the ``run_use_case`` shims dispatch through.  Registration
introspects the function signature for the parameter defaults, so the
declarative layer and the implementation can never drift apart.

The runner must be a *module-level* function: the campaign ships runs to
the ``process`` executor by import path, exactly like the batched
tuner's evaluators.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.experiments.scenarios import BudgetTrace, ScenarioSpec

__all__ = [
    "UseCaseDef",
    "register_use_case",
    "get_use_case",
    "list_use_cases",
    "build_scenario",
    "run_registered",
    "scalar_metrics",
]

_REGISTRY: Dict[str, "UseCaseDef"] = {}


@dataclass(frozen=True)
class UseCaseDef:
    """A registered use case: runner + campaign metadata."""

    name: str
    runner: Callable[..., Dict[str, Any]]
    description: str
    #: Keyword defaults introspected from the runner signature (sans seed).
    defaults: Mapping[str, Any]
    #: The runner kwarg a scenario's budget trace writes per segment
    #: (None: the use case has no per-node budget knob).
    budget_param: Optional[str]
    #: Key into :func:`scalar_metrics` output used as the database objective.
    objective_metric: str
    minimize: bool

    def validate_params(self, params: Mapping[str, Any]) -> Dict[str, Any]:
        """Reject overrides that do not match the runner's keywords."""
        unknown = sorted(set(params) - set(self.defaults))
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {unknown} for use case {self.name!r}; "
                f"available: {sorted(self.defaults)}"
            )
        return dict(params)

    def run(self, seed: int, **params: Any) -> Dict[str, Any]:
        """Run the experiment at one seed with validated overrides."""
        return self.runner(seed=int(seed), **self.validate_params(params))


def register_use_case(
    name: str,
    *,
    description: str = "",
    budget_param: Optional[str] = None,
    objective_metric: str = "",
    minimize: bool = True,
) -> Callable[[Callable[..., Dict[str, Any]]], Callable[..., Dict[str, Any]]]:
    """Decorator registering a module-level experiment function.

    The function must accept ``seed`` plus keyword parameters with
    defaults; those defaults become the scenario's base parameters.
    """

    def decorate(runner: Callable[..., Dict[str, Any]]) -> Callable[..., Dict[str, Any]]:
        signature = inspect.signature(runner)
        if "seed" not in signature.parameters:
            raise TypeError(f"use case {name!r} runner must accept a 'seed' keyword")
        defaults = {
            param.name: param.default
            for param in signature.parameters.values()
            if param.name != "seed" and param.default is not inspect.Parameter.empty
        }
        if budget_param is not None and budget_param not in defaults:
            raise TypeError(
                f"budget_param {budget_param!r} is not a keyword of use case {name!r}"
            )
        doc_lines = (inspect.getdoc(runner) or "").splitlines()
        _REGISTRY[name] = UseCaseDef(
            name=name,
            runner=runner,
            description=description or (doc_lines[0] if doc_lines else name),
            defaults=defaults,
            budget_param=budget_param,
            objective_metric=objective_metric,
            minimize=minimize,
        )
        return runner

    return decorate


def _ensure_builtin() -> None:
    """Import the seven use-case modules so they self-register (lazy to
    avoid an import cycle: the use cases import this module)."""
    import repro.core.usecases  # noqa: F401  (import for side effect)


def get_use_case(name: str) -> UseCaseDef:
    _ensure_builtin()
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown use case {name!r}; registered: {sorted(_REGISTRY)}"
        )
    return _REGISTRY[name]


def list_use_cases() -> Tuple[UseCaseDef, ...]:
    """All registered use cases, sorted by name."""
    _ensure_builtin()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def run_registered(name: str, seed: int = 1, **params: Any) -> Dict[str, Any]:
    """Run a registered use case directly (what the ``run_use_case`` shims call)."""
    return get_use_case(name).run(seed=seed, **params)


def build_scenario(
    use_case: str,
    params: Optional[Mapping[str, Any]] = None,
    seeds: Sequence[int] = (1,),
    budget_trace: Optional[BudgetTrace] = None,
    name: str = "",
    tags: Optional[Mapping[str, str]] = None,
    fault_profile: Optional[str] = None,
) -> ScenarioSpec:
    """Build a validated :class:`ScenarioSpec` for a registered use case."""
    defn = get_use_case(use_case)
    overrides = defn.validate_params(params or {})
    if budget_trace is not None and defn.budget_param is None:
        raise ValueError(
            f"use case {use_case!r} has no budget parameter; "
            "it cannot take a budget-trace axis"
        )
    if fault_profile is not None:
        from repro.faults.profiles import PROFILES

        if fault_profile not in PROFILES:
            raise ValueError(
                f"unknown fault profile {fault_profile!r}; known: {sorted(PROFILES)}"
            )
    return ScenarioSpec(
        use_case=use_case,
        name=name,
        params=overrides,
        seeds=seeds,
        budget_trace=budget_trace,
        tags=tags or {},
        fault_profile=fault_profile,
    )


def scalar_metrics(
    result: Mapping[str, Any], max_depth: int = 4, _prefix: str = ""
) -> Dict[str, float]:
    """Flatten a use-case result dictionary to dotted numeric leaves.

    Nested dictionaries flatten to ``outer.inner`` keys; booleans become
    0.0/1.0; lists and non-numeric leaves are dropped.  This is the
    uniform shape the campaign stores in the performance database.
    """
    flat: Dict[str, float] = {}
    for key, value in result.items():
        name = f"{_prefix}{key}"
        if isinstance(value, bool):
            flat[name] = float(value)
        elif isinstance(value, (int, float)):
            flat[name] = float(value)
        elif isinstance(value, Mapping) and max_depth > 1:
            flat.update(
                scalar_metrics(value, max_depth=max_depth - 1, _prefix=f"{name}.")
            )
    return flat
