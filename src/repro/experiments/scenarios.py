"""Declarative experiment scenarios.

A :class:`ScenarioSpec` is the unit a campaign plans with: which use
case to run, with which parameter overrides, over which seeds, and —
the scenario axis the static use cases cannot express — under which
*time-varying* per-node power budget (:class:`BudgetTrace`).  Specs are
plain frozen data with validation and ``to_dict``/``from_dict`` round
tripping, so campaigns can be written down as JSON, shipped to worker
processes, and reproduced later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["BudgetTrace", "ScenarioSpec"]


@dataclass(frozen=True)
class BudgetTrace:
    """A piecewise-constant per-node power-budget schedule.

    ``times_s[i]`` is the simulation time at which ``watts_per_node[i]``
    takes effect; the budget holds until the next breakpoint.  ``None``
    entries mean "uncapped" during that segment — a green-energy style
    schedule (cap hard when grid power is scarce, uncap when renewables
    are plentiful) is one of these traces.
    """

    times_s: Tuple[float, ...]
    watts_per_node: Tuple[Optional[float], ...]

    def __post_init__(self) -> None:
        times = tuple(float(t) for t in self.times_s)
        watts = tuple(None if w is None else float(w) for w in self.watts_per_node)
        if not times:
            raise ValueError("a budget trace needs at least one breakpoint")
        if len(times) != len(watts):
            raise ValueError("times_s and watts_per_node must have equal length")
        if times[0] != 0.0:
            raise ValueError("the first breakpoint must be at time 0")
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("breakpoints must be strictly increasing")
        if any(w is not None and w <= 0 for w in watts):
            raise ValueError("budgets must be positive (or None for uncapped)")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "watts_per_node", watts)

    def __len__(self) -> int:
        return len(self.times_s)

    def value_at(self, time_s: float) -> Optional[float]:
        """The per-node budget in force at ``time_s`` (None = uncapped)."""
        if time_s < 0:
            raise ValueError("time_s must be >= 0")
        index = int(np.searchsorted(self.times_s, time_s, side="right")) - 1
        return self.watts_per_node[index]

    def segments(self) -> Tuple[Tuple[float, Optional[float]], ...]:
        """``(start_time_s, watts)`` pairs, one per trace segment."""
        return tuple(zip(self.times_s, self.watts_per_node))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "times_s": list(self.times_s),
            "watts_per_node": list(self.watts_per_node),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BudgetTrace":
        return cls(
            times_s=tuple(data["times_s"]),
            watts_per_node=tuple(data["watts_per_node"]),
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One declarative experiment scenario.

    ``params`` override the registered use case's defaults (unknown keys
    are rejected at campaign-build time, where the registry is
    available).  ``seeds`` is the multi-seed axis; ``budget_trace`` adds
    the time-varying power-budget axis — the campaign runs the scenario
    once per trace segment with that segment's budget installed in the
    use case's budget parameter.
    """

    use_case: str
    name: str = ""
    params: Mapping[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (1,)
    budget_trace: Optional[BudgetTrace] = None
    tags: Mapping[str, str] = field(default_factory=dict)
    #: Named fault profile (:mod:`repro.faults.profiles`) installed for
    #: every run of this scenario — the chaos/QA-conformance axis.
    #: Validated against the profile registry at campaign-build time.
    fault_profile: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.use_case or not isinstance(self.use_case, str):
            raise ValueError("use_case must be a non-empty string")
        if self.fault_profile is not None and (
            not isinstance(self.fault_profile, str) or not self.fault_profile
        ):
            raise ValueError("fault_profile must be None or a non-empty string")
        object.__setattr__(self, "name", str(self.name) or self.use_case)
        object.__setattr__(self, "params", dict(self.params))
        seeds = tuple(int(s) for s in self.seeds)
        if not seeds:
            raise ValueError("a scenario needs at least one seed")
        if len(set(seeds)) != len(seeds):
            raise ValueError(f"duplicate seeds in {seeds!r}")
        object.__setattr__(self, "seeds", seeds)
        object.__setattr__(
            self, "tags", {str(k): str(v) for k, v in dict(self.tags).items()}
        )

    @property
    def n_runs(self) -> int:
        """Planned runs: seeds × trace segments (1 segment when no trace)."""
        segments = len(self.budget_trace) if self.budget_trace is not None else 1
        return len(self.seeds) * segments

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "use_case": self.use_case,
            "name": self.name,
            "params": dict(self.params),
            "seeds": list(self.seeds),
            "tags": dict(self.tags),
        }
        if self.budget_trace is not None:
            data["budget_trace"] = self.budget_trace.to_dict()
        if self.fault_profile is not None:
            data["fault_profile"] = self.fault_profile
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        trace = data.get("budget_trace")
        return cls(
            use_case=data["use_case"],
            name=data.get("name", ""),
            params=data.get("params", {}),
            seeds=tuple(data.get("seeds", (1,))),
            budget_trace=BudgetTrace.from_dict(trace) if trace is not None else None,
            tags=data.get("tags", {}),
            fault_profile=data.get("fault_profile"),
        )
