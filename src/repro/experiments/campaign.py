"""Campaign runner: scenario×seed grids fanned out over executors.

A :class:`Campaign` expands a list of :class:`ScenarioSpec` into one
:class:`RunSpec` per (scenario, seed, budget-trace segment), evaluates
them through the same pluggable executors the batched tuner uses
(``serial`` / ``thread`` / ``process``), and captures every run into a
columnar :class:`~repro.telemetry.database.PerformanceDatabase` tagged
by use case, scenario, seed and segment.

Determinism: every run builds its own
:class:`~repro.sim.rng.RandomStreams` from the run's seed (SHA-256
stream keys, process-stable), so a campaign is result-identical whether
it runs in-process, on one worker, or fanned out over a process pool —
only wall-clock changes.  :func:`derive_seeds` derives decorrelated
per-run seeds from one base seed the same way in every process.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.tuner import make_executor
from repro.experiments.registry import get_use_case, scalar_metrics
from repro.experiments.scenarios import ScenarioSpec
from repro.telemetry.database import PerformanceDatabase

__all__ = ["RunSpec", "RunResult", "Campaign", "CampaignResult", "derive_seeds"]


def derive_seeds(base_seed: int, n: int) -> Tuple[int, ...]:
    """``n`` decorrelated 64-bit seeds derived deterministically from one.

    Uses :class:`numpy.random.SeedSequence`, so the expansion is identical
    across processes and platforms — the campaign-level counterpart of the
    per-component named streams inside a run.  The full 64-bit state is
    kept (no folding) so duplicate seeds — which ``ScenarioSpec`` rejects
    — stay out of reach of any realistic ``n``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    state = np.random.SeedSequence(int(base_seed)).generate_state(n, dtype=np.uint64)
    return tuple(int(s) for s in state)


@dataclass(frozen=True)
class RunSpec:
    """One planned experiment run: a scenario at one seed (and segment)."""

    use_case: str
    scenario: str
    seed: int
    params: Mapping[str, Any] = field(default_factory=dict)
    #: Budget-trace segment index (None when the scenario has no trace).
    segment: Optional[int] = None
    #: Simulation time at which this segment's budget takes effect.
    segment_start_s: Optional[float] = None
    tags: Mapping[str, str] = field(default_factory=dict)
    #: Named fault profile installed around the run (chaos axis).
    fault_profile: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))
        object.__setattr__(self, "tags", dict(self.tags))

    def payload(self) -> Dict[str, Any]:
        """The picklable work item shipped to executor workers."""
        out = {
            "use_case": self.use_case,
            "seed": self.seed,
            "params": dict(self.params),
        }
        if self.fault_profile is not None:
            out["fault_profile"] = self.fault_profile
        return out

    def key(self) -> str:
        """Stable identity of this run within its campaign grid.

        Scenario names are unique per campaign and (seed, segment) pairs
        are unique per scenario, so the key is unique across the grid —
        it is what the resume journal records a completed run under.
        """
        key = f"{self.use_case}|{self.scenario}|seed={self.seed}"
        if self.segment is not None:
            key += f"|segment={self.segment}"
        return key


@dataclass
class RunResult:
    """One completed run: the raw result plus its flattened metrics."""

    spec: RunSpec
    result: Optional[Dict[str, Any]]
    metrics: Dict[str, float]
    objective: float
    feasible: bool
    elapsed_s: float = 0.0
    #: Failure diagnostics when the run raised (in-process executors only;
    #: process workers cannot ship the message back — see run()).
    error: Optional[str] = None


def _execute_run(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Worker entry point: run one use case and time it.

    Module-level so the ``process`` executor can ship it by import path;
    the registry repopulates itself inside fresh worker processes.

    A ``fault_profile`` in the payload installs that chaos profile (seeded
    by the run's seed) around the run — inside the worker, so serial and
    process executors inject bit-identically — and the injector's event
    stats land in the result under ``"chaos"``.
    """
    # elapsed_s is wall-clock *metadata* (stripped from every parity and
    # resume diff); run results themselves never read the clock.
    start = time.perf_counter()  # repro-lint: disable=RL001
    profile = payload.get("fault_profile")
    if profile:
        from repro.faults import injector as fault_injector
        from repro.faults import profiles as fault_profiles

        plan = fault_profiles.get_profile(profile, seed=int(payload["seed"]))
        with fault_injector.injected(plan) as inj:
            result = get_use_case(payload["use_case"]).run(
                seed=payload["seed"], **payload["params"]
            )
        result = dict(result)
        result["chaos"] = inj.stats()
    else:
        result = get_use_case(payload["use_case"]).run(
            seed=payload["seed"], **payload["params"]
        )
    return {"result": result, "elapsed_s": time.perf_counter() - start}  # repro-lint: disable=RL001


def _call_run(payload: Mapping[str, Any]) -> Tuple[Dict[str, Any], bool]:
    """In-process wrapper matching the process-worker outcome shape."""
    try:
        return _execute_run(payload), False
    except Exception as error:  # failures are campaign data, not crashes
        return {"error": 1.0, "error_message": str(error)}, True


def _process_outcome(
    spec: RunSpec, value: Mapping[str, Any], failed: bool
) -> Dict[str, Any]:
    """Reduce one raw worker outcome to its journal-serialisable entry.

    Everything a database record and a :class:`RunResult` are built from
    lands here as plain JSON types, so a run replayed from the resume
    journal produces records bit-identical to the run that executed
    (floats survive a JSON round trip exactly).
    """
    defn = get_use_case(spec.use_case)
    chaos: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    if failed:
        # Normalised failure marker: the serial/thread path carries the
        # exception message and the process path only a hash, so neither
        # lands in the metrics — the database record must be identical
        # whichever executor ran the campaign.
        metrics: Dict[str, float] = {"error": 1.0}
        raw_message = value.get("error_message")
        error = str(raw_message) if raw_message is not None else None
        run_elapsed = 0.0
    else:
        result = value["result"]
        metrics = scalar_metrics(result)
        run_elapsed = float(value["elapsed_s"])
        if isinstance(result, Mapping) and isinstance(result.get("chaos"), dict):
            chaos = dict(result["chaos"])
    objective = metrics.get(defn.objective_metric)
    feasible = (not failed) and objective is not None
    if objective is None:
        # Keep best-for queries sane in both directions.
        objective = float("inf") if defn.minimize else float("-inf")
    entry: Dict[str, Any] = {
        "metrics": metrics,
        "objective": float(objective),
        "feasible": bool(feasible),
        "elapsed_s": run_elapsed,
        "error": error,
    }
    if chaos is not None:
        entry["chaos"] = chaos
    return entry


class Campaign:
    """Expand scenario×seed grids and fan the runs out over an executor."""

    def __init__(
        self,
        scenarios: Sequence[ScenarioSpec],
        name: str = "campaign",
        database: Optional[PerformanceDatabase] = None,
    ):
        scenarios = list(scenarios)
        if not scenarios:
            raise ValueError("a campaign needs at least one scenario")
        names = [s.name for s in scenarios]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate scenario names: {sorted(names)}")
        # Validate every scenario against the registry up front: unknown
        # use cases, bad parameter names and budget traces on budget-less
        # use cases fail before any run starts.
        for scenario in scenarios:
            defn = get_use_case(scenario.use_case)
            defn.validate_params(scenario.params)
            if scenario.budget_trace is not None and defn.budget_param is None:
                raise ValueError(
                    f"scenario {scenario.name!r}: use case {scenario.use_case!r} "
                    "has no budget parameter for a budget trace"
                )
            if scenario.fault_profile is not None:
                from repro.faults.profiles import PROFILES

                if scenario.fault_profile not in PROFILES:
                    raise ValueError(
                        f"scenario {scenario.name!r}: unknown fault profile "
                        f"{scenario.fault_profile!r}; known: {sorted(PROFILES)}"
                    )
        self.scenarios = scenarios
        self.name = name
        self.database = database if database is not None else PerformanceDatabase(name)

    @property
    def total_runs(self) -> int:
        return sum(s.n_runs for s in self.scenarios)

    # -- planning ----------------------------------------------------------
    def expand(self) -> List[RunSpec]:
        """The full run grid: scenarios × seeds × budget-trace segments."""
        specs: List[RunSpec] = []
        for scenario in self.scenarios:
            defn = get_use_case(scenario.use_case)
            if scenario.budget_trace is None:
                segments: List[Tuple[Optional[int], Optional[float], Dict[str, Any]]] = [
                    (None, None, dict(scenario.params))
                ]
            else:
                segments = []
                for index, (start_s, watts) in enumerate(scenario.budget_trace.segments()):
                    params = dict(scenario.params)
                    params[defn.budget_param] = watts
                    segments.append((index, start_s, params))
            for seed in scenario.seeds:
                for segment, start_s, params in segments:
                    tags = dict(scenario.tags)
                    if scenario.fault_profile is not None:
                        tags.setdefault("fault_profile", scenario.fault_profile)
                    specs.append(
                        RunSpec(
                            use_case=scenario.use_case,
                            scenario=scenario.name,
                            seed=seed,
                            params=params,
                            segment=segment,
                            segment_start_s=start_s,
                            tags=tags,
                            fault_profile=scenario.fault_profile,
                        )
                    )
        return specs

    # -- execution ---------------------------------------------------------
    def run(
        self,
        executor: Union[str, Any] = "serial",
        max_workers: Optional[int] = None,
        keep_results: bool = True,
        journal_dir: Optional[str] = None,
        resume: bool = False,
        run_budget: Optional[int] = None,
    ) -> "CampaignResult":
        """Run the grid (or the part of it not yet journaled as done).

        ``executor`` is a :func:`~repro.core.tuner.make_executor` spec.
        Results land in ``self.database`` (and in the returned result
        object) in grid order regardless of the executor, so any two
        executors produce identical databases for the same campaign.
        ``keep_results=False`` drops the raw per-run payload dictionaries
        after metric extraction (large campaigns, bounded memory).

        Durability: with ``journal_dir`` set, every completed run's
        processed outcome is appended to a crash-safe
        :class:`~repro.durability.runlog.CampaignJournal` the moment its
        wave finishes (waves are one run for the serial executor, one
        worker-batch otherwise) — a killed campaign loses at most the
        in-flight wave.  ``resume=True`` replays journaled outcomes and
        executes only the remaining runs; since per-run RNG derives from
        the run's seed, the resumed capture is bit-identical to an
        uninterrupted pass (wall-clock aside).  ``run_budget`` caps the
        number of runs *executed* this invocation (journaled replays are
        free); when the budget ends the campaign early, the returned
        result is partial and flagged ``aborted`` — re-invoke with
        ``resume=True`` to finish.
        """
        if resume and journal_dir is None:
            raise ValueError("resume=True requires journal_dir")
        if run_budget is not None and run_budget < 0:
            raise ValueError("run_budget must be >= 0")
        specs = self.expand()
        keys = [spec.key() for spec in specs]

        journal = None
        replayed: Dict[str, Dict[str, Any]] = {}
        if journal_dir is not None:
            from repro.durability.runlog import CampaignJournal

            journal = CampaignJournal(journal_dir)
            journal.begin(self.name, len(specs), resume=resume)
            if resume:
                # Only keys of *this* grid count: alien entries (possible
                # after a torn header rewrite) must not shadow real runs.
                grid = set(keys)
                replayed = {
                    key: entry
                    for key, entry in journal.completed.items()
                    if key in grid
                }
        pending = [
            (index, spec)
            for index, spec in enumerate(specs)
            if keys[index] not in replayed
        ]

        entries: Dict[int, Dict[str, Any]] = {}
        raw_results: Dict[int, Optional[Dict[str, Any]]] = {}

        def finish(index: int, spec: RunSpec, value: Dict[str, Any], failed: bool) -> None:
            entry = _process_outcome(spec, value, failed)
            entries[index] = entry
            raw_results[index] = None if failed else value["result"]
            if journal is not None:
                journal.record_run(keys[index], entry)

        # Campaign elapsed time is reporting metadata only (stripped from
        # the resume-vs-uninterrupted diffs); never feeds a result.
        started = time.perf_counter()  # repro-lint: disable=RL001
        try:
            if pending and (run_budget is None or run_budget > 0):
                pool = make_executor(executor, max_workers=max_workers)
                bind = getattr(pool, "bind_evaluator", None)
                if bind is not None:
                    bind(_execute_run)
                try:
                    if journal is None and run_budget is None:
                        # No journal, no budget: one map over the grid.
                        outcomes = pool.map(
                            _call_run, [spec.payload() for _, spec in pending]
                        )
                        for (index, spec), (value, failed) in zip(pending, outcomes):
                            finish(index, spec, value, failed)
                    else:
                        # Journaled/budgeted execution proceeds in waves so
                        # completed outcomes hit the journal incrementally —
                        # a kill mid-campaign loses at most the in-flight
                        # wave (one run for serial, one batch otherwise).
                        if executor == "serial":
                            wave_size = 1
                        else:
                            wave_size = max_workers or os.cpu_count() or 4
                        todo = pending
                        if run_budget is not None:
                            todo = todo[:run_budget]
                        for start in range(0, len(todo), wave_size):
                            wave = todo[start : start + wave_size]
                            outcomes = pool.map(
                                _call_run, [spec.payload() for _, spec in wave]
                            )
                            for (index, spec), (value, failed) in zip(wave, outcomes):
                                finish(index, spec, value, failed)
                finally:
                    close = getattr(pool, "close", None)
                    if close is not None:
                        close()
        finally:
            if journal is not None:
                journal.close()
        elapsed = time.perf_counter() - started  # repro-lint: disable=RL001
        aborted = len(entries) < len(pending)

        runs: List[RunResult] = []
        for index, spec in enumerate(specs):
            if index in entries:
                entry = entries[index]
                result = raw_results[index]
            elif keys[index] in replayed:
                entry = replayed[keys[index]]
                # The raw payload is not journaled; chaos stats are, so
                # summaries keep their chaos-event counts across a resume.
                chaos = entry.get("chaos")
                result = {"chaos": dict(chaos)} if isinstance(chaos, dict) else None
            else:  # budget-aborted before this run: not part of the capture
                continue
            metrics = dict(entry["metrics"])
            objective = float(entry["objective"])
            feasible = bool(entry["feasible"])
            run_elapsed = float(entry["elapsed_s"])
            error = entry.get("error")
            tags = {
                "use_case": spec.use_case,
                "scenario": spec.scenario,
                "seed": str(spec.seed),
                **spec.tags,
            }
            if spec.segment is not None:
                tags["segment"] = str(spec.segment)
            self.database.add_evaluation(
                config={**spec.params, "seed": spec.seed},
                metrics=metrics,
                objective=objective,
                elapsed_s=run_elapsed,
                feasible=feasible,
                **tags,
            )
            runs.append(
                RunResult(
                    spec=spec,
                    result=result if keep_results else None,
                    metrics=metrics,
                    objective=objective,
                    feasible=feasible,
                    elapsed_s=run_elapsed,
                    error=str(error) if error is not None else None,
                )
            )
        return CampaignResult(
            name=self.name,
            runs=runs,
            database=self.database,
            elapsed_s=elapsed,
            aborted=aborted,
        )


@dataclass
class CampaignResult:
    """All runs of one campaign plus the columnar capture."""

    name: str
    runs: List[RunResult]
    database: PerformanceDatabase
    elapsed_s: float
    #: True when a ``run_budget`` ended the campaign before the full grid
    #: ran — the capture is a prefix-consistent partial; resume to finish.
    aborted: bool = False

    def __len__(self) -> int:
        return len(self.runs)

    def rows(self) -> List[Dict[str, Any]]:
        """Flat per-run rows for cross-seed aggregation / tabulation."""
        out = []
        for run in self.runs:
            row: Dict[str, Any] = {
                "use_case": run.spec.use_case,
                "scenario": run.spec.scenario,
                "seed": run.spec.seed,
                "feasible": run.feasible,
                "objective": run.objective,
                "metrics": dict(run.metrics),
            }
            if run.spec.segment is not None:
                row["segment"] = run.spec.segment
            out.append(row)
        return out

    def aggregate(
        self, group_keys: Sequence[str] = ("use_case", "scenario")
    ) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Cross-seed mean/std/min/max of every metric, per group.

        Failed runs are excluded: one crashed seed must not erase the
        statistics of the seeds that succeeded (the reducer intersects
        metric keys across a group's runs).
        """
        from repro.analysis.reporting import aggregate_across_seeds

        rows = [row for row in self.rows() if row["feasible"]]
        return aggregate_across_seeds(rows, group_keys=group_keys)

    def best(self, use_case: str, **tag_filters: str):
        """Best *feasible* record for a use case (its registered direction).

        Returns None when every matching run failed — never a failed
        run's ±inf placeholder record.
        """
        defn = get_use_case(use_case)
        pool = self.database.where(feasible=True, use_case=use_case, **tag_filters)
        if not pool:
            return None
        key = min if defn.minimize else max
        return key(pool, key=lambda record: record.objective)

    def summary(self) -> Dict[str, Any]:
        """A JSON-serialisable campaign report (what the CLI emits)."""
        runs = []
        for run in self.runs:
            entry: Dict[str, Any] = {
                "use_case": run.spec.use_case,
                "scenario": run.spec.scenario,
                "seed": run.spec.seed,
                "objective": run.objective,
                "feasible": run.feasible,
                "elapsed_s": run.elapsed_s,
            }
            if run.spec.segment is not None:
                entry["segment"] = run.spec.segment
                entry["segment_start_s"] = run.spec.segment_start_s
            if run.spec.fault_profile is not None:
                entry["fault_profile"] = run.spec.fault_profile
                chaos = (run.result or {}).get("chaos")
                if isinstance(chaos, dict):
                    entry["chaos_events"] = chaos.get("events_total")
            runs.append(entry)
        return {
            "campaign": self.name,
            "n_runs": len(self.runs),
            "n_failed": sum(1 for run in self.runs if not run.feasible),
            "aborted": self.aborted,
            "elapsed_s": self.elapsed_s,
            "use_cases": sorted({run.spec.use_case for run in self.runs}),
            "runs": runs,
            "aggregates": self.aggregate(),
        }
