"""Command-line campaign driver: ``python -m repro.experiments``.

Subcommands:

* ``list`` — registered use cases with their defaults.
* ``run`` — expand and run a campaign, print / write a JSON summary::

      python -m repro.experiments run --uc all --seeds 3
      python -m repro.experiments run --uc uc6,uc7 --seeds 2 \\
          --param n_iterations=6 --executor process --json out.json
      python -m repro.experiments run --uc uc1 --seed-list 1,2 \\
          --budget-trace 0:280,900:220,1800:none

``--param`` overrides apply to every selected use case that has that
keyword (``--param uc3.max_evals=8`` targets one use case).  Seeds come
from ``--seed-list`` verbatim, or are derived deterministically from
``--base-seed`` (``--seeds N`` decorrelated seeds via SeedSequence).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.campaign import Campaign, derive_seeds
from repro.experiments.registry import build_scenario, list_use_cases
from repro.experiments.scenarios import BudgetTrace

__all__ = ["main"]


def _parse_value(text: str) -> Any:
    try:
        return json.loads(text)
    except ValueError:
        return text


def _parse_params(pairs: Sequence[str]) -> Dict[str, Dict[str, Any]]:
    """``k=v`` / ``uc.k=v`` overrides → {use_case or "*": {key: value}}."""
    out: Dict[str, Dict[str, Any]] = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param expects NAME=VALUE, got {pair!r}")
        target, dot, name = key.partition(".")
        if dot:
            out.setdefault(target, {})[name] = _parse_value(raw)
        else:
            out.setdefault("*", {})[key] = _parse_value(raw)
    return out


def _parse_trace(text: Optional[str]) -> Optional[BudgetTrace]:
    """``t0:w0,t1:w1,...`` (watts ``none`` = uncapped) → BudgetTrace."""
    if not text:
        return None
    times: List[float] = []
    watts: List[Optional[float]] = []
    for part in text.split(","):
        t, sep, w = part.partition(":")
        if not sep:
            raise SystemExit(f"--budget-trace expects TIME:WATTS pairs, got {part!r}")
        times.append(float(t))
        watts.append(None if w.strip().lower() in ("none", "uncapped") else float(w))
    return BudgetTrace(times_s=tuple(times), watts_per_node=tuple(watts))


def _cmd_list(_: argparse.Namespace) -> int:
    for defn in list_use_cases():
        budget = f"  [budget: {defn.budget_param}]" if defn.budget_param else ""
        print(f"{defn.name}: {defn.description}{budget}")
        defaults = ", ".join(f"{k}={v!r}" for k, v in sorted(defn.defaults.items()))
        print(f"    defaults: {defaults}")
        direction = "min" if defn.minimize else "max"
        print(f"    objective: {direction} {defn.objective_metric}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    registered = {defn.name: defn for defn in list_use_cases()}
    if args.uc.strip().lower() == "all":
        selected = sorted(registered)
    else:
        selected = [name.strip() for name in args.uc.split(",") if name.strip()]
        unknown = sorted(set(selected) - set(registered))
        if unknown:
            raise SystemExit(
                f"unknown use case(s) {unknown}; registered: {sorted(registered)}"
            )

    if args.seed_list:
        seeds = tuple(int(s) for s in args.seed_list.split(","))
    else:
        seeds = derive_seeds(args.base_seed, args.seeds)

    overrides = _parse_params(args.param or [])
    unknown_targets = sorted(set(overrides) - {"*"} - set(selected))
    if unknown_targets:
        raise SystemExit(
            f"--param targets {unknown_targets} are not among the selected "
            f"use cases {selected}"
        )
    # A global override must match at least one selected use case's
    # keywords; a typo'd name silently running the campaign at defaults
    # is worse than an error.
    for key in overrides.get("*", {}):
        if not any(key in registered[name].defaults for name in selected):
            raise SystemExit(
                f"--param {key!r} matches no parameter of the selected use "
                f"cases {selected}"
            )
    trace = _parse_trace(args.budget_trace)
    if trace is not None and not any(
        registered[name].budget_param for name in selected
    ):
        raise SystemExit(
            f"--budget-trace given but none of the selected use cases "
            f"{selected} has a budget parameter"
        )
    if args.workload:
        from repro.workloads.spec import parse_workload_spec

        try:
            parse_workload_spec(args.workload)  # fail fast on a typo'd spec
        except ValueError as exc:
            raise SystemExit(str(exc))
        takers = [name for name in selected if "workload" in registered[name].defaults]
        if not takers:
            raise SystemExit(
                f"--workload given but none of the selected use cases "
                f"{selected} takes a workload (try --uc trace)"
            )
        for name in takers:
            overrides.setdefault(name, {}).setdefault("workload", args.workload)
    fault_profile = args.fault_profile or None
    if fault_profile is not None:
        from repro.faults.profiles import PROFILES

        if fault_profile not in PROFILES:
            raise SystemExit(
                f"unknown fault profile {fault_profile!r}; known: {sorted(PROFILES)}"
            )
    scenarios = []
    for name in selected:
        defn = registered[name]
        params = {
            k: v for k, v in overrides.get("*", {}).items() if k in defn.defaults
        }
        params.update(overrides.get(name, {}))
        scenarios.append(
            build_scenario(
                name,
                params=params,
                seeds=seeds,
                budget_trace=trace if defn.budget_param else None,
                fault_profile=fault_profile,
            )
        )

    if args.out_dir:
        os.makedirs(args.out_dir, exist_ok=True)
    campaign = Campaign(scenarios, name=args.name)
    if not args.quiet:
        print(
            f"campaign {campaign.name!r}: {len(scenarios)} scenario(s) x "
            f"{len(seeds)} seed(s) = {campaign.total_runs} runs "
            f"[executor={args.executor}]",
            file=sys.stderr,
        )
    if args.resume and not args.journal_dir:
        raise SystemExit("--resume requires --journal-dir")
    result = campaign.run(
        executor=args.executor,
        max_workers=args.max_workers,
        journal_dir=args.journal_dir or None,
        resume=args.resume,
        run_budget=args.run_budget,
    )
    if result.aborted and not args.quiet:
        print(
            f"campaign aborted after run budget; resume with --resume "
            f"--journal-dir {args.journal_dir}",
            file=sys.stderr,
        )
    if args.out_dir:
        # One PerformanceDatabase JSON shard per scenario: these files are
        # loadable with PerformanceDatabase.load and compose with the
        # sharded multi-tenant store behind `repro.service`.
        for scenario in campaign.scenarios:
            shard = result.database.filter(
                lambda record, name=scenario.name: record.tags.get("scenario") == name
            )
            path = os.path.join(args.out_dir, f"{scenario.name}.json")
            shard.save(path)
            if not args.quiet:
                print(f"wrote {path} ({len(shard)} records)", file=sys.stderr)
    summary = result.summary()
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(summary, fh, indent=2, sort_keys=True)
            fh.write("\n")
        if not args.quiet:
            print(f"wrote {args.json}", file=sys.stderr)
    if not args.quiet or not args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 1 if summary["n_failed"] else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run experiment campaigns over the paper's use cases.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered use cases").set_defaults(
        func=_cmd_list
    )

    run = commands.add_parser("run", help="run a campaign")
    run.add_argument("--uc", default="all", help="comma-separated use cases, or 'all'")
    run.add_argument("--seeds", type=int, default=1, help="number of derived seeds")
    run.add_argument("--base-seed", type=int, default=1, help="seed-derivation base")
    run.add_argument("--seed-list", default="", help="explicit comma-separated seeds")
    run.add_argument(
        "--executor",
        default="serial",
        choices=("serial", "thread", "process"),
        help="fan-out executor",
    )
    run.add_argument("--max-workers", type=int, default=None)
    run.add_argument(
        "--param",
        action="append",
        metavar="NAME=VALUE",
        help="parameter override (NAME=VALUE for all selected, uc.NAME=VALUE for one)",
    )
    run.add_argument(
        "--budget-trace",
        default="",
        metavar="T:W,...",
        help="time-varying per-node budget trace (watts, 'none' = uncapped), "
        "applied to use cases with a budget parameter",
    )
    run.add_argument(
        "--workload",
        default="",
        metavar="SPEC",
        help="workload-trace spec ('swf:/path.swf,...' or "
        "'synth:n_jobs=...,...'), applied to use cases with a workload "
        "parameter (e.g. --uc trace)",
    )
    run.add_argument(
        "--fault-profile",
        default="",
        metavar="NAME",
        help="run every scenario under this named fault-injection profile "
        "(see repro.faults.profiles; e.g. 'flaky-rack')",
    )
    run.add_argument(
        "--journal-dir",
        default="",
        metavar="DIR",
        help="write-ahead journal directory: every finished run is logged "
        "here so a killed campaign can be resumed bit-identically",
    )
    run.add_argument(
        "--resume",
        action="store_true",
        help="resume from --journal-dir, skipping runs it already records",
    )
    run.add_argument(
        "--run-budget",
        type=int,
        default=None,
        metavar="N",
        help="execute at most N pending runs then stop (campaign is "
        "marked aborted; finish it later with --resume)",
    )
    run.add_argument("--name", default="campaign")
    run.add_argument("--json", default="", help="write the JSON summary here")
    run.add_argument(
        "--out-dir",
        default="",
        help="save one PerformanceDatabase JSON shard per scenario here",
    )
    run.add_argument("--quiet", action="store_true")
    run.set_defaults(func=_cmd_run)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
