"""Cluster model: a set of nodes plus the site power meter.

A :class:`Cluster` is what the system-level layer of the PowerStack
(resource manager, site policies) operates on: it owns the nodes, knows
the site's procured power, and exposes a system power meter that the
power-corridor experiments (Figure 6, use case 5) sample over time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.hardware.node import Node, NodeSpec
from repro.hardware.variation import VariationModel
from repro.sim.rng import RandomStreams

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster / HPC system."""

    name: str = "sim-cluster"
    n_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    variation: VariationModel = field(default_factory=VariationModel)
    #: Spread of per-node ambient temperature across the machine room (degC).
    ambient_spread_c: float = 3.0
    #: Site-procured power for this system (W).  ``None`` means "sum of TDPs".
    system_power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.ambient_spread_c < 0:
            raise ValueError("ambient_spread_c must be >= 0")
        if self.system_power_budget_w is not None and self.system_power_budget_w <= 0:
            raise ValueError("system_power_budget_w must be positive")


class Cluster:
    """A collection of simulated nodes with a system-level power view."""

    def __init__(self, spec: ClusterSpec | None = None, seed: int = 0):
        self.spec = spec or ClusterSpec()
        self.streams = RandomStreams(seed)
        rng = self.streams.stream("cluster.variation")
        ambient_rng = self.streams.stream("cluster.ambient")

        self.nodes: List[Node] = []
        for i in range(self.spec.n_nodes):
            variations = self.spec.variation.draw_many(rng, self.spec.node.n_sockets)
            ambient_offset = float(
                ambient_rng.uniform(0.0, self.spec.ambient_spread_c)
            )
            self.nodes.append(
                Node(
                    self.spec.node,
                    hostname=f"{self.spec.name}-{i:04d}",
                    node_id=i,
                    variations=variations,
                    ambient_offset_c=ambient_offset,
                )
            )
        self._by_hostname: Dict[str, Node] = {n.hostname: n for n in self.nodes}

    # -- basic access -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, hostname_or_id) -> Node:
        """Look a node up by hostname or integer id."""
        if isinstance(hostname_or_id, int):
            return self.nodes[hostname_or_id]
        if hostname_or_id not in self._by_hostname:
            raise KeyError(f"unknown node {hostname_or_id!r}")
        return self._by_hostname[hostname_or_id]

    def free_nodes(self) -> List[Node]:
        return [n for n in self.nodes if n.is_free]

    def allocated_nodes(self) -> List[Node]:
        return [n for n in self.nodes if not n.is_free]

    # -- power accounting -----------------------------------------------------
    @property
    def system_power_budget_w(self) -> float:
        if self.spec.system_power_budget_w is not None:
            return self.spec.system_power_budget_w
        return self.total_tdp_w()

    def total_tdp_w(self) -> float:
        return sum(n.max_power_w() for n in self.nodes)

    def total_idle_power_w(self) -> float:
        return sum(n.idle_power_w() for n in self.nodes)

    def instantaneous_power_w(self, include_idle: bool = True) -> float:
        """Current system power: busy nodes at their draw, idle at idle power."""
        total = 0.0
        for node in self.nodes:
            if node.is_free:
                total += node.idle_power_w() if include_idle else 0.0
            else:
                total += node.current_power_w
        return total

    def total_energy_j(self) -> float:
        return sum(n.total_energy_j() for n in self.nodes)

    # -- node selection helpers -------------------------------------------------
    def rank_nodes_by_efficiency(self, nodes: Optional[Iterable[Node]] = None) -> List[Node]:
        """Nodes ordered best-first by manufacturing power efficiency.

        Used for power-aware node selection: under a power cap the most
        efficient parts sustain the highest frequency, so a power-aware RM
        prefers them (§3.1.1 "which nodes to select ... manufacturing
        variation").
        """
        pool = list(self.nodes if nodes is None else nodes)

        def badness(node: Node) -> float:
            return float(
                np.mean([pkg.variation.power_efficiency for pkg in node.packages])
            )

        return sorted(pool, key=badness)

    def rank_nodes_by_temperature(self, nodes: Optional[Iterable[Node]] = None) -> List[Node]:
        """Nodes ordered coolest-first (thermal-aware selection)."""
        pool = list(self.nodes if nodes is None else nodes)
        return sorted(pool, key=lambda n: n.max_temperature_c())

    def apply_uniform_power_cap(self, per_node_watts: Optional[float]) -> None:
        """Cap every node at the same value (the naive baseline policy)."""
        for node in self.nodes:
            node.set_power_cap(per_node_watts)

    def summary(self) -> Dict[str, float]:
        """A small dictionary of headline cluster facts (for reports)."""
        return {
            "nodes": float(len(self.nodes)),
            "cores": float(sum(n.spec.total_cores for n in self.nodes)),
            "tdp_w": self.total_tdp_w(),
            "idle_w": self.total_idle_power_w(),
            "budget_w": self.system_power_budget_w,
        }
