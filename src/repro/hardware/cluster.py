"""Cluster model: a set of nodes plus the site power meter.

A :class:`Cluster` is what the system-level layer of the PowerStack
(resource manager, site policies) operates on: it owns the nodes, knows
the site's procured power, and exposes a system power meter that the
power-corridor experiments (Figure 6, use case 5) sample over time.

All per-node and per-package state is held in one struct-of-arrays
:class:`~repro.hardware.state.ClusterState`, so the whole-cluster
operations here (total power, total energy, idle power, free/busy
partitioning, power-cap distribution, batched thermal stepping) are
single numpy expressions rather than Python loops over ``self.nodes``.
The :class:`~repro.hardware.node.Node` objects remain the mutation API —
they read and write views into the same arrays, so the two layers can
never disagree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from repro.faults import injector as _faults
from repro.hardware.node import Node, NodeSpec
from repro.hardware.state import ClusterState
from repro.hardware.variation import VariationDraw, VariationModel
from repro.sim.rng import RandomStreams

__all__ = ["ClusterSpec", "Cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """Static description of a cluster / HPC system."""

    name: str = "sim-cluster"
    n_nodes: int = 16
    node: NodeSpec = field(default_factory=NodeSpec)
    variation: VariationModel = field(default_factory=VariationModel)
    #: Spread of per-node ambient temperature across the machine room (degC).
    ambient_spread_c: float = 3.0
    #: Site-procured power for this system (W).  ``None`` means "sum of TDPs".
    system_power_budget_w: Optional[float] = None

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.ambient_spread_c < 0:
            raise ValueError("ambient_spread_c must be >= 0")
        if self.system_power_budget_w is not None and self.system_power_budget_w <= 0:
            raise ValueError("system_power_budget_w must be positive")


class Cluster:
    """A collection of simulated nodes with a system-level power view."""

    def __init__(self, spec: ClusterSpec | None = None, seed: int = 0):
        self.spec = spec or ClusterSpec()
        self.streams = RandomStreams(seed)
        rng = self.streams.stream("cluster.variation")
        ambient_rng = self.streams.stream("cluster.ambient")

        node_spec = self.spec.node
        n_nodes = self.spec.n_nodes
        n_sockets = node_spec.n_sockets
        self.state = ClusterState(
            n_nodes, n_sockets, node_spec.n_gpus, node_spec=node_spec
        )

        # One vectorised draw for the whole machine: consumes the random
        # streams in the exact per-node order of the scalar loop, so seeded
        # clusters are bit-identical to the previous construction path.
        power_eff, turbo, leakage = self.spec.variation.draw_array(
            rng, n_nodes * n_sockets
        )
        ambient_offsets = ambient_rng.uniform(
            0.0, self.spec.ambient_spread_c, size=n_nodes
        )

        self.nodes: List[Node] = []
        for i in range(n_nodes):
            variations = [
                VariationDraw(
                    power_efficiency=float(power_eff[i * n_sockets + s]),
                    max_turbo_scale=float(turbo[i * n_sockets + s]),
                    leakage_scale=float(leakage[i * n_sockets + s]),
                )
                for s in range(n_sockets)
            ]
            self.nodes.append(
                Node(
                    node_spec,
                    hostname=f"{self.spec.name}-{i:04d}",
                    node_id=i,
                    variations=variations,
                    ambient_offset_c=float(ambient_offsets[i]),
                    state=self.state,
                    node_index=i,
                )
            )
        self._by_hostname: Dict[str, Node] = {n.hostname: n for n in self.nodes}

    # -- basic access -------------------------------------------------------
    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)

    def node(self, hostname_or_id) -> Node:
        """Look a node up by hostname or integer id."""
        if isinstance(hostname_or_id, int):
            return self.nodes[hostname_or_id]
        if hostname_or_id not in self._by_hostname:
            raise KeyError(f"unknown node {hostname_or_id!r}")
        return self._by_hostname[hostname_or_id]

    def free_nodes(self) -> List[Node]:
        """Unallocated nodes in node-id order (from the incremental mask)."""
        return [self.nodes[i] for i in self.state.free_indices()]

    def allocated_nodes(self) -> List[Node]:
        """Allocated nodes in node-id order (from the incremental mask)."""
        return [self.nodes[i] for i in self.state.busy_indices()]

    # -- array twins of the node-selection API (scheduler hot path) ---------
    def free_node_indices(self) -> np.ndarray:
        """Indices of unallocated nodes without materializing ``Node`` lists."""
        return self.state.free_indices()

    def rank_free_by_efficiency(self) -> np.ndarray:
        """Free-node indices best-part-first: the array twin of
        :meth:`rank_nodes_by_efficiency` restricted to free nodes — one
        masked stable argsort over the cached variation column."""
        return self.state.rank_free_by_efficiency()

    def rank_free_by_temperature(self) -> np.ndarray:
        """Free-node indices coolest-first (thermal-aware selection twin)."""
        return self.state.rank_free_by_temperature()

    def nodes_at(self, indices) -> List[Node]:
        """Materialize ``Node`` objects for an index array (launch only)."""
        return [self.nodes[int(i)] for i in indices]

    # -- batched allocation (scheduler hot path) -----------------------------
    # repro-lint: hot
    def allocate_nodes(self, nodes: List[Node], job_id: str) -> None:
        """Batched ``Node.allocate``: one mask write, one version bump.

        Semantically identical to calling ``allocate`` per node (same
        already-allocated check, same resulting state); at trace-replay
        scale the per-node property round trips dominated launch cost.
        """
        if not nodes:
            return
        for node in nodes:
            if node._allocated_to is not None:
                raise RuntimeError(
                    f"{node.hostname} already allocated to {node.allocated_to!r}"
                )
        idx = np.fromiter(
            (node.node_id for node in nodes), dtype=np.intp, count=len(nodes)
        )
        self.state.node_free[idx] = False
        self.state.free_version += 1
        for node in nodes:
            node._allocated_to = job_id

    # repro-lint: hot
    def release_nodes(self, nodes: List[Node]) -> None:
        """Batched ``Node.release``: mask + idle-power writes in one shot.

        Uses the vectorised per-node idle power, which is bit-identical
        to the scalar ``Node.idle_power_w`` (pinned by
        ``test_idle_power_per_node_matches_scalar_method``).
        """
        if not nodes:
            return
        state = self.state
        idx = np.fromiter(
            (node.node_id for node in nodes), dtype=np.intp, count=len(nodes)
        )
        state.node_free[idx] = True
        state.node_current_power_w[idx] = state.idle_power_per_node()[idx]
        state.free_version += 1
        for node in nodes:
            node._allocated_to = None

    # -- power accounting -----------------------------------------------------
    @property
    def system_power_budget_w(self) -> float:
        if self.spec.system_power_budget_w is not None:
            return self.spec.system_power_budget_w
        return self.total_tdp_w()

    def total_tdp_w(self) -> float:
        return self.state.total_tdp_w()

    def total_idle_power_w(self) -> float:
        return self.state.total_idle_power_w()

    def instantaneous_power_w(self, include_idle: bool = True) -> float:
        """Current system power: busy nodes at their draw, idle at idle power."""
        return self.state.instantaneous_power_w(include_idle=include_idle)

    def total_energy_j(self) -> float:
        total = self.state.total_energy_j()
        if self.spec.node.n_gpus > 0:
            total += sum(gpu.energy_j for node in self.nodes for gpu in node.gpus)
        return total

    # -- batched physics -------------------------------------------------------
    def advance_thermal(
        self, dt_s: float, pkg_power_w: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Advance every package's thermal model ``dt_s`` seconds at once.

        When ``pkg_power_w`` (shape ``(n_nodes, n_sockets)``) is omitted,
        busy nodes dissipate their current compute power split evenly
        across sockets and idle nodes dissipate their idle package power —
        the same assumption the scalar per-node sampling loop makes.
        """
        if pkg_power_w is None:
            idle_pkg = self.state.idle_power_per_package()
            busy_share = (
                self.state.node_current_power_w - self.spec.node.platform_power_w
            ) / self.spec.node.n_sockets
            busy_pkg = np.maximum(busy_share, 0.0)[:, None]
            pkg_power_w = np.where(self.state.node_free[:, None], idle_pkg, busy_pkg)
        return self.state.advance_thermal(pkg_power_w, dt_s)

    # -- node selection helpers -------------------------------------------------
    def rank_nodes_by_efficiency(self, nodes: Optional[Iterable[Node]] = None) -> List[Node]:
        """Nodes ordered best-first by manufacturing power efficiency.

        Used for power-aware node selection: under a power cap the most
        efficient parts sustain the highest frequency, so a power-aware RM
        prefers them (§3.1.1 "which nodes to select ... manufacturing
        variation").
        """
        if nodes is None:
            badness = self.state.pkg_power_efficiency.mean(axis=1)
            return [self.nodes[i] for i in np.argsort(badness, kind="stable")]
        pool = list(nodes)

        def badness_of(node: Node) -> float:
            return float(
                np.mean([pkg.variation.power_efficiency for pkg in node.packages])
            )

        return sorted(pool, key=badness_of)

    def rank_nodes_by_temperature(self, nodes: Optional[Iterable[Node]] = None) -> List[Node]:
        """Nodes ordered coolest-first (thermal-aware selection)."""
        if nodes is None:
            hottest = self.state.pkg_temperature_c.max(axis=1)
            return [self.nodes[i] for i in np.argsort(hottest, kind="stable")]
        pool = list(nodes)
        return sorted(pool, key=lambda n: n.max_temperature_c())

    # -- power capping ----------------------------------------------------------
    def apply_power_caps(self, per_node_watts: np.ndarray) -> np.ndarray:
        """Apply a per-node power-cap vector in one vectorised pass.

        ``per_node_watts`` has one entry per node; NaN entries uncap.  The
        package-cap arithmetic runs as numpy expressions over the whole
        cluster (:meth:`ClusterState.set_node_power_caps`); only the RAPL
        bookkeeping objects are updated per node.  Returns the enforced
        node caps (NaN where uncapped).
        """
        caps = np.asarray(per_node_watts, dtype=float)
        previous = self.state.node_power_cap_w.copy()
        inj = _faults.active()
        if inj is not None and inj.enabled:
            # Chaos at the cap-write boundary: eligible nodes may drop or
            # only partially apply the requested change.  Disabled plans
            # cost exactly the two checks above.
            caps = inj.cap_writes(
                [node.hostname for node in self.nodes], caps, previous
            )
        applied, cpu_share = self.state.set_node_power_caps(caps)
        has_gpus = self.spec.node.n_gpus > 0
        # Only nodes whose node-level cap actually changed need their
        # Python-side RAPL/GPU bookkeeping touched — a corridor tick that
        # re-caps a handful of jobs stays O(changed) in Python.
        changed = ~((applied == previous) | (np.isnan(applied) & np.isnan(previous)))
        for i in np.flatnonzero(changed):
            node = self.nodes[i]
            if np.isnan(applied[i]):
                node.rapl.clear_all_limits()
                if has_gpus:
                    for gpu in node.gpus:
                        gpu.set_power_cap(None)
            else:
                node.rapl.set_node_package_limit(float(cpu_share[i]))
                if has_gpus:
                    gpu_share = (applied[i] - self.spec.node.platform_power_w) - cpu_share[i]
                    for gpu in node.gpus:
                        gpu.set_power_cap(float(gpu_share) / self.spec.node.n_gpus)
        return applied

    def apply_uniform_power_cap(self, per_node_watts: Optional[float]) -> None:
        """Cap every node at the same value (the naive baseline policy)."""
        value = np.nan if per_node_watts is None else float(per_node_watts)
        self.apply_power_caps(np.full(len(self.nodes), value))

    def apply_budget_trace(self, trace, time_s: float) -> np.ndarray:
        """Enforce a time-varying per-node budget at simulation time ``time_s``.

        ``trace`` is a :class:`~repro.experiments.scenarios.BudgetTrace`
        (or anything with a ``value_at(time_s)`` returning per-node watts,
        ``None`` meaning uncapped).  The cap lands through the vectorised
        :meth:`apply_power_caps` path, so the campaign's time-varying
        budget axis shares all bookkeeping with the static cap policies.
        """
        watts = trace.value_at(time_s)
        value = np.nan if watts is None else float(watts)
        return self.apply_power_caps(np.full(len(self.nodes), value))

    # -- experiment reset ------------------------------------------------------
    def reset_nodes(
        self,
        indices=None,
        cap_w: Optional[float] = None,
        freq_ghz: Optional[float] = None,
        uncore_ghz: Optional[float] = None,
    ) -> List[Node]:
        """Release + re-cap + re-clock a set of nodes for a fresh experiment run.

        The one replacement for the per-use-case ``_fresh_nodes`` hacks:
        allocation is cleared through the ``Node.allocated_to`` setter
        (which keeps ``ClusterState.node_free`` in sync, so the free/busy
        mask can never desync from the per-node attribute), the power cap
        lands through the vectorised :meth:`apply_power_caps`, and
        frequencies through the batched DVFS kernels.  ``Node.release()``
        is deliberately not used: it also resets the node's instantaneous
        power draw, which the historical experiment reset never did.
        ``freq_ghz``/``uncore_ghz`` default to the base core frequency and
        the maximum uncore frequency — the historical experiment starting
        point.  Returns the reset ``Node`` objects in index order.
        """
        if indices is None:
            indices = np.arange(len(self.nodes))
        indices = np.asarray(indices, dtype=int)
        nodes = [self.nodes[int(i)] for i in indices]
        for node in nodes:
            node.allocated_to = None
        caps = self.state.node_power_cap_w.copy()
        caps[indices] = np.nan if cap_w is None else float(cap_w)
        self.apply_power_caps(caps)
        cpu = self.spec.node.cpu
        self.state.set_node_frequencies(
            cpu.freq_base_ghz if freq_ghz is None else float(freq_ghz), indices
        )
        self.state.set_node_uncore_frequencies(
            cpu.uncore_max_ghz if uncore_ghz is None else float(uncore_ghz), indices
        )
        return nodes

    def summary(self) -> Dict[str, float]:
        """A small dictionary of headline cluster facts (for reports)."""
        return {
            "nodes": float(len(self.nodes)),
            "cores": float(self.spec.node.total_cores * len(self.nodes)),
            "tdp_w": self.total_tdp_w(),
            "idle_w": self.total_idle_power_w(),
            "budget_w": self.system_power_budget_w,
        }
