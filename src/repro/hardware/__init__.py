"""Simulated hardware substrate (the "RAPL-capable nodes" substitution).

The paper's tuning loops assume Intel-style hardware controls: per-package
RAPL power caps and energy counters, per-core DVFS (P-states), uncore
frequency control, and hardware performance counters.  None of those are
available in this environment, so this subpackage provides an analytic
hardware model that exposes the *same control and telemetry surface*:

* :class:`~repro.hardware.cpu.CpuSpec` / :class:`~repro.hardware.cpu.CpuPackage`
  — a processor package with discrete P-states, uncore frequency, a CMOS
  power model and a roofline-style performance model.
* :class:`~repro.hardware.rapl.RaplDomain` / :class:`~repro.hardware.rapl.RaplInterface`
  — power capping over an averaging window plus monotonically increasing
  energy counters (with wrap-around, as on real MSRs).
* :class:`~repro.hardware.variation.VariationModel` — manufacturing
  variation in power efficiency and achievable turbo frequency.
* :class:`~repro.hardware.thermal.ThermalModel` — a first-order RC thermal
  model for thermal-aware scheduling experiments.
* :class:`~repro.hardware.node.Node` and
  :class:`~repro.hardware.cluster.Cluster` — nodes (sockets + DRAM + NIC +
  optional GPUs) aggregated into a cluster with a site power meter.
* :class:`~repro.hardware.state.ClusterState` — the struct-of-arrays
  state kernel behind nodes and clusters: per-package/per-node numpy
  arrays with vectorised whole-cluster power, energy, thermal and
  power-cap operations.
"""

from repro.hardware.cluster import Cluster, ClusterSpec
from repro.hardware.cpu import CpuPackage, CpuSpec, PState
from repro.hardware.gpu import GpuDevice, GpuSpec
from repro.hardware.node import Node, NodeSpec
from repro.hardware.power_model import PowerModelParams
from repro.hardware.rapl import RaplDomain, RaplInterface
from repro.hardware.state import ClusterState
from repro.hardware.thermal import ThermalModel, ThermalSpec
from repro.hardware.variation import VariationModel
from repro.hardware.workload import PhaseDemand

__all__ = [
    "Cluster",
    "ClusterSpec",
    "ClusterState",
    "CpuPackage",
    "CpuSpec",
    "GpuDevice",
    "GpuSpec",
    "Node",
    "NodeSpec",
    "PhaseDemand",
    "PowerModelParams",
    "PState",
    "RaplDomain",
    "RaplInterface",
    "ThermalModel",
    "ThermalSpec",
    "VariationModel",
]
