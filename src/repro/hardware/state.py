"""Struct-of-arrays state kernel for whole-cluster simulation.

Every mutable per-package and per-node quantity of a simulated machine —
frequency targets, uncore frequencies, power caps, accumulated energy,
die temperatures, manufacturing-variation factors, allocation state —
lives in one :class:`ClusterState` as a numpy array.  The object layer
(:class:`~repro.hardware.cluster.Cluster`,
:class:`~repro.hardware.node.Node`,
:class:`~repro.hardware.cpu.CpuPackage`,
:class:`~repro.hardware.thermal.ThermalModel`) holds *views* into these
arrays: scalar accessors keep their historical semantics, while
whole-cluster operations (total power, total energy, idle power, the
free/busy partition, power-cap distribution, a batched thermal step)
become single numpy expressions instead of Python loops over nodes.

The kernel mirrors the array-programming treatment PR 1 applied to
``ParameterSpace``: the scalar per-object API is a thin shim, the arrays
are the ground truth, and the two views can never diverge because there
is only one copy of the data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.hardware import power_model as pm
from repro.hardware.workload import PhaseDemand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.hardware.node import NodeSpec

__all__ = ["IDLE_DEMAND", "ClusterState"]

#: The demand a package presents when nothing is scheduled on it (the same
#: constants :meth:`CpuPackage.idle_power_w` has always used).
IDLE_DEMAND = PhaseDemand(
    name="idle",
    ref_seconds=1.0,
    core_fraction=0.0,
    memory_fraction=0.0,
    comm_fraction=0.0,
    activity_factor=0.05,
    dram_intensity=0.02,
)


class ClusterState:
    """Columnar backing store for ``n_nodes`` homogeneous nodes.

    Package arrays have shape ``(n_nodes, n_sockets)``; node arrays have
    shape ``(n_nodes,)``.  A standalone :class:`~repro.hardware.node.Node`
    or :class:`~repro.hardware.cpu.CpuPackage` owns a one-row state, so
    the scalar construction path and the cluster path share all code.

    Vectorised whole-cluster operations need the (shared) ``node_spec``;
    a state created for a bare package may omit it, in which case only
    the per-cell views are usable.
    """

    def __init__(
        self,
        n_nodes: int,
        n_sockets: int,
        n_gpus: int = 0,
        node_spec: Optional["NodeSpec"] = None,
    ):
        if n_nodes < 1 or n_sockets < 1:
            raise ValueError("n_nodes and n_sockets must be >= 1")
        if n_gpus < 0:
            raise ValueError("n_gpus must be >= 0")
        self.n_nodes = int(n_nodes)
        self.n_sockets = int(n_sockets)
        self.n_gpus = int(n_gpus)
        self.node_spec = node_spec

        shape = (self.n_nodes, self.n_sockets)
        # -- package knob state (written by CpuPackage setters) ------------
        self.pkg_freq_target_ghz = np.zeros(shape)
        self.pkg_uncore_ghz = np.zeros(shape)
        self.pkg_power_cap_w = np.zeros(shape)
        self.pkg_max_freq_ghz = np.zeros(shape)
        # -- package telemetry ---------------------------------------------
        self.pkg_energy_j = np.zeros(shape)
        self.pkg_busy_seconds = np.zeros(shape)
        self.pkg_temperature_c = np.zeros(shape)
        self.pkg_ambient_offset_c = np.zeros(shape)
        # -- manufacturing variation (immutable after binding) -------------
        self.pkg_power_efficiency = np.ones(shape)
        self.pkg_leakage_scale = np.ones(shape)
        # -- node-level state ----------------------------------------------
        #: NaN means "uncapped".
        self.node_power_cap_w = np.full(self.n_nodes, np.nan)
        self.node_current_power_w = np.zeros(self.n_nodes)
        #: Incrementally maintained free mask (True = unallocated), kept in
        #: sync by Node.allocate()/release() so free/busy partitioning never
        #: rescans the node list.
        self.node_free = np.ones(self.n_nodes, dtype=bool)

    # -- shape / partition helpers -----------------------------------------
    def free_indices(self) -> np.ndarray:
        """Indices of unallocated nodes, in node-id order."""
        return np.flatnonzero(self.node_free)

    def busy_indices(self) -> np.ndarray:
        """Indices of allocated nodes, in node-id order."""
        return np.flatnonzero(~self.node_free)

    @property
    def free_count(self) -> int:
        return int(np.count_nonzero(self.node_free))

    @property
    def busy_count(self) -> int:
        return self.n_nodes - self.free_count

    def _require_spec(self) -> "NodeSpec":
        if self.node_spec is None:
            raise RuntimeError(
                "this ClusterState was created without a NodeSpec; "
                "whole-cluster operations are unavailable"
            )
        return self.node_spec

    # -- vectorised power model --------------------------------------------
    def power_per_package(
        self,
        demand: PhaseDemand,
        active_cores: Optional[int] = None,
        freq_ghz: Optional[np.ndarray] = None,
        uncore_ghz: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Package + DRAM power of every package at once (W).

        The vectorised twin of :meth:`CpuPackage.power_at`: the current
        frequency/uncore targets, per-package turbo limits, variation
        factors and die temperatures are read straight from the arrays.
        """
        spec = self._require_spec()
        cpu = spec.cpu
        cores = cpu.cores if active_cores is None else min(int(active_cores), cpu.cores)
        freq = self.pkg_freq_target_ghz if freq_ghz is None else freq_ghz
        uncore = self.pkg_uncore_ghz if uncore_ghz is None else uncore_ghz
        return pm.package_power_array(
            demand,
            freq,
            uncore,
            cores,
            cpu.freq_min_ghz,
            self.pkg_max_freq_ghz,
            cpu.uncore_min_ghz,
            cpu.uncore_max_ghz,
            cpu.params,
            efficiency_multiplier=self.pkg_power_efficiency,
            temperature_c=self.pkg_temperature_c,
            leakage_scale=self.pkg_leakage_scale,
        )

    def idle_power_per_package(self) -> np.ndarray:
        """Idle power of every package (W), matching ``CpuPackage.idle_power_w``."""
        spec = self._require_spec()
        freq = np.full_like(self.pkg_freq_target_ghz, spec.cpu.freq_min_ghz)
        return self.power_per_package(IDLE_DEMAND, active_cores=0, freq_ghz=freq)

    def idle_power_per_node(self) -> np.ndarray:
        """Idle power of every node (W), matching ``Node.idle_power_w``."""
        spec = self._require_spec()
        gpu_idle = self.n_gpus * spec.gpu.idle_power_w
        return self.idle_power_per_package().sum(axis=1) + gpu_idle + spec.platform_power_w

    # -- vectorised accounting ---------------------------------------------
    def total_tdp_w(self) -> float:
        """Sum of nominal node maximum power (the procured-power default)."""
        return float(self.n_nodes * self._require_spec().tdp_w)

    def total_idle_power_w(self) -> float:
        return float(self.idle_power_per_node().sum())

    def instantaneous_power_w(self, include_idle: bool = True) -> float:
        """System power: busy nodes at their draw, idle nodes at idle power."""
        if include_idle:
            idle = self.idle_power_per_node()
        else:
            idle = 0.0
        return float(np.where(self.node_free, idle, self.node_current_power_w).sum())

    def total_energy_j(self) -> float:
        """Energy consumed by all packages so far (J).  GPUs are tracked by
        their device objects and added by the cluster layer when present."""
        return float(self.pkg_energy_j.sum())

    # -- batched thermal step ----------------------------------------------
    def advance_thermal(self, pkg_power_w: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance every package's RC thermal model ``dt_s`` seconds at once.

        The vectorised twin of :meth:`ThermalModel.advance`: temperature
        relaxes toward ``ambient + R * power`` with the shared time
        constant.  Returns the updated temperature array (a view).
        """
        if dt_s < 0:
            raise ValueError("dt must be >= 0")
        spec = self._require_spec().thermal
        pkg_power_w = np.asarray(pkg_power_w, dtype=float)
        if np.any(pkg_power_w < 0):
            raise ValueError("power must be >= 0")
        target = (
            spec.ambient_c
            + self.pkg_ambient_offset_c
            + spec.resistance_k_per_w * pkg_power_w
        )
        alpha = 1.0 - np.exp(-dt_s / spec.time_constant_s)
        self.pkg_temperature_c += (target - self.pkg_temperature_c) * alpha
        return self.pkg_temperature_c

    # -- vectorised power-cap distribution ---------------------------------
    def set_node_power_caps(self, caps_w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Apply per-node power caps in one shot (NaN entries uncap).

        Replicates :meth:`Node.set_power_cap` arithmetic as numpy
        expressions: the cap is floored at the node minimum, the platform
        share subtracted, and the remainder split between the CPU packages
        and GPUs in proportion to their TDPs.  Package cap cells are
        written directly; the per-node RAPL/GPU device objects are the
        caller's to update (they are plain Python objects).

        Returns ``(applied_node_caps, cpu_share)`` — the enforced node cap
        (NaN where uncapped) and the node-level package budget the RAPL
        interface should advertise.
        """
        spec = self._require_spec()
        caps_w = np.asarray(caps_w, dtype=float)
        if caps_w.shape != (self.n_nodes,):
            raise ValueError(f"caps must have shape ({self.n_nodes},), got {caps_w.shape}")
        cpu = spec.cpu
        uncapped = np.isnan(caps_w)

        applied = np.maximum(caps_w, spec.min_power_w)
        budget = applied - spec.platform_power_w
        gpu_tdp = self.n_gpus * spec.gpu.max_power_w
        cpu_tdp = self.n_sockets * cpu.tdp_w
        total_tdp = gpu_tdp + cpu_tdp
        cpu_share = budget * (cpu_tdp / total_tdp) if total_tdp > 0 else budget
        per_pkg = np.clip(cpu_share / self.n_sockets, cpu.min_power_cap_w, cpu.tdp_w)

        # Uncapped nodes: packages fall back to their TDP default.
        self.pkg_power_cap_w[:] = np.where(uncapped[:, None], cpu.tdp_w, per_pkg[:, None])
        self.node_power_cap_w[:] = np.where(uncapped, np.nan, applied)
        return np.where(uncapped, np.nan, applied), cpu_share

    def __repr__(self) -> str:
        return (
            f"ClusterState(n_nodes={self.n_nodes}, n_sockets={self.n_sockets}, "
            f"n_gpus={self.n_gpus}, free={self.free_count})"
        )
