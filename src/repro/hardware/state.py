"""Struct-of-arrays state kernel for whole-cluster simulation.

Every mutable per-package and per-node quantity of a simulated machine —
frequency targets, uncore frequencies, power caps, accumulated energy,
die temperatures, manufacturing-variation factors, allocation state —
lives in one :class:`ClusterState` as a numpy array.  The object layer
(:class:`~repro.hardware.cluster.Cluster`,
:class:`~repro.hardware.node.Node`,
:class:`~repro.hardware.cpu.CpuPackage`,
:class:`~repro.hardware.thermal.ThermalModel`) holds *views* into these
arrays: scalar accessors keep their historical semantics, while
whole-cluster operations (total power, total energy, idle power, the
free/busy partition, power-cap distribution, a batched thermal step)
become single numpy expressions instead of Python loops over nodes.

The kernel mirrors the array-programming treatment PR 1 applied to
``ParameterSpace``: the scalar per-object API is a thin shim, the arrays
are the ground truth, and the two views can never diverge because there
is only one copy of the data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.hardware import power_model as pm
from repro.hardware.workload import PhaseDemand

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.hardware.node import NodeSpec

__all__ = ["IDLE_DEMAND", "ClusterState"]

#: The demand a package presents when nothing is scheduled on it (the same
#: constants :meth:`CpuPackage.idle_power_w` has always used).
IDLE_DEMAND = PhaseDemand(
    name="idle",
    ref_seconds=1.0,
    core_fraction=0.0,
    memory_fraction=0.0,
    comm_fraction=0.0,
    activity_factor=0.05,
    dram_intensity=0.02,
)


class ClusterState:
    """Columnar backing store for ``n_nodes`` homogeneous nodes.

    Package arrays have shape ``(n_nodes, n_sockets)``; node arrays have
    shape ``(n_nodes,)``.  A standalone :class:`~repro.hardware.node.Node`
    or :class:`~repro.hardware.cpu.CpuPackage` owns a one-row state, so
    the scalar construction path and the cluster path share all code.

    Vectorised whole-cluster operations need the (shared) ``node_spec``;
    a state created for a bare package may omit it, in which case only
    the per-cell views are usable.
    """

    def __init__(
        self,
        n_nodes: int,
        n_sockets: int,
        n_gpus: int = 0,
        node_spec: Optional["NodeSpec"] = None,
    ):
        if n_nodes < 1 or n_sockets < 1:
            raise ValueError("n_nodes and n_sockets must be >= 1")
        if n_gpus < 0:
            raise ValueError("n_gpus must be >= 0")
        self.n_nodes = int(n_nodes)
        self.n_sockets = int(n_sockets)
        self.n_gpus = int(n_gpus)
        self.node_spec = node_spec

        shape = (self.n_nodes, self.n_sockets)
        # -- package knob state (written by CpuPackage setters) ------------
        self.pkg_freq_target_ghz = np.zeros(shape)
        self.pkg_uncore_ghz = np.zeros(shape)
        self.pkg_power_cap_w = np.zeros(shape)
        self.pkg_max_freq_ghz = np.zeros(shape)
        # -- package telemetry ---------------------------------------------
        self.pkg_energy_j = np.zeros(shape)
        self.pkg_busy_seconds = np.zeros(shape)
        self.pkg_temperature_c = np.zeros(shape)
        self.pkg_ambient_offset_c = np.zeros(shape)
        # -- manufacturing variation (immutable after binding) -------------
        self.pkg_power_efficiency = np.ones(shape)
        self.pkg_leakage_scale = np.ones(shape)
        # -- node-level state ----------------------------------------------
        #: NaN means "uncapped".
        self.node_power_cap_w = np.full(self.n_nodes, np.nan)
        self.node_current_power_w = np.zeros(self.n_nodes)
        #: Incrementally maintained free mask (True = unallocated), kept in
        #: sync by Node.allocate()/release() so free/busy partitioning never
        #: rescans the node list.
        self.node_free = np.ones(self.n_nodes, dtype=bool)
        #: Monotonic generation counter bumped on every free-mask mutation
        #: (Node.allocate/release).  Schedulers key memoized pass state
        #: (ranked free lists, per-job infeasibility marks) on this: equal
        #: versions guarantee an identical free set, so skipping recompute
        #: is decision-identical.
        self.free_version = 0
        #: Monotonic generation counter bumped on every write to the
        #: idle-power inputs (package temperatures, ambient offsets,
        #: uncore frequencies) by their write paths (ThermalModel,
        #: CpuPackage knobs, the vectorised twins here, and the
        #: scheduler's thermal excursions).  Idle-power memoisation keys
        #: on this: equal versions guarantee identical inputs, so the
        #: cache check is O(1) instead of an array compare.
        self.power_inputs_version = 0
        # -- lazily built ranking/scheduling caches -------------------------
        #: Per-node mean manufacturing power-efficiency factor (lower is a
        #: better part).  Variation is immutable once the packages have
        #: bound their cells, so this is computed once and reused by every
        #: scheduling pass; CpuPackage binding invalidates it.
        self._node_efficiency_key: Optional[np.ndarray] = None
        self._efficiency_order: Optional[np.ndarray] = None
        self._pstate_freqs_asc: Optional[np.ndarray] = None
        #: Memoized (power_inputs_version, idle W per node); see
        #: idle_power_per_node.
        self._idle_power_cache: Optional[tuple[int, np.ndarray]] = None
        #: Memoized (power_inputs_version, fraction, busy W per node);
        #: see busy_power_per_node.
        self._busy_power_cache: Optional[tuple[int, float, np.ndarray]] = None
        #: Memoized (free_version, count); every feasibility probe asks
        #: for the free count, and the mask only changes when the version
        #: bumps.
        self._free_count_cache: Optional[tuple[int, int]] = None

    # -- shape / partition helpers -----------------------------------------
    def free_indices(self) -> np.ndarray:
        """Indices of unallocated nodes, in node-id order."""
        return np.flatnonzero(self.node_free)

    def busy_indices(self) -> np.ndarray:
        """Indices of allocated nodes, in node-id order."""
        return np.flatnonzero(~self.node_free)

    # -- vectorised node ranking (scheduler hot path) -----------------------
    def invalidate_efficiency_cache(self) -> None:
        """Drop the cached per-node efficiency key (package (re)binding)."""
        self._node_efficiency_key = None
        self._efficiency_order = None

    def node_efficiency_key(self) -> np.ndarray:
        """Per-node ranking key for power-aware selection (lower = better).

        The mean of the node's package power-efficiency multipliers — the
        same key :meth:`Cluster.rank_nodes_by_efficiency` sorts scalar
        ``Node`` objects by, precomputed once for the whole machine.
        """
        if self._node_efficiency_key is None:
            self._node_efficiency_key = self.pkg_power_efficiency.mean(axis=1)
        return self._node_efficiency_key

    def rank_free_by_efficiency(self) -> np.ndarray:
        """Free-node indices ordered best-part-first (stable in node id).

        Computed as a boolean gather over the machine-wide stable
        efficiency order (built once: the key is immutable).  Identical
        to ``free[argsort(key[free], stable)]`` — a stable sort of a
        subset preserves the subset's relative order in the full stable
        sort — but O(n) per pass instead of O(n log n).
        """
        if self._efficiency_order is None:
            self._efficiency_order = np.argsort(
                self.node_efficiency_key(), kind="stable"
            )
        order = self._efficiency_order
        return order[self.node_free[order]]

    def rank_free_by_temperature(self) -> np.ndarray:
        """Free-node indices ordered coolest-first (stable in node id)."""
        free = self.free_indices()
        hottest = self.pkg_temperature_c.max(axis=1)
        return free[np.argsort(hottest[free], kind="stable")]

    @property
    def free_count(self) -> int:
        cached = self._free_count_cache
        if cached is not None and cached[0] == self.free_version:
            return cached[1]
        count = int(np.count_nonzero(self.node_free))
        self._free_count_cache = (self.free_version, count)
        return count

    @property
    def busy_count(self) -> int:
        return self.n_nodes - self.free_count

    def _require_spec(self) -> "NodeSpec":
        if self.node_spec is None:
            raise RuntimeError(
                "this ClusterState was created without a NodeSpec; "
                "whole-cluster operations are unavailable"
            )
        return self.node_spec

    # -- vectorised power model --------------------------------------------
    def power_per_package(
        self,
        demand: PhaseDemand,
        active_cores: Optional[int] = None,
        freq_ghz: Optional[np.ndarray] = None,
        uncore_ghz: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Package + DRAM power of every package at once (W).

        The vectorised twin of :meth:`CpuPackage.power_at`: the current
        frequency/uncore targets, per-package turbo limits, variation
        factors and die temperatures are read straight from the arrays.
        """
        spec = self._require_spec()
        cpu = spec.cpu
        cores = cpu.cores if active_cores is None else min(int(active_cores), cpu.cores)
        freq = self.pkg_freq_target_ghz if freq_ghz is None else freq_ghz
        uncore = self.pkg_uncore_ghz if uncore_ghz is None else uncore_ghz
        return pm.package_power_array(
            demand,
            freq,
            uncore,
            cores,
            cpu.freq_min_ghz,
            self.pkg_max_freq_ghz,
            cpu.uncore_min_ghz,
            cpu.uncore_max_ghz,
            cpu.params,
            efficiency_multiplier=self.pkg_power_efficiency,
            temperature_c=self.pkg_temperature_c,
            leakage_scale=self.pkg_leakage_scale,
        )

    def idle_power_per_package(self) -> np.ndarray:
        """Idle power of every package (W), matching ``CpuPackage.idle_power_w``."""
        spec = self._require_spec()
        freq = np.full_like(self.pkg_freq_target_ghz, spec.cpu.freq_min_ghz)
        return self.power_per_package(IDLE_DEMAND, active_cores=0, freq_ghz=freq)

    def idle_power_per_node(self) -> np.ndarray:
        """Idle power of every node (W), matching ``Node.idle_power_w``.

        Memoized on :attr:`power_inputs_version`, which covers the only
        drifting inputs — package temperatures, ambient offsets and
        uncore frequencies (the core frequency is pinned to ``freq_min``
        by the idle definition; efficiency and leakage variation are
        fixed at construction).  Every power sample reads this, and at
        trace-replay scale the full idle power-model evaluation
        dominated the sample cost.  Callers must not mutate the
        returned array.
        """
        cached = self._idle_power_cache
        if cached is not None and cached[0] == self.power_inputs_version:
            return cached[1]
        spec = self._require_spec()
        gpu_idle = self.n_gpus * spec.gpu.idle_power_w
        idle = self.idle_power_per_package().sum(axis=1) + gpu_idle + spec.platform_power_w
        self._idle_power_cache = (self.power_inputs_version, idle)
        return idle

    # -- vectorised accounting ---------------------------------------------
    def total_tdp_w(self) -> float:
        """Sum of nominal node maximum power (the procured-power default)."""
        return float(self.n_nodes * self._require_spec().tdp_w)

    def total_idle_power_w(self) -> float:
        return float(self.idle_power_per_node().sum())

    # repro-lint: hot
    def busy_power_per_node(self, activity_fraction: float) -> np.ndarray:
        """Per-node draw at a constant activity level between idle and TDP.

        ``idle + fraction * (tdp - idle)`` elementwise — the
        constant-power model trace replay charges allocated nodes with.
        Same float64 arithmetic as the scalar
        ``idle + fraction * (node.max_power_w() - idle)``, so the result
        is bit-identical per node.  Memoized like
        :meth:`idle_power_per_node` (single entry: traces replay one
        fraction at a time).  Callers must not mutate the returned array.
        """
        cached = self._busy_power_cache
        if (
            cached is not None
            and cached[0] == self.power_inputs_version
            and cached[1] == activity_fraction
        ):
            return cached[2]
        idle = self.idle_power_per_node()
        busy = idle + activity_fraction * (self._require_spec().tdp_w - idle)
        self._busy_power_cache = (self.power_inputs_version, activity_fraction, busy)
        return busy

    def instantaneous_power_w(self, include_idle: bool = True) -> float:
        """System power: busy nodes at their draw, idle nodes at idle power."""
        if include_idle:
            idle = self.idle_power_per_node()
        else:
            idle = 0.0
        return float(np.where(self.node_free, idle, self.node_current_power_w).sum())

    def total_energy_j(self) -> float:
        """Energy consumed by all packages so far (J).  GPUs are tracked by
        their device objects and added by the cluster layer when present."""
        return float(self.pkg_energy_j.sum())

    # -- batched thermal step ----------------------------------------------
    def advance_thermal(self, pkg_power_w: np.ndarray, dt_s: float) -> np.ndarray:
        """Advance every package's RC thermal model ``dt_s`` seconds at once.

        The vectorised twin of :meth:`ThermalModel.advance`: temperature
        relaxes toward ``ambient + R * power`` with the shared time
        constant.  Returns the updated temperature array (a view).
        """
        if dt_s < 0:
            raise ValueError("dt must be >= 0")
        spec = self._require_spec().thermal
        pkg_power_w = np.asarray(pkg_power_w, dtype=float)
        if np.any(pkg_power_w < 0):
            raise ValueError("power must be >= 0")
        target = (
            spec.ambient_c
            + self.pkg_ambient_offset_c
            + spec.resistance_k_per_w * pkg_power_w
        )
        alpha = 1.0 - np.exp(-dt_s / spec.time_constant_s)
        self.pkg_temperature_c += (target - self.pkg_temperature_c) * alpha
        self.power_inputs_version += 1
        return self.pkg_temperature_c

    # -- vectorised DVFS ----------------------------------------------------
    def _pstate_table(self) -> np.ndarray:
        """Ascending P-state frequencies of the (shared) CPU SKU."""
        if self._pstate_freqs_asc is None:
            spec = self._require_spec()
            freqs = np.array(sorted(p.frequency_ghz for p in spec.cpu.pstates()))
            freqs.setflags(write=False)
            self._pstate_freqs_asc = freqs
        return self._pstate_freqs_asc

    def set_node_frequencies(
        self, freq_ghz, node_indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Set the core-frequency target of whole nodes in one pass.

        The vectorised twin of :meth:`Node.set_frequency`: each request is
        clamped into ``[freq_min, that package's turbo limit]`` and floored
        to the nearest supported P-state, per package.  ``freq_ghz`` is a
        scalar or a per-node vector; ``node_indices`` restricts the write
        (default: every node).  Returns the granted per-package
        frequencies for the touched nodes.
        """
        spec = self._require_spec()
        if node_indices is None:
            node_indices = np.arange(self.n_nodes)
        node_indices = np.asarray(node_indices, dtype=int)
        requested = np.broadcast_to(
            np.asarray(freq_ghz, dtype=float).reshape(-1, 1) if np.ndim(freq_ghz) else float(freq_ghz),
            (node_indices.size, self.n_sockets),
        )
        clamped = np.clip(
            requested, spec.cpu.freq_min_ghz, self.pkg_max_freq_ghz[node_indices]
        )
        table = self._pstate_table()
        # Highest P-state frequency <= clamp (+eps); below the lowest
        # P-state falls back to the lowest, matching CpuPackage.
        pos = np.searchsorted(table, clamped + 1e-9, side="right") - 1
        granted = table[np.maximum(pos, 0)]
        self.pkg_freq_target_ghz[node_indices] = granted
        return granted

    def set_node_uncore_frequencies(
        self, uncore_ghz, node_indices: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorised twin of :meth:`Node.set_uncore_frequency` (a clip)."""
        spec = self._require_spec()
        if node_indices is None:
            node_indices = np.arange(self.n_nodes)
        node_indices = np.asarray(node_indices, dtype=int)
        granted = np.broadcast_to(
            np.clip(
                np.asarray(uncore_ghz, dtype=float),
                spec.cpu.uncore_min_ghz,
                spec.cpu.uncore_max_ghz,
            ).reshape(-1, 1) if np.ndim(uncore_ghz) else float(
                np.clip(uncore_ghz, spec.cpu.uncore_min_ghz, spec.cpu.uncore_max_ghz)
            ),
            (node_indices.size, self.n_sockets),
        )
        self.pkg_uncore_ghz[node_indices] = granted
        self.power_inputs_version += 1
        return granted

    # -- vectorised power-cap distribution ---------------------------------
    def set_node_power_caps(self, caps_w: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Apply per-node power caps in one shot (NaN entries uncap).

        Replicates :meth:`Node.set_power_cap` arithmetic as numpy
        expressions: the cap is floored at the node minimum, the platform
        share subtracted, and the remainder split between the CPU packages
        and GPUs in proportion to their TDPs.  Package cap cells are
        written directly; the per-node RAPL/GPU device objects are the
        caller's to update (they are plain Python objects).

        Returns ``(applied_node_caps, cpu_share)`` — the enforced node cap
        (NaN where uncapped) and the node-level package budget the RAPL
        interface should advertise.
        """
        spec = self._require_spec()
        caps_w = np.asarray(caps_w, dtype=float)
        if caps_w.shape != (self.n_nodes,):
            raise ValueError(f"caps must have shape ({self.n_nodes},), got {caps_w.shape}")
        cpu = spec.cpu
        uncapped = np.isnan(caps_w)

        applied = np.maximum(caps_w, spec.min_power_w)
        budget = applied - spec.platform_power_w
        gpu_tdp = self.n_gpus * spec.gpu.max_power_w
        cpu_tdp = self.n_sockets * cpu.tdp_w
        total_tdp = gpu_tdp + cpu_tdp
        cpu_share = budget * (cpu_tdp / total_tdp) if total_tdp > 0 else budget
        per_pkg = np.clip(cpu_share / self.n_sockets, cpu.min_power_cap_w, cpu.tdp_w)

        # Uncapped nodes: packages fall back to their TDP default.
        self.pkg_power_cap_w[:] = np.where(uncapped[:, None], cpu.tdp_w, per_pkg[:, None])
        self.node_power_cap_w[:] = np.where(uncapped, np.nan, applied)
        return np.where(uncapped, np.nan, applied), cpu_share

    def __repr__(self) -> str:
        return (
            f"ClusterState(n_nodes={self.n_nodes}, n_sockets={self.n_sockets}, "
            f"n_gpus={self.n_gpus}, free={self.free_count})"
        )
