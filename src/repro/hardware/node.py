"""Compute node model: sockets + DRAM + NIC + optional GPUs.

The node is the unit the resource manager allocates and the unit the
node-level power manager controls.  It aggregates one or more
:class:`~repro.hardware.cpu.CpuPackage` objects behind a single
node-level control surface (node power cap, node frequency, node uncore
frequency) and a single RAPL interface, which is how SLURM, GEOPM and
Conductor address nodes in the paper's use cases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hardware.cpu import CpuPackage, CpuSpec, PhaseExecution
from repro.hardware.gpu import GpuDevice, GpuSpec
from repro.hardware.rapl import RaplInterface
from repro.hardware.state import ClusterState
from repro.hardware.thermal import ThermalSpec
from repro.hardware.variation import VariationDraw, VariationModel
from repro.hardware.workload import PhaseDemand

__all__ = ["NodeSpec", "NodePhaseResult", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of a compute node."""

    n_sockets: int = 2
    cpu: CpuSpec = field(default_factory=CpuSpec)
    n_gpus: int = 0
    gpu: GpuSpec = field(default_factory=GpuSpec)
    dram_gb: int = 192
    nic_bandwidth_gbps: float = 100.0
    nic_latency_us: float = 1.5
    #: Power of fans, VRs, board, NIC — everything outside RAPL domains (W).
    platform_power_w: float = 60.0
    thermal: ThermalSpec = field(default_factory=ThermalSpec)

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ValueError("n_sockets must be >= 1")
        if self.n_gpus < 0:
            raise ValueError("n_gpus must be >= 0")
        if self.dram_gb <= 0:
            raise ValueError("dram_gb must be positive")
        if self.nic_bandwidth_gbps <= 0 or self.nic_latency_us < 0:
            raise ValueError("invalid NIC parameters")
        if self.platform_power_w < 0:
            raise ValueError("platform_power_w must be >= 0")

    @property
    def total_cores(self) -> int:
        return self.n_sockets * self.cpu.cores

    @property
    def tdp_w(self) -> float:
        """Nominal maximum node power (packages at TDP + GPUs + platform)."""
        return (
            self.n_sockets * self.cpu.tdp_w
            + self.n_gpus * self.gpu.max_power_w
            + self.platform_power_w
        )

    @property
    def min_power_w(self) -> float:
        """Lowest enforceable node power cap."""
        return (
            self.n_sockets * self.cpu.min_power_cap_w
            + self.n_gpus * self.gpu.min_power_cap_w
            + self.platform_power_w
        )


@dataclass(frozen=True)
class NodePhaseResult:
    """Aggregated outcome of running one phase across a node's sockets."""

    duration_s: float
    power_w: float
    energy_j: float
    frequency_ghz: float
    ipc: float
    flops: float
    power_capped: bool
    per_package: tuple[PhaseExecution, ...]

    @property
    def flops_per_watt(self) -> float:
        return self.flops / self.power_w if self.power_w > 0 else 0.0

    @property
    def ipc_per_watt(self) -> float:
        return self.ipc / self.power_w if self.power_w > 0 else 0.0


class Node:
    """A compute node with node-level power and frequency controls.

    A node's mutable state (allocation, instantaneous power, node cap,
    and everything inside its packages) lives in a
    :class:`~repro.hardware.state.ClusterState` row — the shared cluster
    store when ``state``/``node_index`` are given, or a private one-row
    store for standalone nodes.  The scalar attributes below are views,
    so cluster-wide vectorised accounting and the per-node API always
    agree; in particular ``allocate``/``release`` keep the cluster's
    free-node mask current without any rescan.
    """

    def __init__(
        self,
        spec: NodeSpec | None = None,
        hostname: str = "node0000",
        node_id: int = 0,
        variations: Optional[List[VariationDraw]] = None,
        ambient_offset_c: float = 0.0,
        state: Optional[ClusterState] = None,
        node_index: Optional[int] = None,
    ):
        self.spec = spec or NodeSpec()
        self.hostname = hostname
        self.node_id = node_id
        if state is None:
            state = ClusterState(
                1, self.spec.n_sockets, self.spec.n_gpus, node_spec=self.spec
            )
            node_index = 0
        if node_index is None:
            raise ValueError("state and node_index must be given together")
        self._state = state
        self._node_index = int(node_index)

        if variations is None:
            variations = [VariationModel.nominal() for _ in range(self.spec.n_sockets)]
        if len(variations) != self.spec.n_sockets:
            raise ValueError("one variation draw per socket is required")

        self.packages: List[CpuPackage] = [
            CpuPackage(
                self.spec.cpu,
                variations[i],
                self.spec.thermal,
                package_id=i,
                state=state,
                index=(self._node_index, i),
            )
            for i in range(self.spec.n_sockets)
        ]
        for pkg in self.packages:
            pkg.thermal.ambient_offset_c = ambient_offset_c
        self.gpus: List[GpuDevice] = [
            GpuDevice(self.spec.gpu, device_id=i) for i in range(self.spec.n_gpus)
        ]
        self.rapl = RaplInterface.for_node(
            self.spec.n_sockets,
            self.spec.cpu.min_power_cap_w,
            self.spec.cpu.tdp_w,
        )

        #: Job currently holding the node (None when free).
        self._allocated_to: Optional[str] = None
        #: Memoized (state power_inputs_version, idle W); see idle_power_w.
        self._idle_power_cache: Optional[tuple[int, float]] = None
        state.node_free[self._node_index] = True
        state.node_power_cap_w[self._node_index] = np.nan
        #: Instantaneous power draw used by the cluster power meter (W).
        self.current_power_w = self.idle_power_w()

    # -- allocation -------------------------------------------------------
    @property
    def allocated_to(self) -> Optional[str]:
        """Job currently holding the node (None when free)."""
        return self._allocated_to

    @allocated_to.setter
    def allocated_to(self, job_id: Optional[str]) -> None:
        self._allocated_to = job_id
        # Keep the cluster's incremental free mask in sync (several layers
        # release nodes by assigning the attribute directly).
        self._state.node_free[self._node_index] = job_id is None
        self._state.free_version += 1

    @property
    def is_free(self) -> bool:
        return self._allocated_to is None

    @property
    def cluster_state(self) -> ClusterState:
        """The shared struct-of-arrays store this node's row lives in."""
        return self._state

    def allocate(self, job_id: str) -> None:
        if self._allocated_to is not None:
            raise RuntimeError(
                f"{self.hostname} already allocated to {self._allocated_to!r}"
            )
        self.allocated_to = job_id

    def release(self) -> None:
        self.allocated_to = None
        self.current_power_w = self.idle_power_w()

    # -- power / frequency controls ----------------------------------------
    @property
    def current_power_w(self) -> float:
        """Instantaneous power draw used by the cluster power meter (W)."""
        return float(self._state.node_current_power_w[self._node_index])

    @current_power_w.setter
    def current_power_w(self, watts: float) -> None:
        self._state.node_current_power_w[self._node_index] = float(watts)

    @property
    def node_power_cap_w(self) -> Optional[float]:
        cap = self._state.node_power_cap_w[self._node_index]
        return None if np.isnan(cap) else float(cap)

    def set_power_cap(self, node_watts: Optional[float]) -> Optional[float]:
        """Apply a node-level power cap; returns the enforced value.

        The platform share is subtracted and the remainder split evenly
        across packages (GPUs get their proportional share when present).
        """
        if node_watts is None:
            self._state.node_power_cap_w[self._node_index] = np.nan
            for pkg in self.packages:
                pkg.set_power_cap(None)
            for gpu in self.gpus:
                gpu.set_power_cap(None)
            self.rapl.clear_all_limits()
            return None

        node_watts = max(float(node_watts), self.spec.min_power_w)
        budget = node_watts - self.spec.platform_power_w
        gpu_tdp = self.spec.n_gpus * self.spec.gpu.max_power_w
        cpu_tdp = self.spec.n_sockets * self.spec.cpu.tdp_w
        total_tdp = gpu_tdp + cpu_tdp
        cpu_share = budget * (cpu_tdp / total_tdp) if total_tdp > 0 else budget
        gpu_share = budget - cpu_share

        applied = self.spec.platform_power_w
        per_pkg = cpu_share / self.spec.n_sockets
        for pkg in self.packages:
            applied += pkg.set_power_cap(per_pkg) or 0.0
        for i, gpu in enumerate(self.gpus):
            applied += gpu.set_power_cap(gpu_share / self.spec.n_gpus) or 0.0
        self.rapl.set_node_package_limit(cpu_share)
        self._state.node_power_cap_w[self._node_index] = node_watts
        return node_watts

    def set_frequency(self, freq_ghz: float) -> float:
        """Set the core frequency target on every package; returns granted."""
        granted = 0.0
        for pkg in self.packages:
            granted = pkg.set_frequency(freq_ghz)
        return granted

    def set_uncore_frequency(self, uncore_ghz: float) -> float:
        granted = 0.0
        for pkg in self.packages:
            granted = pkg.set_uncore_frequency(uncore_ghz)
        return granted

    # -- power telemetry -----------------------------------------------------
    def idle_power_w(self) -> float:
        """Node power when idle (packages idle + GPUs idle + platform).

        Memoized on the state's ``power_inputs_version``, which covers
        the only inputs that can change after construction — package
        temperatures, ambient offsets and uncore frequencies (idle pins
        the core frequency to ``freq_min``).  ``release()`` resets the
        node's draw to idle on every job teardown, so at trace scale
        this would otherwise re-run the package power model per release.
        """
        key = self._state.power_inputs_version
        cached = self._idle_power_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        idle = (
            sum(pkg.idle_power_w() for pkg in self.packages)
            + sum(gpu.idle_power_w() for gpu in self.gpus)
            + self.spec.platform_power_w
        )
        self._idle_power_cache = (key, idle)
        return idle

    def max_power_w(self) -> float:
        return self.spec.tdp_w

    def total_energy_j(self) -> float:
        """Energy consumed by compute so far (packages + GPUs)."""
        return sum(pkg.energy_j for pkg in self.packages) + sum(
            gpu.energy_j for gpu in self.gpus
        )

    def max_temperature_c(self) -> float:
        return max(pkg.thermal.temperature_c for pkg in self.packages)

    # -- execution -------------------------------------------------------------
    def execute_phase(
        self,
        demand: PhaseDemand,
        threads: Optional[int] = None,
        comm_seconds_override: Optional[float] = None,
    ) -> NodePhaseResult:
        """Run a node-level phase across all sockets.

        ``demand`` describes the whole node's share of the phase at the
        node's reference operating point; the sockets work on it in
        parallel, so the node-level duration is the slowest socket and the
        node-level power is the sum plus the platform power.
        """
        threads = self.spec.total_cores if threads is None else int(threads)
        threads = max(1, min(threads, self.spec.total_cores))
        per_pkg_threads = max(1, threads // self.spec.n_sockets)

        executions = [
            pkg.execute(
                demand,
                threads=per_pkg_threads,
                comm_seconds_override=comm_seconds_override,
            )
            for pkg in self.packages
        ]
        duration = max(e.duration_s for e in executions)
        compute_power = sum(e.power_w for e in executions)
        power = compute_power + self.spec.platform_power_w
        energy = power * duration
        ipc = sum(e.ipc for e in executions) / len(executions)
        flops = sum(e.flops for e in executions)
        capped = any(e.power_capped for e in executions)
        freq = min(e.frequency_ghz for e in executions)

        for execution, pkg in zip(executions, self.packages):
            # Feed the RAPL energy counters so software-visible telemetry
            # matches what was consumed.
            self.rapl.domain(f"package-{pkg.package_id}").accumulate_energy(
                execution.energy_j * 0.8
            )
            self.rapl.domain(f"dram-{pkg.package_id}").accumulate_energy(
                execution.energy_j * 0.2
            )

        self.current_power_w = power
        return NodePhaseResult(
            duration_s=duration,
            power_w=power,
            energy_j=energy,
            frequency_ghz=freq,
            ipc=ipc,
            flops=flops,
            power_capped=capped,
            per_package=tuple(executions),
        )

    def __repr__(self) -> str:
        return (
            f"Node({self.hostname!r}, sockets={self.spec.n_sockets}, "
            f"cap={self.node_power_cap_w}, job={self.allocated_to!r})"
        )
