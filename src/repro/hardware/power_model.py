"""Analytic CMOS power and roofline-style performance model.

These are pure functions (numpy-friendly, no simulation state) that the
:class:`~repro.hardware.cpu.CpuPackage` uses to translate *(workload,
knob settings)* into *(duration, power)*.  The functional forms are the
standard ones used in the power-aware-HPC literature the paper builds
on (Conductor, GEOPM, COUNTDOWN, READEX):

* dynamic power ``P_dyn = A * C * V^2 * f`` with voltage approximately
  linear in frequency over the DVFS range, giving the familiar roughly
  cubic power/frequency relationship;
* static (leakage) power, weakly dependent on temperature;
* execution time split into a core-frequency-sensitive part, an
  uncore/memory-sensitive part, and an insensitive part (see
  :class:`~repro.hardware.workload.PhaseDemand`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.workload import PhaseDemand

__all__ = [
    "PowerModelParams",
    "voltage_at_frequency",
    "core_dynamic_power",
    "uncore_power",
    "dram_power",
    "package_power",
    "phase_duration",
    "effective_ipc",
    "effective_flops",
    "voltage_at_frequency_array",
    "core_dynamic_power_array",
    "uncore_power_array",
    "static_power_array",
    "package_power_array",
]


@dataclass(frozen=True)
class PowerModelParams:
    """Calibration constants of the package power model.

    The defaults approximate a 2020-era dual-AVX server package in the
    ~100-250 W TDP class (the kind of node the paper's use cases ran on).
    """

    #: Voltage at the minimum DVFS frequency (V).
    v_min: float = 0.70
    #: Voltage at the maximum (turbo) frequency (V).
    v_max: float = 1.15
    #: Effective switched capacitance per core at activity factor 1 (nF-ish
    #: constant folded with frequency units so that power comes out in W
    #: when frequency is in GHz).
    core_capacitance: float = 3.0
    #: Leakage/static power of the package at reference temperature (W).
    static_power: float = 18.0
    #: Temperature coefficient of leakage (fraction per Kelvin above ref).
    leakage_temp_coeff: float = 0.004
    #: Reference temperature for the leakage model (degC).
    ref_temperature: float = 60.0
    #: Uncore (mesh/LLC/memory controller) power at maximum uncore
    #: frequency and full memory intensity (W).
    uncore_max_power: float = 22.0
    #: Idle uncore power floor (W).
    uncore_idle_power: float = 6.0
    #: DRAM power per DIMM-channel group at full intensity (W).
    dram_max_power: float = 30.0
    #: DRAM idle/refresh power (W).
    dram_idle_power: float = 5.0
    #: Exponent of the memory-time sensitivity to uncore frequency.
    uncore_perf_exponent: float = 0.7

    def __post_init__(self) -> None:
        if self.v_min <= 0 or self.v_max <= self.v_min:
            raise ValueError("require 0 < v_min < v_max")
        if self.core_capacitance <= 0:
            raise ValueError("core_capacitance must be positive")
        for attr in (
            "static_power",
            "uncore_max_power",
            "uncore_idle_power",
            "dram_max_power",
            "dram_idle_power",
        ):
            if getattr(self, attr) < 0:
                raise ValueError(f"{attr} must be >= 0")


def voltage_at_frequency(
    freq_ghz: float, freq_min_ghz: float, freq_max_ghz: float, params: PowerModelParams
) -> float:
    """Operating voltage for a core frequency (linear V/f approximation)."""
    if freq_max_ghz <= freq_min_ghz:
        raise ValueError("freq_max must exceed freq_min")
    frac = (freq_ghz - freq_min_ghz) / (freq_max_ghz - freq_min_ghz)
    frac = float(np.clip(frac, 0.0, 1.0))
    return params.v_min + (params.v_max - params.v_min) * frac


def core_dynamic_power(
    freq_ghz: float,
    freq_min_ghz: float,
    freq_max_ghz: float,
    active_cores: int,
    activity_factor: float,
    params: PowerModelParams,
    efficiency_multiplier: float = 1.0,
) -> float:
    """Dynamic power of the active cores (W)."""
    if active_cores < 0:
        raise ValueError("active_cores must be >= 0")
    volt = voltage_at_frequency(freq_ghz, freq_min_ghz, freq_max_ghz, params)
    per_core = params.core_capacitance * activity_factor * volt * volt * freq_ghz
    return float(per_core * active_cores * efficiency_multiplier)


def uncore_power(
    uncore_ghz: float,
    uncore_min_ghz: float,
    uncore_max_ghz: float,
    dram_intensity: float,
    params: PowerModelParams,
) -> float:
    """Uncore (mesh + LLC + memory controller) power (W)."""
    if uncore_max_ghz <= uncore_min_ghz:
        raise ValueError("uncore_max must exceed uncore_min")
    frac = float(np.clip((uncore_ghz - uncore_min_ghz) / (uncore_max_ghz - uncore_min_ghz), 0.0, 1.0))
    utilization = 0.3 + 0.7 * float(np.clip(dram_intensity, 0.0, 1.0))
    dynamic = (params.uncore_max_power - params.uncore_idle_power) * frac * utilization
    return params.uncore_idle_power + dynamic


def dram_power(dram_intensity: float, params: PowerModelParams) -> float:
    """DRAM power for the package's memory channels (W)."""
    intensity = float(np.clip(dram_intensity, 0.0, 1.0))
    return params.dram_idle_power + (params.dram_max_power - params.dram_idle_power) * intensity


def static_power(temperature_c: float, params: PowerModelParams) -> float:
    """Leakage power, increasing with die temperature (W)."""
    delta = temperature_c - params.ref_temperature
    return params.static_power * max(0.2, 1.0 + params.leakage_temp_coeff * delta)


def package_power(
    demand: PhaseDemand,
    freq_ghz: float,
    uncore_ghz: float,
    active_cores: int,
    freq_min_ghz: float,
    freq_max_ghz: float,
    uncore_min_ghz: float,
    uncore_max_ghz: float,
    params: PowerModelParams,
    efficiency_multiplier: float = 1.0,
    temperature_c: float | None = None,
) -> float:
    """Total package power (core + uncore + static) plus DRAM power (W).

    The core activity factor is weighted by how core-bound the phase is:
    stall-heavy (memory/communication bound) phases keep cores busy
    spinning or waiting at far lower switching activity.
    """
    busy_weight = (
        demand.core_fraction * 1.0
        + demand.memory_fraction * 0.55
        + demand.comm_fraction * 0.35
        + demand.other_fraction * 0.4
    )
    activity = demand.activity_factor * busy_weight
    p_core = core_dynamic_power(
        freq_ghz,
        freq_min_ghz,
        freq_max_ghz,
        active_cores,
        activity,
        params,
        efficiency_multiplier,
    )
    p_uncore = uncore_power(
        uncore_ghz, uncore_min_ghz, uncore_max_ghz, demand.dram_intensity, params
    )
    temp = params.ref_temperature if temperature_c is None else temperature_c
    p_static = static_power(temp, params)
    p_dram = dram_power(demand.dram_intensity, params)
    return p_core + p_uncore + p_static + p_dram


# -- array (struct-of-arrays) variants ---------------------------------------
#
# Elementwise twins of the scalar functions above, used by the
# :class:`~repro.hardware.state.ClusterState` kernel to evaluate the power
# model for every package of a cluster in one numpy expression.  They apply
# the exact same IEEE operations as the scalar versions, so per-element
# results agree with the per-package loop to floating-point rounding.


def voltage_at_frequency_array(
    freq_ghz: np.ndarray,
    freq_min_ghz: float,
    freq_max_ghz: np.ndarray,
    params: PowerModelParams,
) -> np.ndarray:
    """Operating voltage for per-package frequency/turbo-limit arrays."""
    frac = (freq_ghz - freq_min_ghz) / (freq_max_ghz - freq_min_ghz)
    frac = np.clip(frac, 0.0, 1.0)
    return params.v_min + (params.v_max - params.v_min) * frac


def core_dynamic_power_array(
    freq_ghz: np.ndarray,
    freq_min_ghz: float,
    freq_max_ghz: np.ndarray,
    active_cores: int,
    activity_factor: float,
    params: PowerModelParams,
    efficiency_multiplier: np.ndarray,
) -> np.ndarray:
    """Dynamic power of the active cores for every package (W)."""
    volt = voltage_at_frequency_array(freq_ghz, freq_min_ghz, freq_max_ghz, params)
    per_core = params.core_capacitance * activity_factor * volt * volt * freq_ghz
    return per_core * active_cores * efficiency_multiplier


def uncore_power_array(
    uncore_ghz: np.ndarray,
    uncore_min_ghz: float,
    uncore_max_ghz: float,
    dram_intensity: float,
    params: PowerModelParams,
) -> np.ndarray:
    """Uncore power for per-package uncore frequency arrays (W)."""
    frac = np.clip((uncore_ghz - uncore_min_ghz) / (uncore_max_ghz - uncore_min_ghz), 0.0, 1.0)
    utilization = 0.3 + 0.7 * float(np.clip(dram_intensity, 0.0, 1.0))
    dynamic = (params.uncore_max_power - params.uncore_idle_power) * frac * utilization
    return params.uncore_idle_power + dynamic


def static_power_array(temperature_c: np.ndarray, params: PowerModelParams) -> np.ndarray:
    """Leakage power for per-package temperature arrays (W)."""
    delta = temperature_c - params.ref_temperature
    return params.static_power * np.maximum(0.2, 1.0 + params.leakage_temp_coeff * delta)


def package_power_array(
    demand: PhaseDemand,
    freq_ghz: np.ndarray,
    uncore_ghz: np.ndarray,
    active_cores: int,
    freq_min_ghz: float,
    freq_max_ghz: np.ndarray,
    uncore_min_ghz: float,
    uncore_max_ghz: float,
    params: PowerModelParams,
    efficiency_multiplier: np.ndarray,
    temperature_c: np.ndarray,
    leakage_scale: np.ndarray | None = None,
) -> np.ndarray:
    """Total package + DRAM power for every package at once (W).

    Matches :func:`package_power` elementwise; when ``leakage_scale`` is
    given the per-package leakage variation is folded in exactly like
    :meth:`CpuPackage.power_at` does (base static power plus
    ``static * (leakage_scale - 1)``).
    """
    busy_weight = (
        demand.core_fraction * 1.0
        + demand.memory_fraction * 0.55
        + demand.comm_fraction * 0.35
        + demand.other_fraction * 0.4
    )
    activity = demand.activity_factor * busy_weight
    p_core = core_dynamic_power_array(
        freq_ghz,
        freq_min_ghz,
        freq_max_ghz,
        active_cores,
        activity,
        params,
        efficiency_multiplier,
    )
    p_uncore = uncore_power_array(
        uncore_ghz, uncore_min_ghz, uncore_max_ghz, demand.dram_intensity, params
    )
    p_static = static_power_array(temperature_c, params)
    p_dram = dram_power(demand.dram_intensity, params)
    total = p_core + p_uncore + p_static + p_dram
    if leakage_scale is not None:
        total = total + p_static * (leakage_scale - 1.0)
    return total


def phase_duration(
    demand: PhaseDemand,
    freq_ghz: float,
    uncore_ghz: float,
    threads: int,
    ref_freq_ghz: float,
    ref_uncore_ghz: float,
    params: PowerModelParams,
    comm_seconds_override: float | None = None,
) -> float:
    """Duration of a phase at the given operating point (seconds).

    ``comm_seconds_override`` lets the MPI layer substitute the actual
    (imbalance-dependent) communication time; when ``None`` the nominal
    communication fraction of the reference duration is used.
    """
    if freq_ghz <= 0 or uncore_ghz <= 0:
        raise ValueError("frequencies must be positive")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    thread_factor = demand.thread_scaling(threads)
    base = demand.ref_seconds
    core_time = base * demand.core_fraction * (ref_freq_ghz / freq_ghz) * thread_factor
    mem_time = (
        base
        * demand.memory_fraction
        * (ref_uncore_ghz / uncore_ghz) ** params.uncore_perf_exponent
        * (0.5 + 0.5 * thread_factor)
    )
    other_time = base * demand.other_fraction
    if comm_seconds_override is None:
        comm_time = base * demand.comm_fraction
    else:
        comm_time = max(0.0, float(comm_seconds_override))
    return core_time + mem_time + other_time + comm_time


def effective_ipc(
    demand: PhaseDemand,
    duration_s: float,
    freq_ghz: float,
    threads: int,
    ref_freq_ghz: float,
) -> float:
    """Average retired instructions per cycle per core over the phase.

    The instruction count of the phase is fixed by the work, so IPC falls
    when the duration stretches (e.g. stalled on memory at high core
    frequency) and rises when the core-bound portion dominates.
    """
    if duration_s <= 0:
        return 0.0
    knob_sensitive = demand.core_fraction + demand.memory_fraction + demand.other_fraction
    ref_busy = demand.ref_seconds * max(knob_sensitive, 1e-9)
    instructions = demand.ops_per_cycle_ref * (ref_freq_ghz * 1e9) * ref_busy * demand.ref_threads
    cycles = freq_ghz * 1e9 * duration_s * threads
    if cycles <= 0:
        return 0.0
    return float(instructions / cycles)


def effective_flops(demand: PhaseDemand, duration_s: float) -> float:
    """Average useful FLOP/s over the phase."""
    if duration_s <= 0:
        return 0.0
    useful_fraction = demand.core_fraction + demand.memory_fraction + demand.other_fraction
    total_flops = demand.flops_per_second_ref * demand.ref_seconds * max(useful_fraction, 1e-9)
    return float(total_flops / duration_s)
