"""RAPL-style power capping and energy counter interface.

The paper's node layer exposes exactly two hardware power controls that
every higher layer relies on (Table 1): *power capping* (RAPL) and *DVFS*.
This module reproduces the RAPL interface shape used by GEOPM, Conductor,
COUNTDOWN and MERIC:

* per-domain (``package-N`` / ``dram-N``) power limits with an averaging
  time window,
* monotonically increasing energy counters that wrap around like the
  32-bit MSR counters do,
* a minimum sampling interval below which energy readings are too noisy
  to use (MERIC's "at least 100 power samples / 100 ms region" rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

__all__ = ["RaplDomain", "RaplInterface", "PowerSample"]

#: Wrap-around value of the simulated energy counter, in joules.  Real MSRs
#: wrap at 2^32 energy units (~262144 J at the common 61 uJ resolution).
ENERGY_COUNTER_WRAP_J = 262144.0

#: Default RAPL averaging window (seconds).
DEFAULT_WINDOW_S = 1.0

#: Minimum interval between energy reads for a meaningful power estimate.
MIN_SAMPLE_INTERVAL_S = 0.1


@dataclass(frozen=True)
class PowerSample:
    """A derived power reading over an interval."""

    start_time_s: float
    end_time_s: float
    energy_j: float

    @property
    def interval_s(self) -> float:
        return self.end_time_s - self.start_time_s

    @property
    def watts(self) -> float:
        if self.interval_s <= 0:
            return 0.0
        return self.energy_j / self.interval_s

    @property
    def reliable(self) -> bool:
        """True when the interval is long enough for a trustworthy reading."""
        return self.interval_s >= MIN_SAMPLE_INTERVAL_S


class RaplDomain:
    """One RAPL power domain (a package or its DRAM plane)."""

    def __init__(
        self,
        name: str,
        min_limit_w: float,
        max_limit_w: float,
        default_limit_w: Optional[float] = None,
    ):
        if min_limit_w <= 0 or max_limit_w <= 0 or min_limit_w > max_limit_w:
            raise ValueError("require 0 < min_limit <= max_limit")
        self.name = name
        self.min_limit_w = float(min_limit_w)
        self.max_limit_w = float(max_limit_w)
        self._limit_w = float(default_limit_w) if default_limit_w is not None else float(max_limit_w)
        self._window_s = DEFAULT_WINDOW_S
        self._energy_j = 0.0
        self._wraps = 0
        self._limit_enabled = default_limit_w is not None

    # -- power limit ------------------------------------------------------
    @property
    def limit_w(self) -> float:
        return self._limit_w

    @property
    def limit_enabled(self) -> bool:
        return self._limit_enabled

    @property
    def window_s(self) -> float:
        return self._window_s

    def set_limit(self, watts: float, window_s: float = DEFAULT_WINDOW_S) -> float:
        """Set the power limit; it is clamped into the domain's valid range."""
        if window_s <= 0:
            raise ValueError("window must be positive")
        clamped = min(max(float(watts), self.min_limit_w), self.max_limit_w)
        self._limit_w = clamped
        self._window_s = float(window_s)
        self._limit_enabled = True
        return clamped

    def clear_limit(self) -> None:
        """Disable the power limit (back to the domain maximum)."""
        self._limit_w = self.max_limit_w
        self._limit_enabled = False

    # -- energy counter ----------------------------------------------------
    def accumulate_energy(self, joules: float) -> None:
        """Add consumed energy to the counter (wrapping like the MSR does)."""
        if joules < 0:
            raise ValueError("energy must be >= 0")
        self._energy_j += joules
        while self._energy_j >= ENERGY_COUNTER_WRAP_J:
            self._energy_j -= ENERGY_COUNTER_WRAP_J
            self._wraps += 1

    def read_energy_j(self) -> float:
        """Raw (wrapping) counter value, as software would read it."""
        return self._energy_j

    def total_energy_j(self) -> float:
        """Unwrapped total energy (ground truth, for verification)."""
        return self._energy_j + self._wraps * ENERGY_COUNTER_WRAP_J

    @property
    def wrap_count(self) -> int:
        return self._wraps

    @staticmethod
    def delta_energy_j(before: float, after: float) -> float:
        """Energy consumed between two raw reads, handling one wrap."""
        if after >= before:
            return after - before
        return after + ENERGY_COUNTER_WRAP_J - before


class RaplInterface:
    """The per-node collection of RAPL domains.

    Provides the `package-N` and `dram-N` namespace used by node-level
    managers and job-level runtimes, plus convenience methods to cap the
    whole node and to derive power from two energy reads.
    """

    def __init__(self, domains: Dict[str, RaplDomain]):
        if not domains:
            raise ValueError("at least one RAPL domain is required")
        self._domains = dict(domains)

    @classmethod
    def for_node(
        cls,
        n_packages: int,
        package_min_w: float,
        package_max_w: float,
        dram_max_w: float = 40.0,
    ) -> "RaplInterface":
        """Build the standard package/dram domain set for a node."""
        if n_packages < 1:
            raise ValueError("n_packages must be >= 1")
        domains: Dict[str, RaplDomain] = {}
        for i in range(n_packages):
            domains[f"package-{i}"] = RaplDomain(
                f"package-{i}", package_min_w, package_max_w
            )
            domains[f"dram-{i}"] = RaplDomain(f"dram-{i}", dram_max_w * 0.2, dram_max_w)
        return cls(domains)

    # -- domain access -----------------------------------------------------
    def domain(self, name: str) -> RaplDomain:
        if name not in self._domains:
            raise KeyError(f"unknown RAPL domain {name!r}; have {sorted(self._domains)}")
        return self._domains[name]

    def domain_names(self) -> list[str]:
        return sorted(self._domains)

    def package_domains(self) -> list[RaplDomain]:
        return [d for name, d in sorted(self._domains.items()) if name.startswith("package-")]

    def dram_domains(self) -> list[RaplDomain]:
        return [d for name, d in sorted(self._domains.items()) if name.startswith("dram-")]

    # -- node-level helpers --------------------------------------------------
    def set_node_package_limit(self, total_watts: float, window_s: float = DEFAULT_WINDOW_S) -> float:
        """Split a node-level package budget evenly across packages.

        Returns the total limit actually applied after per-domain clamping.
        """
        packages = self.package_domains()
        share = total_watts / len(packages)
        applied = 0.0
        for dom in packages:
            applied += dom.set_limit(share, window_s)
        return applied

    def clear_all_limits(self) -> None:
        for dom in self._domains.values():
            dom.clear_limit()

    def read_all_energy_j(self) -> Dict[str, float]:
        return {name: dom.read_energy_j() for name, dom in self._domains.items()}

    def total_energy_j(self) -> float:
        return sum(dom.total_energy_j() for dom in self._domains.values())

    def derive_power(
        self, before: Dict[str, float], after: Dict[str, float], interval_s: float
    ) -> PowerSample:
        """Derive a node power sample from two raw counter snapshots."""
        if interval_s <= 0:
            raise ValueError("interval must be positive")
        energy = 0.0
        for name, end in after.items():
            start = before.get(name, end)
            energy += RaplDomain.delta_energy_j(start, end)
        return PowerSample(start_time_s=0.0, end_time_s=interval_s, energy_j=energy)
