"""Simple GPU accelerator model.

GEOPM's objectives in the paper include "adapting CPU/GPU PM controls
according to application phases" (§3.2.2), so nodes can optionally carry
accelerators.  The model is intentionally coarse: a GPU has a power range,
a frequency range, and executes offloaded work whose duration scales with
its frequency; it is enough to exercise the GPU control path of the
node-level manager and the GEOPM agents.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

__all__ = ["GpuSpec", "GpuExecution", "GpuDevice"]


@dataclass(frozen=True)
class GpuSpec:
    """Static description of an accelerator."""

    model: str = "GPU-SIM A100"
    freq_min_ghz: float = 0.7
    freq_max_ghz: float = 1.4
    idle_power_w: float = 55.0
    max_power_w: float = 400.0
    min_power_cap_w: float = 100.0

    def __post_init__(self) -> None:
        if not 0 < self.freq_min_ghz <= self.freq_max_ghz:
            raise ValueError("require 0 < freq_min <= freq_max")
        if not 0 < self.idle_power_w <= self.max_power_w:
            raise ValueError("require 0 < idle_power <= max_power")
        if not 0 < self.min_power_cap_w <= self.max_power_w:
            raise ValueError("require 0 < min_power_cap <= max_power")


@dataclass(frozen=True)
class GpuExecution:
    """Outcome of an offloaded kernel execution."""

    duration_s: float
    power_w: float
    energy_j: float
    frequency_ghz: float
    power_capped: bool


class GpuDevice:
    """A single accelerator with frequency and power-cap controls."""

    def __init__(self, spec: GpuSpec | None = None, device_id: int = 0):
        self.spec = spec or GpuSpec()
        self.device_id = device_id
        self._freq_ghz = self.spec.freq_max_ghz
        self._power_cap_w: Optional[float] = None
        self._energy_j = 0.0

    @property
    def frequency_ghz(self) -> float:
        return self._freq_ghz

    @property
    def power_cap_w(self) -> Optional[float]:
        return self._power_cap_w

    @property
    def energy_j(self) -> float:
        return self._energy_j

    def set_frequency(self, freq_ghz: float) -> float:
        self._freq_ghz = float(np.clip(freq_ghz, self.spec.freq_min_ghz, self.spec.freq_max_ghz))
        return self._freq_ghz

    def set_power_cap(self, watts: Optional[float]) -> Optional[float]:
        if watts is None:
            self._power_cap_w = None
            return None
        self._power_cap_w = float(
            np.clip(watts, self.spec.min_power_cap_w, self.spec.max_power_w)
        )
        return self._power_cap_w

    def power_at(self, freq_ghz: float, utilization: float) -> float:
        """Power draw at a frequency and utilization level (W)."""
        utilization = float(np.clip(utilization, 0.0, 1.0))
        frac = (freq_ghz - self.spec.freq_min_ghz) / (
            self.spec.freq_max_ghz - self.spec.freq_min_ghz
        )
        frac = float(np.clip(frac, 0.0, 1.0))
        dynamic = (self.spec.max_power_w - self.spec.idle_power_w) * utilization * (
            0.35 + 0.65 * frac**2
        )
        return self.spec.idle_power_w + dynamic

    def idle_power_w(self) -> float:
        return self.spec.idle_power_w

    def execute(self, ref_seconds: float, utilization: float = 0.9) -> GpuExecution:
        """Run an offloaded kernel of ``ref_seconds`` at max frequency."""
        if ref_seconds < 0:
            raise ValueError("ref_seconds must be >= 0")
        freq = self._freq_ghz
        capped = False
        if self._power_cap_w is not None:
            # Walk frequency down until power fits under the cap.
            for candidate in np.linspace(freq, self.spec.freq_min_ghz, 29):
                if self.power_at(float(candidate), utilization) <= self._power_cap_w + 1e-9:
                    capped = candidate < freq - 1e-9
                    freq = float(candidate)
                    break
            else:
                freq = self.spec.freq_min_ghz
                capped = True
        duration = ref_seconds * (self.spec.freq_max_ghz / freq) ** 0.85
        power = self.power_at(freq, utilization)
        if self._power_cap_w is not None:
            power = min(power, self._power_cap_w)
        energy = power * duration
        self._energy_j += energy
        return GpuExecution(
            duration_s=duration,
            power_w=power,
            energy_j=energy,
            frequency_ghz=freq,
            power_capped=capped,
        )
