"""Manufacturing variation model.

The paper lists manufacturing variation as one of the core reasons power
management is hard ("dynamic phase behavior, manufacturing variation, and
increasing system-level heterogeneity", §1) and one of the inputs to
power-aware node selection (§3.1.1).  Real processors of the same SKU
differ in leakage and in the frequency they reach under a power cap; this
module draws per-package variation factors so the simulated cluster shows
the same spread.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["VariationDraw", "VariationModel"]


@dataclass(frozen=True)
class VariationDraw:
    """Variation factors for one processor package.

    ``power_efficiency`` multiplies dynamic power (values > 1 mean the
    part burns more power for the same work — a "bad" part under a power
    cap).  ``max_turbo_scale`` scales the achievable turbo frequency.
    ``leakage_scale`` scales static power.
    """

    power_efficiency: float
    max_turbo_scale: float
    leakage_scale: float

    def __post_init__(self) -> None:
        for attr in ("power_efficiency", "max_turbo_scale", "leakage_scale"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")


class VariationModel:
    """Draws correlated per-package manufacturing variation.

    Parameters
    ----------
    power_sigma:
        Relative standard deviation of dynamic power efficiency (typical
        published values are 5-15 % across a large cluster).
    turbo_sigma:
        Relative standard deviation of the achievable turbo frequency.
    leakage_sigma:
        Relative standard deviation of leakage power.
    correlation:
        Correlation between power efficiency and leakage (leaky parts
        tend to be the power-hungry parts).
    """

    def __init__(
        self,
        power_sigma: float = 0.08,
        turbo_sigma: float = 0.03,
        leakage_sigma: float = 0.15,
        correlation: float = 0.6,
    ):
        if not 0.0 <= power_sigma < 1.0:
            raise ValueError("power_sigma must be in [0, 1)")
        if not 0.0 <= turbo_sigma < 1.0:
            raise ValueError("turbo_sigma must be in [0, 1)")
        if not 0.0 <= leakage_sigma < 1.0:
            raise ValueError("leakage_sigma must be in [0, 1)")
        if not -1.0 <= correlation <= 1.0:
            raise ValueError("correlation must be in [-1, 1]")
        self.power_sigma = power_sigma
        self.turbo_sigma = turbo_sigma
        self.leakage_sigma = leakage_sigma
        self.correlation = correlation

    def draw(self, rng: np.random.Generator) -> VariationDraw:
        """Draw variation factors for a single package."""
        z_power = rng.standard_normal()
        z_leak = self.correlation * z_power + np.sqrt(
            max(0.0, 1.0 - self.correlation**2)
        ) * rng.standard_normal()
        z_turbo = rng.standard_normal()

        power_eff = float(np.clip(1.0 + self.power_sigma * z_power, 0.7, 1.4))
        leakage = float(np.clip(1.0 + self.leakage_sigma * z_leak, 0.5, 1.8))
        # Power-hungry parts tend to reach slightly lower sustained turbo.
        turbo = float(
            np.clip(1.0 + self.turbo_sigma * z_turbo - 0.02 * (power_eff - 1.0), 0.85, 1.1)
        )
        return VariationDraw(
            power_efficiency=power_eff, max_turbo_scale=turbo, leakage_scale=leakage
        )

    def draw_many(self, rng: np.random.Generator, count: int) -> list[VariationDraw]:
        """Draw variation for ``count`` packages."""
        if count < 0:
            raise ValueError("count must be >= 0")
        return [self.draw(rng) for _ in range(count)]

    def draw_array(
        self, rng: np.random.Generator, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw variation for ``count`` packages as arrays, in one shot.

        Returns ``(power_efficiency, max_turbo_scale, leakage_scale)``.
        Consumes the random stream in exactly the per-draw order of
        :meth:`draw` (one ``(count, 3)`` normal block fills row-major), so
        the arrays are bit-identical to a :meth:`draw_many` call with the
        same generator state — seeded clusters stay reproducible across
        the scalar and vectorised construction paths.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        z = rng.standard_normal((count, 3))
        z_power = z[:, 0]
        z_leak = self.correlation * z_power + np.sqrt(
            max(0.0, 1.0 - self.correlation**2)
        ) * z[:, 1]
        z_turbo = z[:, 2]

        power_eff = np.clip(1.0 + self.power_sigma * z_power, 0.7, 1.4)
        leakage = np.clip(1.0 + self.leakage_sigma * z_leak, 0.5, 1.8)
        turbo = np.clip(
            1.0 + self.turbo_sigma * z_turbo - 0.02 * (power_eff - 1.0), 0.85, 1.1
        )
        return power_eff, turbo, leakage

    @staticmethod
    def nominal() -> VariationDraw:
        """A draw with no variation (for deterministic unit tests)."""
        return VariationDraw(power_efficiency=1.0, max_turbo_scale=1.0, leakage_scale=1.0)
