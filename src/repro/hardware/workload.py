"""Workload demand descriptors exchanged between applications and hardware.

Applications (``repro.apps``) decompose their execution into *phases*;
each phase presents a :class:`PhaseDemand` to the hardware describing how
much work it contains and how that work responds to the hardware knobs
(core frequency, uncore frequency, thread count).  The hardware model
turns a demand plus the current knob settings into a duration, a power
draw, and derived counters (IPC, FLOPS).

The decomposition follows the standard execution-time breakdown used by
READEX/MERIC and Conductor-style runtimes:

* a **core-bound** fraction whose duration scales inversely with core
  frequency,
* a **memory/uncore-bound** fraction whose duration scales inversely with
  uncore frequency (and is insensitive to core frequency),
* a **communication/wait** fraction (MPI wait and copy time) that depends
  on the other ranks rather than on the local knobs, and
* a residual fraction (I/O, OS noise) insensitive to every knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

__all__ = ["PhaseDemand"]


@dataclass(frozen=True)
class PhaseDemand:
    """Per-rank resource demand of one application phase.

    Parameters
    ----------
    name:
        Human-readable phase/region name (used by region-aware runtimes
        such as MERIC).
    ref_seconds:
        Duration of the phase at the reference operating point (base
        frequency, reference uncore frequency, ``ref_threads`` threads).
    core_fraction / memory_fraction / comm_fraction:
        Fractions of ``ref_seconds`` that are core-bound, memory-bound
        and communication-bound respectively.  The residual
        ``1 - core - memory - comm`` is knob-insensitive.
    flops_per_second_ref:
        Useful floating-point throughput at the reference point, used to
        derive FLOPS and FLOPS/W telemetry.
    ops_per_cycle_ref:
        Retired instructions per cycle per core at the reference point,
        used to derive IPC telemetry.
    activity_factor:
        CMOS switching-activity factor of the core-bound portion
        (compute-bound code switches more logic and burns more dynamic
        power than stall-heavy code).
    dram_intensity:
        Relative DRAM traffic intensity in [0, 1]; drives DRAM power.
    serial_fraction:
        Amdahl serial fraction used for intra-node thread scaling.
    ref_threads:
        Thread count at which ``ref_seconds`` was defined.
    tags:
        Free-form metadata (e.g. ``{"mpi_call": "Allreduce"}``) consumed
        by runtimes such as COUNTDOWN.
    """

    name: str
    ref_seconds: float
    core_fraction: float = 0.6
    memory_fraction: float = 0.25
    comm_fraction: float = 0.0
    flops_per_second_ref: float = 1.0e10
    ops_per_cycle_ref: float = 1.5
    activity_factor: float = 0.9
    dram_intensity: float = 0.3
    serial_fraction: float = 0.02
    ref_threads: int = 1
    tags: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.ref_seconds < 0:
            raise ValueError(f"ref_seconds must be >= 0, got {self.ref_seconds}")
        for attr in ("core_fraction", "memory_fraction", "comm_fraction"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{attr} must be in [0, 1], got {value}")
        total = self.core_fraction + self.memory_fraction + self.comm_fraction
        if total > 1.0 + 1e-9:
            raise ValueError(
                "core_fraction + memory_fraction + comm_fraction must be <= 1, "
                f"got {total:.4f}"
            )
        if not 0.0 <= self.serial_fraction <= 1.0:
            raise ValueError("serial_fraction must be in [0, 1]")
        if self.ref_threads < 1:
            raise ValueError("ref_threads must be >= 1")
        if not 0.0 <= self.activity_factor <= 1.5:
            raise ValueError("activity_factor must be in [0, 1.5]")
        if not 0.0 <= self.dram_intensity <= 1.0:
            raise ValueError("dram_intensity must be in [0, 1]")

    @property
    def other_fraction(self) -> float:
        """Knob-insensitive residual fraction."""
        return max(
            0.0, 1.0 - self.core_fraction - self.memory_fraction - self.comm_fraction
        )

    def scaled(self, factor: float) -> "PhaseDemand":
        """Return a copy whose reference duration is multiplied by ``factor``."""
        if factor < 0:
            raise ValueError("factor must be >= 0")
        return replace(self, ref_seconds=self.ref_seconds * factor)

    def with_tags(self, **tags: str) -> "PhaseDemand":
        merged = dict(self.tags)
        merged.update(tags)
        return replace(self, tags=merged)

    def thread_scaling(self, threads: int) -> float:
        """Amdahl speedup factor relative to ``ref_threads``.

        Returns the multiplier on the knob-sensitive duration when the
        phase runs with ``threads`` threads instead of ``ref_threads``.
        """
        if threads < 1:
            raise ValueError("threads must be >= 1")
        s = self.serial_fraction

        def time_at(n: int) -> float:
            return s + (1.0 - s) / n

        return time_at(threads) / time_at(self.ref_threads)
