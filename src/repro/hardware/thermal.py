"""First-order RC thermal model for processor packages.

Thermal-constrained performance optimisation and thermal-aware node
selection ("thermal hot spots", §2.1 and §3.1.1) need die temperatures
that respond to power over time.  A single-pole RC model is sufficient to
reproduce the qualitative behaviour: temperature rises toward
``ambient + R * power`` with time constant ``R * C``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ThermalSpec", "ThermalModel"]


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal parameters of a package and its cooling solution."""

    #: Thermal resistance junction-to-ambient (K/W).
    resistance_k_per_w: float = 0.25
    #: Thermal capacitance (J/K).
    capacitance_j_per_k: float = 120.0
    #: Ambient (inlet) temperature (degC).
    ambient_c: float = 24.0
    #: Throttling trip temperature (degC).
    throttle_temp_c: float = 95.0
    #: Critical shutdown temperature (degC).
    critical_temp_c: float = 105.0

    def __post_init__(self) -> None:
        if self.resistance_k_per_w <= 0 or self.capacitance_j_per_k <= 0:
            raise ValueError("thermal resistance and capacitance must be positive")
        if not self.ambient_c < self.throttle_temp_c < self.critical_temp_c:
            raise ValueError("require ambient < throttle < critical temperatures")

    @property
    def time_constant_s(self) -> float:
        return self.resistance_k_per_w * self.capacitance_j_per_k


class ThermalModel:
    """Tracks the die temperature of one package."""

    def __init__(self, spec: ThermalSpec | None = None, ambient_offset_c: float = 0.0):
        self.spec = spec or ThermalSpec()
        #: Per-node ambient offset (models rack/row hot spots).
        self.ambient_offset_c = float(ambient_offset_c)
        self._temperature_c = self.ambient_c

    @property
    def ambient_c(self) -> float:
        return self.spec.ambient_c + self.ambient_offset_c

    @property
    def temperature_c(self) -> float:
        """Current die temperature (degC)."""
        return self._temperature_c

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the die would settle at under constant power."""
        if power_w < 0:
            raise ValueError("power must be >= 0")
        return self.ambient_c + self.spec.resistance_k_per_w * power_w

    def advance(self, power_w: float, dt_s: float) -> float:
        """Advance the model ``dt_s`` seconds at constant power; return temp."""
        if dt_s < 0:
            raise ValueError("dt must be >= 0")
        if power_w < 0:
            raise ValueError("power must be >= 0")
        target = self.steady_state_c(power_w)
        tau = self.spec.time_constant_s
        alpha = 1.0 - float(np.exp(-dt_s / tau))
        self._temperature_c += (target - self._temperature_c) * alpha
        return self._temperature_c

    def is_throttling(self) -> bool:
        """True when the die is above the throttle trip point."""
        return self._temperature_c >= self.spec.throttle_temp_c

    def headroom_c(self) -> float:
        """Degrees of margin below the throttle temperature."""
        return self.spec.throttle_temp_c - self._temperature_c

    def reset(self, temperature_c: float | None = None) -> None:
        """Reset the die temperature (defaults to ambient)."""
        self._temperature_c = self.ambient_c if temperature_c is None else float(temperature_c)
