"""First-order RC thermal model for processor packages.

Thermal-constrained performance optimisation and thermal-aware node
selection ("thermal hot spots", §2.1 and §3.1.1) need die temperatures
that respond to power over time.  A single-pole RC model is sufficient to
reproduce the qualitative behaviour: temperature rises toward
``ambient + R * power`` with time constant ``R * C``.

The model's mutable state (die temperature, per-node ambient offset) can
be *bound* to cells of a :class:`~repro.hardware.state.ClusterState`, so
a whole cluster's temperatures live in one array and advance in a single
vectorised step (:meth:`ClusterState.advance_thermal`) while this class
keeps providing the per-package scalar view.  Standalone models own a
private one-element backing array and behave exactly as before.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["ThermalSpec", "ThermalModel"]


@dataclass(frozen=True)
class ThermalSpec:
    """Thermal parameters of a package and its cooling solution."""

    #: Thermal resistance junction-to-ambient (K/W).
    resistance_k_per_w: float = 0.25
    #: Thermal capacitance (J/K).
    capacitance_j_per_k: float = 120.0
    #: Ambient (inlet) temperature (degC).
    ambient_c: float = 24.0
    #: Throttling trip temperature (degC).
    throttle_temp_c: float = 95.0
    #: Critical shutdown temperature (degC).
    critical_temp_c: float = 105.0

    def __post_init__(self) -> None:
        if self.resistance_k_per_w <= 0 or self.capacitance_j_per_k <= 0:
            raise ValueError("thermal resistance and capacitance must be positive")
        if not self.ambient_c < self.throttle_temp_c < self.critical_temp_c:
            raise ValueError("require ambient < throttle < critical temperatures")

    @property
    def time_constant_s(self) -> float:
        return self.resistance_k_per_w * self.capacitance_j_per_k


class ThermalModel:
    """Tracks the die temperature of one package.

    ``temps``/``offsets``/``index`` bind the model to shared state arrays
    (the cluster kernel passes slices of ``pkg_temperature_c`` /
    ``pkg_ambient_offset_c``); when omitted the model allocates its own
    one-element arrays.
    """

    def __init__(
        self,
        spec: ThermalSpec | None = None,
        ambient_offset_c: float = 0.0,
        temps: Optional[np.ndarray] = None,
        offsets: Optional[np.ndarray] = None,
        index: Optional[Tuple[int, int]] = None,
        version_owner=None,
    ):
        self.spec = spec or ThermalSpec()
        if temps is None:
            temps = np.zeros((1, 1))
            offsets = np.zeros((1, 1))
            index = (0, 0)
        if offsets is None or index is None:
            raise ValueError("temps, offsets and index must be given together")
        self._temps = temps
        self._offsets = offsets
        self._index = index
        #: Holder of a ``power_inputs_version`` counter (the owning
        #: ClusterState) bumped on every temperature/offset write so
        #: idle-power memoisation can key on an integer.
        self._version_owner = version_owner
        self._offsets[self._index] = float(ambient_offset_c)
        self._temps[self._index] = self.ambient_c
        self._bump_version()

    def _bump_version(self) -> None:
        if self._version_owner is not None:
            self._version_owner.power_inputs_version += 1

    @property
    def ambient_offset_c(self) -> float:
        """Per-node ambient offset (models rack/row hot spots)."""
        return float(self._offsets[self._index])

    @ambient_offset_c.setter
    def ambient_offset_c(self, value: float) -> None:
        self._offsets[self._index] = float(value)
        self._bump_version()

    @property
    def ambient_c(self) -> float:
        return self.spec.ambient_c + self.ambient_offset_c

    @property
    def temperature_c(self) -> float:
        """Current die temperature (degC)."""
        return float(self._temps[self._index])

    def steady_state_c(self, power_w: float) -> float:
        """Temperature the die would settle at under constant power."""
        if power_w < 0:
            raise ValueError("power must be >= 0")
        return self.ambient_c + self.spec.resistance_k_per_w * power_w

    def advance(self, power_w: float, dt_s: float) -> float:
        """Advance the model ``dt_s`` seconds at constant power; return temp."""
        if dt_s < 0:
            raise ValueError("dt must be >= 0")
        if power_w < 0:
            raise ValueError("power must be >= 0")
        target = self.steady_state_c(power_w)
        tau = self.spec.time_constant_s
        alpha = 1.0 - float(np.exp(-dt_s / tau))
        self._temps[self._index] += (target - float(self._temps[self._index])) * alpha
        self._bump_version()
        return float(self._temps[self._index])

    def is_throttling(self) -> bool:
        """True when the die is above the throttle trip point."""
        return self.temperature_c >= self.spec.throttle_temp_c

    def headroom_c(self) -> float:
        """Degrees of margin below the throttle temperature."""
        return self.spec.throttle_temp_c - self.temperature_c

    def reset(self, temperature_c: float | None = None) -> None:
        """Reset the die temperature (defaults to ambient)."""
        self._temps[self._index] = (
            self.ambient_c if temperature_c is None else float(temperature_c)
        )
        self._bump_version()
