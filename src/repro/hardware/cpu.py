"""Processor package model: P-states, uncore frequency, power, performance.

A :class:`CpuPackage` is the unit on which the PowerStack's node-level
knobs act: the node manager (or a job-level runtime through it) can pin a
core frequency (P-state), pin an uncore frequency, and apply an RAPL-style
package power cap.  Given a :class:`~repro.hardware.workload.PhaseDemand`
the package computes how long the phase takes, how much power it draws
and what the derived counters (IPC, FLOP/s) read — honouring whichever of
the knob settings is most restrictive, exactly like firmware does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.hardware import power_model as pm
from repro.hardware.power_model import PowerModelParams
from repro.hardware.thermal import ThermalModel, ThermalSpec
from repro.hardware.variation import VariationDraw, VariationModel
from repro.hardware.workload import PhaseDemand

__all__ = ["PState", "CpuSpec", "PhaseExecution", "CpuPackage"]


@dataclass(frozen=True)
class PState:
    """A discrete DVFS operating point."""

    index: int
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor package SKU."""

    model: str = "Xeon-SIM 8280"
    cores: int = 28
    freq_min_ghz: float = 1.0
    freq_base_ghz: float = 2.4
    freq_max_ghz: float = 3.6
    freq_step_ghz: float = 0.1
    uncore_min_ghz: float = 1.2
    uncore_max_ghz: float = 2.4
    tdp_w: float = 205.0
    min_power_cap_w: float = 70.0
    params: PowerModelParams = field(default_factory=PowerModelParams)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if not 0 < self.freq_min_ghz <= self.freq_base_ghz <= self.freq_max_ghz:
            raise ValueError("require 0 < freq_min <= freq_base <= freq_max")
        if self.freq_step_ghz <= 0:
            raise ValueError("freq_step must be positive")
        if not 0 < self.uncore_min_ghz <= self.uncore_max_ghz:
            raise ValueError("require 0 < uncore_min <= uncore_max")
        if self.tdp_w <= 0 or self.min_power_cap_w <= 0:
            raise ValueError("tdp and min_power_cap must be positive")
        if self.min_power_cap_w > self.tdp_w:
            raise ValueError("min_power_cap must not exceed tdp")

    def pstates(self) -> List[PState]:
        """All discrete P-states, highest frequency first (P0, P1, ...)."""
        freqs = np.arange(self.freq_max_ghz, self.freq_min_ghz - 1e-9, -self.freq_step_ghz)
        freqs = np.round(freqs, 6)
        if freqs[-1] > self.freq_min_ghz + 1e-9:
            freqs = np.append(freqs, self.freq_min_ghz)
        return [PState(index=i, frequency_ghz=float(f)) for i, f in enumerate(freqs)]


@dataclass(frozen=True)
class PhaseExecution:
    """The outcome of running one phase on one package."""

    demand: PhaseDemand
    duration_s: float
    power_w: float
    energy_j: float
    frequency_ghz: float
    uncore_ghz: float
    threads: int
    ipc: float
    flops: float
    power_capped: bool
    temperature_c: float

    @property
    def energy_delay_product(self) -> float:
        return self.energy_j * self.duration_s

    @property
    def flops_per_watt(self) -> float:
        return self.flops / self.power_w if self.power_w > 0 else 0.0

    @property
    def ipc_per_watt(self) -> float:
        return self.ipc / self.power_w if self.power_w > 0 else 0.0


class CpuPackage:
    """Stateful processor package with DVFS, uncore and power-cap controls."""

    def __init__(
        self,
        spec: CpuSpec | None = None,
        variation: VariationDraw | None = None,
        thermal_spec: ThermalSpec | None = None,
        package_id: int = 0,
    ):
        self.spec = spec or CpuSpec()
        self.variation = variation or VariationModel.nominal()
        self.thermal = ThermalModel(thermal_spec)
        self.package_id = package_id

        self._pstates = self.spec.pstates()
        # Achievable turbo is scaled by manufacturing variation.
        self._max_freq = self.spec.freq_max_ghz * self.variation.max_turbo_scale
        self._freq_target_ghz = self.spec.freq_base_ghz
        self._uncore_ghz = self.spec.uncore_max_ghz
        # Real packages ship with RAPL PL1 = TDP; "uncapping" a package
        # therefore means resetting the limit to TDP, never to infinity.
        self._power_cap_w: Optional[float] = self.spec.tdp_w
        self._energy_j = 0.0
        self._busy_seconds = 0.0

    # -- properties ------------------------------------------------------
    @property
    def pstates(self) -> List[PState]:
        return list(self._pstates)

    @property
    def frequency_ghz(self) -> float:
        """Current frequency target (before power capping)."""
        return self._freq_target_ghz

    @property
    def uncore_ghz(self) -> float:
        return self._uncore_ghz

    @property
    def power_cap_w(self) -> Optional[float]:
        return self._power_cap_w

    @property
    def max_frequency_ghz(self) -> float:
        """Maximum achievable frequency for this particular part."""
        return self._max_freq

    @property
    def energy_j(self) -> float:
        """Total energy consumed by phases executed on this package."""
        return self._energy_j

    @property
    def busy_seconds(self) -> float:
        return self._busy_seconds

    # -- knob setters ----------------------------------------------------
    def clamp_frequency(self, freq_ghz: float) -> float:
        """Clamp a requested frequency to the nearest supported P-state."""
        freq = float(np.clip(freq_ghz, self.spec.freq_min_ghz, self._max_freq))
        freqs = np.array([p.frequency_ghz for p in self._pstates])
        feasible = freqs[freqs <= freq + 1e-9]
        if feasible.size == 0:
            return float(freqs.min())
        return float(feasible.max())

    def set_frequency(self, freq_ghz: float) -> float:
        """Request a core frequency; returns the granted P-state frequency."""
        self._freq_target_ghz = self.clamp_frequency(freq_ghz)
        return self._freq_target_ghz

    def set_uncore_frequency(self, uncore_ghz: float) -> float:
        """Request an uncore frequency; returns the granted value."""
        self._uncore_ghz = float(
            np.clip(uncore_ghz, self.spec.uncore_min_ghz, self.spec.uncore_max_ghz)
        )
        return self._uncore_ghz

    def set_power_cap(self, watts: Optional[float]) -> Optional[float]:
        """Apply a package power cap (``None`` resets to the TDP default)."""
        if watts is None:
            self._power_cap_w = self.spec.tdp_w
            return self._power_cap_w
        cap = float(np.clip(watts, self.spec.min_power_cap_w, self.spec.tdp_w))
        self._power_cap_w = cap
        return cap

    # -- power / performance ---------------------------------------------
    def power_at(
        self,
        demand: PhaseDemand,
        freq_ghz: Optional[float] = None,
        uncore_ghz: Optional[float] = None,
        active_cores: Optional[int] = None,
    ) -> float:
        """Package + DRAM power for a demand at a hypothetical setting (W)."""
        freq = self._freq_target_ghz if freq_ghz is None else freq_ghz
        uncore = self._uncore_ghz if uncore_ghz is None else uncore_ghz
        cores = self.spec.cores if active_cores is None else min(active_cores, self.spec.cores)
        base = pm.package_power(
            demand,
            freq,
            uncore,
            cores,
            self.spec.freq_min_ghz,
            self._max_freq,
            self.spec.uncore_min_ghz,
            self.spec.uncore_max_ghz,
            self.spec.params,
            efficiency_multiplier=self.variation.power_efficiency,
            temperature_c=self.thermal.temperature_c,
        )
        # Leakage variation applies to the static share only.
        static_extra = (
            pm.static_power(self.thermal.temperature_c, self.spec.params)
            * (self.variation.leakage_scale - 1.0)
        )
        return base + static_extra

    def idle_power_w(self) -> float:
        """Power drawn when no phase is executing."""
        idle_demand = PhaseDemand(
            name="idle",
            ref_seconds=1.0,
            core_fraction=0.0,
            memory_fraction=0.0,
            comm_fraction=0.0,
            activity_factor=0.05,
            dram_intensity=0.02,
        )
        return self.power_at(idle_demand, freq_ghz=self.spec.freq_min_ghz, active_cores=0)

    def effective_frequency(
        self, demand: PhaseDemand, active_cores: Optional[int] = None
    ) -> tuple[float, bool]:
        """Frequency actually delivered for a demand, honouring the power cap.

        Returns ``(frequency_ghz, was_capped)``.  Mirrors RAPL behaviour:
        firmware walks down the P-states until the running-average power
        fits under the cap (or the minimum P-state is reached).
        """
        target = self._freq_target_ghz
        if self._power_cap_w is None:
            return target, False
        candidates = [p.frequency_ghz for p in self._pstates if p.frequency_ghz <= target + 1e-9]
        if not candidates:
            candidates = [self.spec.freq_min_ghz]
        for freq in candidates:  # high to low
            power = self.power_at(demand, freq_ghz=freq, active_cores=active_cores)
            if power <= self._power_cap_w + 1e-9:
                return freq, freq < target - 1e-9
        return candidates[-1], True

    def execute(
        self,
        demand: PhaseDemand,
        threads: Optional[int] = None,
        comm_seconds_override: Optional[float] = None,
        ref_freq_ghz: Optional[float] = None,
        ref_uncore_ghz: Optional[float] = None,
    ) -> PhaseExecution:
        """Execute a phase, accumulate energy, and return the outcome."""
        threads = self.spec.cores if threads is None else int(threads)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        threads = min(threads, self.spec.cores)

        ref_freq = self.spec.freq_base_ghz if ref_freq_ghz is None else ref_freq_ghz
        ref_uncore = self.spec.uncore_max_ghz if ref_uncore_ghz is None else ref_uncore_ghz

        freq, capped = self.effective_frequency(demand, active_cores=threads)
        duration = pm.phase_duration(
            demand,
            freq,
            self._uncore_ghz,
            threads,
            ref_freq,
            ref_uncore,
            self.spec.params,
            comm_seconds_override=comm_seconds_override,
        )
        power = self.power_at(demand, freq_ghz=freq, active_cores=threads)
        if self._power_cap_w is not None:
            power = min(power, max(self._power_cap_w, self.spec.min_power_cap_w))
        energy = power * duration
        ipc = pm.effective_ipc(demand, duration, freq, threads, ref_freq)
        flops = pm.effective_flops(demand, duration)

        self._energy_j += energy
        self._busy_seconds += duration
        temperature = self.thermal.advance(power, duration)

        return PhaseExecution(
            demand=demand,
            duration_s=duration,
            power_w=power,
            energy_j=energy,
            frequency_ghz=freq,
            uncore_ghz=self._uncore_ghz,
            threads=threads,
            ipc=ipc,
            flops=flops,
            power_capped=capped,
            temperature_c=temperature,
        )

    def __repr__(self) -> str:
        return (
            f"CpuPackage(id={self.package_id}, model={self.spec.model!r}, "
            f"freq={self._freq_target_ghz:.2f}GHz, cap={self._power_cap_w})"
        )
