"""Processor package model: P-states, uncore frequency, power, performance.

A :class:`CpuPackage` is the unit on which the PowerStack's node-level
knobs act: the node manager (or a job-level runtime through it) can pin a
core frequency (P-state), pin an uncore frequency, and apply an RAPL-style
package power cap.  Given a :class:`~repro.hardware.workload.PhaseDemand`
the package computes how long the phase takes, how much power it draws
and what the derived counters (IPC, FLOP/s) read — honouring whichever of
the knob settings is most restrictive, exactly like firmware does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import List, Optional, Tuple

import numpy as np

from repro.hardware import power_model as pm
from repro.hardware.power_model import PowerModelParams
from repro.hardware.state import IDLE_DEMAND, ClusterState
from repro.hardware.thermal import ThermalModel, ThermalSpec
from repro.hardware.variation import VariationDraw, VariationModel
from repro.hardware.workload import PhaseDemand

__all__ = ["PState", "CpuSpec", "PhaseExecution", "CpuPackage"]


@lru_cache(maxsize=None)
def _cached_pstates(spec: "CpuSpec") -> tuple["PState", ...]:
    """P-state table per SKU, shared across all packages of a cluster."""
    return tuple(spec.pstates())


@lru_cache(maxsize=None)
def _cached_pstate_freqs(spec: "CpuSpec") -> np.ndarray:
    """Frequencies of the P-state table as a read-only array."""
    freqs = np.array([p.frequency_ghz for p in _cached_pstates(spec)])
    freqs.setflags(write=False)
    return freqs


@dataclass(frozen=True)
class PState:
    """A discrete DVFS operating point."""

    index: int
    frequency_ghz: float

    def __post_init__(self) -> None:
        if self.frequency_ghz <= 0:
            raise ValueError("frequency must be positive")


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a processor package SKU."""

    model: str = "Xeon-SIM 8280"
    cores: int = 28
    freq_min_ghz: float = 1.0
    freq_base_ghz: float = 2.4
    freq_max_ghz: float = 3.6
    freq_step_ghz: float = 0.1
    uncore_min_ghz: float = 1.2
    uncore_max_ghz: float = 2.4
    tdp_w: float = 205.0
    min_power_cap_w: float = 70.0
    params: PowerModelParams = field(default_factory=PowerModelParams)

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if not 0 < self.freq_min_ghz <= self.freq_base_ghz <= self.freq_max_ghz:
            raise ValueError("require 0 < freq_min <= freq_base <= freq_max")
        if self.freq_step_ghz <= 0:
            raise ValueError("freq_step must be positive")
        if not 0 < self.uncore_min_ghz <= self.uncore_max_ghz:
            raise ValueError("require 0 < uncore_min <= uncore_max")
        if self.tdp_w <= 0 or self.min_power_cap_w <= 0:
            raise ValueError("tdp and min_power_cap must be positive")
        if self.min_power_cap_w > self.tdp_w:
            raise ValueError("min_power_cap must not exceed tdp")

    def pstates(self) -> List[PState]:
        """All discrete P-states, highest frequency first (P0, P1, ...)."""
        freqs = np.arange(self.freq_max_ghz, self.freq_min_ghz - 1e-9, -self.freq_step_ghz)
        freqs = np.round(freqs, 6)
        if freqs[-1] > self.freq_min_ghz + 1e-9:
            freqs = np.append(freqs, self.freq_min_ghz)
        return [PState(index=i, frequency_ghz=float(f)) for i, f in enumerate(freqs)]


@dataclass(frozen=True)
class PhaseExecution:
    """The outcome of running one phase on one package."""

    demand: PhaseDemand
    duration_s: float
    power_w: float
    energy_j: float
    frequency_ghz: float
    uncore_ghz: float
    threads: int
    ipc: float
    flops: float
    power_capped: bool
    temperature_c: float

    @property
    def energy_delay_product(self) -> float:
        return self.energy_j * self.duration_s

    @property
    def flops_per_watt(self) -> float:
        return self.flops / self.power_w if self.power_w > 0 else 0.0

    @property
    def ipc_per_watt(self) -> float:
        return self.ipc / self.power_w if self.power_w > 0 else 0.0


class CpuPackage:
    """Stateful processor package with DVFS, uncore and power-cap controls.

    All mutable state (frequency/uncore targets, power cap, accumulated
    energy, busy time, die temperature) lives in a
    :class:`~repro.hardware.state.ClusterState` — either the shared
    cluster-wide store (``state``/``index`` given) or a private one-row
    store for standalone packages.  The scalar accessors below are views
    into those arrays, so per-package and whole-cluster code always agree.
    """

    def __init__(
        self,
        spec: CpuSpec | None = None,
        variation: VariationDraw | None = None,
        thermal_spec: ThermalSpec | None = None,
        package_id: int = 0,
        state: Optional[ClusterState] = None,
        index: Optional[Tuple[int, int]] = None,
    ):
        self.spec = spec or CpuSpec()
        self.variation = variation or VariationModel.nominal()
        self.package_id = package_id
        if state is None:
            state = ClusterState(1, 1)
            index = (0, 0)
        if index is None:
            raise ValueError("state and index must be given together")
        self._state = state
        self._index = index
        self.thermal = ThermalModel(
            thermal_spec,
            temps=state.pkg_temperature_c,
            offsets=state.pkg_ambient_offset_c,
            index=index,
            version_owner=state,
        )

        self._pstates = _cached_pstates(self.spec)
        # Bind this package's cells: achievable turbo is scaled by
        # manufacturing variation, knobs start at their firmware defaults.
        state.pkg_max_freq_ghz[index] = self.spec.freq_max_ghz * self.variation.max_turbo_scale
        state.pkg_freq_target_ghz[index] = self.spec.freq_base_ghz
        state.pkg_uncore_ghz[index] = self.spec.uncore_max_ghz
        state.power_inputs_version += 1
        # Real packages ship with RAPL PL1 = TDP; "uncapping" a package
        # therefore means resetting the limit to TDP, never to infinity.
        state.pkg_power_cap_w[index] = self.spec.tdp_w
        state.pkg_power_efficiency[index] = self.variation.power_efficiency
        state.pkg_leakage_scale[index] = self.variation.leakage_scale
        state.invalidate_efficiency_cache()
        state.pkg_energy_j[index] = 0.0
        state.pkg_busy_seconds[index] = 0.0

    # -- properties ------------------------------------------------------
    @property
    def pstates(self) -> List[PState]:
        return list(self._pstates)

    @property
    def frequency_ghz(self) -> float:
        """Current frequency target (before power capping)."""
        return float(self._state.pkg_freq_target_ghz[self._index])

    @property
    def uncore_ghz(self) -> float:
        return float(self._state.pkg_uncore_ghz[self._index])

    @property
    def power_cap_w(self) -> Optional[float]:
        return float(self._state.pkg_power_cap_w[self._index])

    @property
    def max_frequency_ghz(self) -> float:
        """Maximum achievable frequency for this particular part."""
        return float(self._state.pkg_max_freq_ghz[self._index])

    @property
    def energy_j(self) -> float:
        """Total energy consumed by phases executed on this package."""
        return float(self._state.pkg_energy_j[self._index])

    @property
    def busy_seconds(self) -> float:
        return float(self._state.pkg_busy_seconds[self._index])

    # -- knob setters ----------------------------------------------------
    def clamp_frequency(self, freq_ghz: float) -> float:
        """Clamp a requested frequency to the nearest supported P-state."""
        freq = float(np.clip(freq_ghz, self.spec.freq_min_ghz, self.max_frequency_ghz))
        freqs = _cached_pstate_freqs(self.spec)
        feasible = freqs[freqs <= freq + 1e-9]
        if feasible.size == 0:
            return float(freqs.min())
        return float(feasible.max())

    def set_frequency(self, freq_ghz: float) -> float:
        """Request a core frequency; returns the granted P-state frequency."""
        granted = self.clamp_frequency(freq_ghz)
        self._state.pkg_freq_target_ghz[self._index] = granted
        return granted

    def set_uncore_frequency(self, uncore_ghz: float) -> float:
        """Request an uncore frequency; returns the granted value."""
        granted = float(
            np.clip(uncore_ghz, self.spec.uncore_min_ghz, self.spec.uncore_max_ghz)
        )
        self._state.pkg_uncore_ghz[self._index] = granted
        self._state.power_inputs_version += 1
        return granted

    def set_power_cap(self, watts: Optional[float]) -> Optional[float]:
        """Apply a package power cap (``None`` resets to the TDP default)."""
        if watts is None:
            self._state.pkg_power_cap_w[self._index] = self.spec.tdp_w
            return self.spec.tdp_w
        cap = float(np.clip(watts, self.spec.min_power_cap_w, self.spec.tdp_w))
        self._state.pkg_power_cap_w[self._index] = cap
        return cap

    # -- power / performance ---------------------------------------------
    def power_at(
        self,
        demand: PhaseDemand,
        freq_ghz: Optional[float] = None,
        uncore_ghz: Optional[float] = None,
        active_cores: Optional[int] = None,
    ) -> float:
        """Package + DRAM power for a demand at a hypothetical setting (W)."""
        freq = self.frequency_ghz if freq_ghz is None else freq_ghz
        uncore = self.uncore_ghz if uncore_ghz is None else uncore_ghz
        cores = self.spec.cores if active_cores is None else min(active_cores, self.spec.cores)
        base = pm.package_power(
            demand,
            freq,
            uncore,
            cores,
            self.spec.freq_min_ghz,
            self.max_frequency_ghz,
            self.spec.uncore_min_ghz,
            self.spec.uncore_max_ghz,
            self.spec.params,
            efficiency_multiplier=self.variation.power_efficiency,
            temperature_c=self.thermal.temperature_c,
        )
        # Leakage variation applies to the static share only.
        static_extra = (
            pm.static_power(self.thermal.temperature_c, self.spec.params)
            * (self.variation.leakage_scale - 1.0)
        )
        return base + static_extra

    def idle_power_w(self) -> float:
        """Power drawn when no phase is executing.

        Uses the shared :data:`~repro.hardware.state.IDLE_DEMAND` so the
        scalar path and the vectorised kernel can never disagree on what
        "idle" means.
        """
        return self.power_at(IDLE_DEMAND, freq_ghz=self.spec.freq_min_ghz, active_cores=0)

    def effective_frequency(
        self, demand: PhaseDemand, active_cores: Optional[int] = None
    ) -> tuple[float, bool]:
        """Frequency actually delivered for a demand, honouring the power cap.

        Returns ``(frequency_ghz, was_capped)``.  Mirrors RAPL behaviour:
        firmware walks down the P-states until the running-average power
        fits under the cap (or the minimum P-state is reached).
        """
        target = self.frequency_ghz
        cap = self.power_cap_w
        if cap is None:
            return target, False
        candidates = [p.frequency_ghz for p in self._pstates if p.frequency_ghz <= target + 1e-9]
        if not candidates:
            candidates = [self.spec.freq_min_ghz]
        for freq in candidates:  # high to low
            power = self.power_at(demand, freq_ghz=freq, active_cores=active_cores)
            if power <= cap + 1e-9:
                return freq, freq < target - 1e-9
        return candidates[-1], True

    def execute(
        self,
        demand: PhaseDemand,
        threads: Optional[int] = None,
        comm_seconds_override: Optional[float] = None,
        ref_freq_ghz: Optional[float] = None,
        ref_uncore_ghz: Optional[float] = None,
    ) -> PhaseExecution:
        """Execute a phase, accumulate energy, and return the outcome."""
        threads = self.spec.cores if threads is None else int(threads)
        if threads < 1:
            raise ValueError("threads must be >= 1")
        threads = min(threads, self.spec.cores)

        ref_freq = self.spec.freq_base_ghz if ref_freq_ghz is None else ref_freq_ghz
        ref_uncore = self.spec.uncore_max_ghz if ref_uncore_ghz is None else ref_uncore_ghz

        uncore = self.uncore_ghz
        freq, capped = self.effective_frequency(demand, active_cores=threads)
        duration = pm.phase_duration(
            demand,
            freq,
            uncore,
            threads,
            ref_freq,
            ref_uncore,
            self.spec.params,
            comm_seconds_override=comm_seconds_override,
        )
        power = self.power_at(demand, freq_ghz=freq, active_cores=threads)
        cap = self.power_cap_w
        if cap is not None:
            power = min(power, max(cap, self.spec.min_power_cap_w))
        energy = power * duration
        ipc = pm.effective_ipc(demand, duration, freq, threads, ref_freq)
        flops = pm.effective_flops(demand, duration)

        self._state.pkg_energy_j[self._index] += energy
        self._state.pkg_busy_seconds[self._index] += duration
        temperature = self.thermal.advance(power, duration)

        return PhaseExecution(
            demand=demand,
            duration_s=duration,
            power_w=power,
            energy_j=energy,
            frequency_ghz=freq,
            uncore_ghz=uncore,
            threads=threads,
            ipc=ipc,
            flops=flops,
            power_capped=capped,
            temperature_c=temperature,
        )

    def __repr__(self) -> str:
        return (
            f"CpuPackage(id={self.package_id}, model={self.spec.model!r}, "
            f"freq={self.frequency_ghz:.2f}GHz, cap={self.power_cap_w})"
        )
