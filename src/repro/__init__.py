"""Reproduction of "Toward an End-to-End Auto-tuning Framework in HPC PowerStack"."""
