"""Constraints: forbidden configurations and metric (power/energy) limits.

Two different kinds of constraint appear in the paper:

* **configuration constraints** — "dependency conditions that express
  which combinations of parameters are not allowed" (READEX ATP, §3.2.4)
  and application rank constraints (LULESH's cubic processes, §3.2.5).
  These are checked *before* evaluation: a forbidden configuration is
  never run.
* **operating constraints** — "operate within the power constraints or
  energy goals assigned by the upper layer" (§2.1).  These are checked
  *after* evaluation against the measured metrics: a configuration that
  exceeds its power cap or energy goal is infeasible (but its
  measurement is still recorded).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

__all__ = ["Constraint", "ForbiddenCombination", "MetricConstraint", "ConstraintSet"]


class Constraint:
    """Base class; subclasses override one (or both) of the check methods."""

    description: str = "constraint"

    def allows_config(self, config: Mapping[str, Any]) -> bool:
        """Configuration-level check (pre-evaluation).  Default: allowed."""
        return True

    def allows_metrics(self, metrics: Mapping[str, float]) -> bool:
        """Measurement-level check (post-evaluation).  Default: allowed."""
        return True


@dataclass
class ForbiddenCombination(Constraint):
    """A predicate marking configurations that must never be evaluated."""

    predicate: Callable[[Mapping[str, Any]], bool]
    description: str = "forbidden combination"
    #: Only consulted when every one of these keys is present in the config
    #: (lets layer-specific constraints coexist in a cross-layer space).
    required_keys: Sequence[str] = ()

    def allows_config(self, config: Mapping[str, Any]) -> bool:
        if any(key not in config for key in self.required_keys):
            return True
        # The predicate returns True when the combination is FORBIDDEN.
        return not bool(self.predicate(config))


@dataclass
class MetricConstraint(Constraint):
    """An upper (or lower) bound on a measured metric."""

    metric: str
    upper: Optional[float] = None
    lower: Optional[float] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.upper is None and self.lower is None:
            raise ValueError("a MetricConstraint needs an upper and/or lower bound")
        if not self.description:
            parts = []
            if self.upper is not None:
                parts.append(f"{self.metric} <= {self.upper:g}")
            if self.lower is not None:
                parts.append(f"{self.metric} >= {self.lower:g}")
            self.description = " and ".join(parts)

    def allows_metrics(self, metrics: Mapping[str, float]) -> bool:
        if self.metric not in metrics:
            return True
        value = metrics[self.metric]
        if self.upper is not None and value > self.upper * (1 + 1e-9):
            return False
        if self.lower is not None and value < self.lower * (1 - 1e-9):
            return False
        return True

    @classmethod
    def power_cap(cls, watts: float) -> "MetricConstraint":
        """Convenience: measured average power must stay under ``watts``."""
        return cls(metric="power_w", upper=watts, description=f"power_w <= {watts:g} W")

    @classmethod
    def energy_goal(cls, joules: float) -> "MetricConstraint":
        return cls(metric="energy_j", upper=joules, description=f"energy_j <= {joules:g} J")

    @classmethod
    def runtime_limit(cls, seconds: float) -> "MetricConstraint":
        return cls(metric="runtime_s", upper=seconds, description=f"runtime_s <= {seconds:g} s")


@dataclass
class ConstraintSet:
    """A collection of constraints checked together."""

    constraints: List[Constraint] = field(default_factory=list)

    def add(self, constraint: Constraint) -> "ConstraintSet":
        self.constraints.append(constraint)
        return self

    def __len__(self) -> int:
        return len(self.constraints)

    def __iter__(self):
        return iter(self.constraints)

    def allows_config(self, config: Mapping[str, Any]) -> bool:
        return all(c.allows_config(config) for c in self.constraints)

    def allows_metrics(self, metrics: Mapping[str, float]) -> bool:
        return all(c.allows_metrics(metrics) for c in self.constraints)

    def violated_by_metrics(self, metrics: Mapping[str, float]) -> List[Constraint]:
        return [c for c in self.constraints if not c.allows_metrics(metrics)]

    def describe(self) -> Dict[str, str]:
        return {f"c{i}": c.description for i, c in enumerate(self.constraints)}
