"""Co-tuning: joint optimisation of parameters from two or more layers.

The paper defines co-tuning as "the process of improving the target
metrics of two or more layers of the PowerStack by incorporating
cross-layer characteristics in the orchestration process" (§3).  The
:class:`CoTuner` builds one joint space out of per-layer spaces (names
are prefixed with the layer, so ``application.solver`` and
``runtime.agent`` coexist), runs a single search over it, and reports
the best configuration *per layer* so each layer's actor can apply its
slice.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.constraints import ConstraintSet
from repro.core.objectives import Objective, WeightedObjective
from repro.core.space import ParameterSpace
from repro.core.tuner import Autotuner, BatchAutotuner, TuningResult
from repro.telemetry.database import PerformanceDatabase

__all__ = ["CoTuningResult", "CoTuner"]

#: A co-tuning evaluator receives ``{layer: {param: value}}``.
LayeredEvaluator = Callable[[Dict[str, Dict[str, Any]]], Mapping[str, float]]


class _FlatEvaluator:
    """Splits a flat prefixed configuration and calls the layered evaluator.

    A standalone callable (rather than a bound ``CoTuner`` method) so
    that ``executor="process"`` only has to pickle the layer names, the
    separator and the user's evaluator — not the tuner object graph,
    which by run time contains the search state and the process pool
    itself and can never be shipped to a worker under the ``spawn``
    start method.
    """

    def __init__(self, layers: List[str], separator: str, evaluator: LayeredEvaluator):
        self.layers = list(layers)
        self.separator = separator
        self.evaluator = evaluator

    def split(self, flat_config: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        nested: Dict[str, Dict[str, Any]] = {layer: {} for layer in self.layers}
        for key, value in flat_config.items():
            layer, _, param = key.partition(self.separator)
            if layer not in nested:
                raise KeyError(f"configuration key {key!r} does not match any layer")
            nested[layer][param] = value
        return nested

    def __call__(self, flat_config: Dict[str, Any]) -> Mapping[str, float]:
        return self.evaluator(self.split(flat_config))


@dataclass
class CoTuningResult:
    """Result of a co-tuning run, sliced by layer."""

    tuning: TuningResult
    best_by_layer: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    layers: List[str] = field(default_factory=list)

    @property
    def best_objective(self) -> float:
        return self.tuning.best_objective

    @property
    def best_metrics(self) -> Dict[str, float]:
        return self.tuning.best_metrics

    @property
    def database(self) -> PerformanceDatabase:
        return self.tuning.database

    def summary(self) -> Dict[str, Any]:
        data = self.tuning.summary()
        data["best_by_layer"] = self.best_by_layer
        data["layers"] = self.layers
        return data


class CoTuner:
    """Joint tuner over a dictionary of per-layer parameter spaces.

    ``batch_size``, ``executor`` and ``cache_evaluations`` select the
    batched engine (:class:`~repro.core.tuner.BatchAutotuner`): whole
    generations are asked/told at once, evaluations run through the chosen
    executor, and repeated cross-layer configurations are served from the
    memoization cache.  The defaults keep the sequential loop.

    Executor selection (``executor=``):

    * ``"serial"`` — evaluate in the calling thread (the default; right
      for cheap evaluators and for exactly reproducing sequential runs).
    * ``"thread"`` — a thread pool; helps evaluators that release the
      GIL or wait on subprocesses / I/O (real build-and-run ploppers).
    * ``"process"`` — a process pool for CPU-bound pure-Python
      evaluators; requires the evaluator to be picklable (module-level
      function).  ``max_workers`` bounds the pool size for both pools.
    """

    SEPARATOR = "."

    def __init__(
        self,
        layer_spaces: Mapping[str, ParameterSpace],
        evaluator: LayeredEvaluator,
        objective: Union[str, Objective, WeightedObjective] = "runtime",
        constraints: Optional[ConstraintSet] = None,
        search: str = "forest",
        max_evals: int = 100,
        seed: int = 0,
        name: str = "cotuner",
        batch_size: int = 1,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        cache_evaluations: bool = False,
    ):
        if not layer_spaces:
            raise ValueError("co-tuning needs at least one layer space")
        self.layer_spaces = dict(layer_spaces)
        self.layers = list(layer_spaces)
        self.evaluator = evaluator
        self.joint_space = self._build_joint_space()
        self._flat_evaluator = _FlatEvaluator(self.layers, self.SEPARATOR, evaluator)
        common = dict(
            space=self.joint_space,
            evaluator=self._flat_evaluator,
            objective=objective,
            constraints=constraints,
            search=search,
            max_evals=max_evals,
            seed=seed,
            name=name,
        )
        if batch_size > 1 or executor != "serial" or cache_evaluations:
            self._autotuner: Autotuner = BatchAutotuner(
                batch_size=batch_size,
                executor=executor,
                max_workers=max_workers,
                cache_evaluations=cache_evaluations,
                **common,
            )
        else:
            self._autotuner = Autotuner(**common)

    # -- space composition -------------------------------------------------------------
    def _build_joint_space(self) -> ParameterSpace:
        joint = ParameterSpace(name="+".join(self.layers))
        for layer, space in self.layer_spaces.items():
            for param in space.parameters():
                renamed = copy.copy(param)
                renamed.name = f"{layer}{self.SEPARATOR}{param.name}"
                renamed.layer = layer
                joint.add(renamed)
            for constraint in space.constraints:
                joint.add_constraint(_PrefixedConstraint(layer, self.SEPARATOR, constraint))
        return joint

    def split(self, flat_config: Mapping[str, Any]) -> Dict[str, Dict[str, Any]]:
        """Split a flat prefixed configuration into per-layer dictionaries."""
        return self._flat_evaluator.split(flat_config)

    def flatten(self, nested: Mapping[str, Mapping[str, Any]]) -> Dict[str, Any]:
        flat: Dict[str, Any] = {}
        for layer, params in nested.items():
            for key, value in params.items():
                flat[f"{layer}{self.SEPARATOR}{key}"] = value
        return flat

    # -- run ----------------------------------------------------------------------------
    @property
    def database(self) -> PerformanceDatabase:
        return self._autotuner.database

    def close(self) -> None:
        """Release executor resources (thread pools); no-op when sequential."""
        close = getattr(self._autotuner, "close", None)
        if close is not None:
            close()

    def run(self, callback=None) -> CoTuningResult:
        result = self._autotuner.run(callback=callback)
        best_by_layer: Dict[str, Dict[str, Any]] = {}
        if result.best_config is not None:
            best_by_layer = self.split(result.best_config)
        return CoTuningResult(tuning=result, best_by_layer=best_by_layer, layers=self.layers)


class _PrefixedConstraint:
    """Adapts a layer-local constraint to the prefixed joint namespace."""

    def __init__(self, layer: str, separator: str, inner) -> None:
        self.layer = layer
        self.separator = separator
        self.inner = inner
        self.description = f"[{layer}] {getattr(inner, 'description', 'constraint')}"

    def _strip(self, config: Mapping[str, Any]) -> Dict[str, Any]:
        prefix = f"{self.layer}{self.separator}"
        return {k[len(prefix):]: v for k, v in config.items() if k.startswith(prefix)}

    def allows_config(self, config: Mapping[str, Any]) -> bool:
        return self.inner.allows_config(self._strip(config))

    def allows_metrics(self, metrics: Mapping[str, float]) -> bool:
        return self.inner.allows_metrics(metrics)
