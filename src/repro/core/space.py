"""Cross-layer parameter spaces.

A :class:`ParameterSpace` is an ordered collection of typed parameters
(:mod:`repro.core.parameters`), each tagged with the PowerStack layer it
belongs to, plus the configuration-level constraints that make some
combinations illegal.  It provides the encode/decode machinery the
numeric search algorithms need and the sampling/grid machinery the
simple ones need, and it can be sliced by layer or merged with another
space — which is exactly the operation co-tuning performs ("a
combination of different parameters at the distinct layers", §3.2.3).

The batch APIs (:meth:`ParameterSpace.encode_many`,
:meth:`ParameterSpace.decode_many`, :meth:`ParameterSpace.sample_many`)
are vectorized column-wise over the parameters, and the name/parameter
lists consulted on every encode/validate call are cached (invalidated by
:meth:`ParameterSpace.add`) so the tuning hot loop does not rebuild them
per configuration.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.constraints import Constraint, ConstraintSet
from repro.core.parameters import (
    BooleanParameter,
    CategoricalParameter,
    OrdinalParameter,
    Parameter,
)

__all__ = ["ParameterSpace"]


class ParameterSpace:
    """An ordered, constrained collection of tunable parameters."""

    def __init__(
        self,
        parameters: Optional[Iterable[Parameter]] = None,
        constraints: Optional[ConstraintSet] = None,
        name: str = "space",
    ):
        self.name = name
        self._parameters: Dict[str, Parameter] = {}
        self.constraints = constraints or ConstraintSet()
        # Caches of the (ordered) name and parameter tuples; rebuilt lazily
        # after add() invalidates them.  encode/validate consult these on
        # every configuration, so rebuilding per call dominates small-space
        # tuning loops.  Tuples, so callers cannot mutate the shared cache.
        self._names_cache: Optional[Tuple[str, ...]] = None
        self._params_cache: Optional[Tuple[Parameter, ...]] = None
        for param in parameters or []:
            self.add(param)

    # -- construction --------------------------------------------------------------
    def add(self, parameter: Parameter) -> "ParameterSpace":
        if parameter.name in self._parameters:
            raise ValueError(f"duplicate parameter {parameter.name!r}")
        self._parameters[parameter.name] = parameter
        self._names_cache = None
        self._params_cache = None
        return self

    def add_constraint(self, constraint: Constraint) -> "ParameterSpace":
        self.constraints.add(constraint)
        return self

    @classmethod
    def from_dict(
        cls,
        values: Mapping[str, Sequence[Any]],
        layer: str = "application",
        name: str = "space",
        ordinal: bool = True,
    ) -> "ParameterSpace":
        """Build a space from ``{name: allowed_values}`` (application style).

        Numeric value lists become ordinal parameters (they have a natural
        order the search can exploit); everything else becomes categorical.
        """
        space = cls(name=name)
        for key, allowed in values.items():
            allowed = list(allowed)
            if allowed and all(isinstance(v, (bool, np.bool_)) for v in allowed) and set(allowed) == {False, True}:
                space.add(BooleanParameter(key, layer=layer))
            elif ordinal and allowed and all(
                isinstance(v, (int, float, np.integer, np.floating)) and not isinstance(v, bool)
                for v in allowed
            ):
                space.add(OrdinalParameter(key, sorted(allowed), layer=layer))
            else:
                space.add(CategoricalParameter(key, allowed, layer=layer))
        return space

    def merge(self, other: "ParameterSpace", name: Optional[str] = None) -> "ParameterSpace":
        """Union of two spaces (parameters and constraints)."""
        merged = ParameterSpace(name=name or f"{self.name}+{other.name}")
        for param in self.parameters():
            merged.add(param)
        for param in other.parameters():
            merged.add(param)
        for constraint in self.constraints:
            merged.add_constraint(constraint)
        for constraint in other.constraints:
            merged.add_constraint(constraint)
        return merged

    def subspace(self, layer: str) -> "ParameterSpace":
        """The slice of the space belonging to one PowerStack layer."""
        sub = ParameterSpace(name=f"{self.name}[{layer}]")
        for param in self.parameters():
            if param.layer == layer:
                sub.add(param)
        for constraint in self.constraints:
            sub.add_constraint(constraint)
        return sub

    # -- introspection -----------------------------------------------------------------
    def parameters(self) -> Tuple[Parameter, ...]:
        """The parameters in insertion order (cached, immutable)."""
        if self._params_cache is None:
            self._params_cache = tuple(self._parameters.values())
        return self._params_cache

    def names(self) -> Tuple[str, ...]:
        """The parameter names in insertion order (cached, immutable)."""
        if self._names_cache is None:
            self._names_cache = tuple(self._parameters.keys())
        return self._names_cache

    def layers(self) -> List[str]:
        seen: List[str] = []
        for param in self.parameters():
            if param.layer not in seen:
                seen.append(param.layer)
        return seen

    def __len__(self) -> int:
        return len(self._parameters)

    def __contains__(self, name: str) -> bool:
        return name in self._parameters

    def __getitem__(self, name: str) -> Parameter:
        return self._parameters[name]

    def cardinality(self) -> float:
        """Number of grid points (inf-like large for continuous parameters).

        Uses each parameter's :meth:`~repro.core.parameters.Parameter.grid_size`
        so no grid list is materialized.
        """
        total = 1.0
        for param in self.parameters():
            total *= max(1, param.grid_size(resolution=10))
        return total

    # -- configurations ---------------------------------------------------------------------
    def validate(self, config: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate (and canonicalise) a full configuration."""
        unknown = set(config) - set(self._parameters)
        if unknown:
            raise KeyError(f"unknown parameters: {sorted(unknown)}")
        missing = set(self._parameters) - set(config)
        if missing:
            raise KeyError(f"missing parameters: {sorted(missing)}")
        validated = {name: self._parameters[name].validate(config[name]) for name in self.names()}
        return validated

    def is_allowed(self, config: Mapping[str, Any]) -> bool:
        """Whether a configuration passes the dependency constraints."""
        return self.constraints.allows_config(config)

    def sample(self, rng: np.random.Generator, max_tries: int = 200) -> Dict[str, Any]:
        """Draw a random *allowed* configuration."""
        for _ in range(max_tries):
            config = {name: param.sample(rng) for name, param in self._parameters.items()}
            if self.is_allowed(config):
                return config
        raise RuntimeError(
            f"could not sample an allowed configuration from {self.name!r} "
            f"after {max_tries} tries — constraints may be unsatisfiable"
        )

    def sample_many(
        self, rng: np.random.Generator, count: int, max_rounds: int = 200
    ) -> List[Dict[str, Any]]:
        """Draw ``count`` random *allowed* configurations, vectorized.

        Each round draws a whole batch column-wise (one vectorized
        ``sample_array`` call per parameter) and filters out configurations
        rejected by the constraints; rejected slots are redrawn the next
        round.  This consumes the RNG differently from ``count`` scalar
        :meth:`sample` calls, so batch and sequential paths are separate
        deterministic streams.
        """
        if count <= 0:
            return []
        out: List[Dict[str, Any]] = []
        needed = count
        has_constraints = len(self.constraints) > 0
        for _ in range(max_rounds):
            columns = {
                name: param.sample_array(rng, needed)
                for name, param in self._parameters.items()
            }
            names = self.names()
            for i in range(needed):
                config = {name: columns[name][i] for name in names}
                if not has_constraints or self.is_allowed(config):
                    out.append(config)
            needed = count - len(out)
            if needed == 0:
                return out
        raise RuntimeError(
            f"could not sample {count} allowed configurations from {self.name!r} "
            f"after {max_rounds} rounds — constraints may be unsatisfiable"
        )

    def grid_configurations(self, resolution: int = 10) -> Iterator[Dict[str, Any]]:
        """Iterate the (constrained) cartesian grid of representative values."""
        names = self.names()
        grids = [self._parameters[name].grid(resolution) for name in names]
        for combo in itertools.product(*grids):
            config = dict(zip(names, combo))
            if self.is_allowed(config):
                yield config

    def neighbors(self, config: Mapping[str, Any], rng: np.random.Generator) -> List[Dict[str, Any]]:
        """Configurations differing from ``config`` in exactly one parameter."""
        out: List[Dict[str, Any]] = []
        for name, param in self._parameters.items():
            for value in param.neighbors(config[name], rng):
                candidate = dict(config)
                candidate[name] = value
                if self.is_allowed(candidate):
                    out.append(candidate)
        return out

    # -- numeric encoding -----------------------------------------------------------------------
    def encode(self, config: Mapping[str, Any]) -> np.ndarray:
        """Encode a configuration as a vector in the unit hypercube."""
        validated = self.validate(config)
        return np.array(
            [self._parameters[name].to_unit(validated[name]) for name in self.names()],
            dtype=float,
        )

    def decode(self, vector: Sequence[float]) -> Dict[str, Any]:
        """Decode a unit-hypercube vector into the nearest configuration."""
        vector = np.asarray(vector, dtype=float)
        if vector.shape != (len(self),):
            raise ValueError(f"expected a vector of length {len(self)}, got {vector.shape}")
        return {
            name: self._parameters[name].from_unit(float(u))
            for name, u in zip(self.names(), vector)
        }

    def encode_many(self, configs: Sequence[Mapping[str, Any]]) -> np.ndarray:
        """Encode a batch of configurations as an ``(n, dims)`` unit matrix.

        Vectorized column-wise: one ``to_unit_array`` call per parameter
        instead of one ``encode`` call per configuration.
        """
        if not configs:
            return np.empty((0, len(self)))
        names = self.names()
        out = np.empty((len(configs), len(names)), dtype=float)
        for j, name in enumerate(names):
            param = self._parameters[name]
            out[:, j] = param.to_unit_array([c[name] for c in configs])
        return out

    def decode_many(self, matrix: Sequence[Sequence[float]]) -> List[Dict[str, Any]]:
        """Decode an ``(n, dims)`` unit matrix into configurations (vectorized)."""
        matrix = np.atleast_2d(np.asarray(matrix, dtype=float))
        if matrix.size == 0:
            return []
        if matrix.shape[1] != len(self):
            raise ValueError(
                f"expected an (n, {len(self)}) matrix, got {matrix.shape}"
            )
        names = self.names()
        columns = {
            name: self._parameters[name].from_unit_array(matrix[:, j])
            for j, name in enumerate(names)
        }
        return [
            {name: columns[name][i] for name in names} for i in range(matrix.shape[0])
        ]

    def describe(self) -> Dict[str, Dict[str, Any]]:
        """Summary used by Table 1 reporting: parameter -> layer and values."""
        out: Dict[str, Dict[str, Any]] = {}
        for param in self.parameters():
            out[param.name] = {
                "layer": param.layer,
                "type": type(param).__name__,
                "values": param.grid(resolution=6),
            }
        return out

    def __repr__(self) -> str:
        return f"ParameterSpace(name={self.name!r}, parameters={list(self.names())})"
