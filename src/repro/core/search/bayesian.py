"""Gaussian-process Bayesian optimisation (expected improvement).

A standard BO loop built only on numpy/scipy: an RBF-kernel GP fit on
the unit-encoded configurations observed so far, expected improvement as
the acquisition function, and acquisition maximisation by scoring a
large random candidate set (plus neighbours of the incumbent).  Used by
the end-to-end tuner for expensive cross-layer evaluations and compared
against the random-forest surrogate in the ablation benchmark.
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

import numpy as np
from scipy.linalg import cho_factor, cho_solve
from scipy.stats import norm

from repro.core.search.base import SurrogateSearch, register_search
from repro.core.space import ParameterSpace

__all__ = ["GaussianProcessSearch"]


class _GaussianProcess:
    """Minimal RBF-kernel GP regressor with a fixed nugget."""

    def __init__(self, length_scale: float = 0.25, noise: float = 1e-4, signal: float = 1.0):
        if length_scale <= 0 or noise <= 0 or signal <= 0:
            raise ValueError("GP hyperparameters must be positive")
        self.length_scale = length_scale
        self.noise = noise
        self.signal = signal
        self._x: Optional[np.ndarray] = None
        self._alpha: Optional[np.ndarray] = None
        self._chol = None
        self._y_mean = 0.0
        self._y_std = 1.0

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T
        sq = np.maximum(sq, 0.0)
        return self.signal * np.exp(-0.5 * sq / self.length_scale**2)

    def fit(self, x: np.ndarray, y: np.ndarray) -> None:
        if len(x) == 0:
            raise ValueError("cannot fit a GP on zero observations")
        self._x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        self._y_mean = float(y.mean())
        self._y_std = float(y.std()) or 1.0
        y_norm = (y - self._y_mean) / self._y_std
        k = self._kernel(self._x, self._x) + self.noise * np.eye(len(self._x))
        self._chol = cho_factor(k, lower=True)
        self._alpha = cho_solve(self._chol, y_norm)

    def predict(self, x: np.ndarray) -> tuple:
        if self._x is None or self._alpha is None or self._chol is None:
            raise RuntimeError("the GP has not been fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        k_star = self._kernel(x, self._x)
        mean = k_star @ self._alpha
        v = cho_solve(self._chol, k_star.T)
        var = self.signal - np.sum(k_star * v.T, axis=1)
        var = np.maximum(var, 1e-12)
        return mean * self._y_std + self._y_mean, np.sqrt(var) * self._y_std


@register_search
class GaussianProcessSearch(SurrogateSearch):
    """Bayesian optimisation with an RBF GP and expected improvement."""

    name = "bayesian"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        initial_random: int = 8,
        candidates: int = 256,
        length_scale: float = 0.25,
        exploration: float = 0.01,
    ):
        super().__init__(space, seed)
        if initial_random < 1:
            raise ValueError("initial_random must be >= 1")
        if candidates < 8:
            raise ValueError("candidates must be >= 8")
        self.initial_random = int(initial_random)
        self.candidates = int(candidates)
        self.exploration = float(exploration)
        self._gp = _GaussianProcess(length_scale=length_scale)

    # -- surrogate interface ------------------------------------------------------------
    def _expected_improvement(self, mean: np.ndarray, std: np.ndarray, best: float) -> np.ndarray:
        improvement = best - mean - self.exploration
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    def _fit(self, finite: list) -> np.ndarray:
        objectives = np.array([o for _, o in finite])
        self._gp.fit(self.space.encode_many([c for c, _ in finite]), objectives)
        return objectives

    def _score(self, pool: list, objectives: np.ndarray) -> np.ndarray:
        mean, std = self._gp.predict(self.space.encode_many(pool))
        return self._expected_improvement(mean, std, float(objectives.min()))

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        super().tell(config, objective)
