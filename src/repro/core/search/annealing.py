"""Simulated annealing over the constrained configuration space."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from repro.core.search.base import SearchAlgorithm, register_search
from repro.core.space import ParameterSpace

__all__ = ["SimulatedAnnealing"]


@register_search
class SimulatedAnnealing(SearchAlgorithm):
    """Metropolis-style local search with a geometric cooling schedule."""

    name = "annealing"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        initial_temperature: float = 1.0,
        cooling: float = 0.92,
        restarts_after: int = 25,
    ):
        super().__init__(space, seed)
        if initial_temperature <= 0:
            raise ValueError("initial_temperature must be positive")
        if not 0.0 < cooling < 1.0:
            raise ValueError("cooling must be in (0, 1)")
        self.initial_temperature = float(initial_temperature)
        self.cooling = float(cooling)
        self.restarts_after = int(restarts_after)

        self._temperature = self.initial_temperature
        self._current: Optional[Dict[str, Any]] = None
        self._current_objective: Optional[float] = None
        self._proposed: Optional[Dict[str, Any]] = None
        self._stale = 0
        #: Typical objective scale learned online, used to normalise deltas.
        self._scale: Optional[float] = None

    def ask(self) -> Dict[str, Any]:
        if self._current is None:
            self._proposed = self._random_config()
        else:
            neighbors = self.space.neighbors(self._current, self.rng)
            self._proposed = (
                neighbors[int(self.rng.integers(0, len(neighbors)))]
                if neighbors
                else self._random_config()
            )
        return dict(self._proposed)

    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Propose a neighborhood batch around the current state.

        All proposals come from the *same* state (parallel tempering
        style): distinct neighbors first (a random permutation, no
        replacement — duplicates would waste whole evaluations), then
        fresh random configurations as exploratory padding.  Acceptance
        happens per-tell when the batch of objectives arrives.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if n == 1:
            return [self.ask()]
        if self._current is None:
            return self.space.sample_many(self.rng, n)
        neighbors = self.space.neighbors(self._current, self.rng)
        if not neighbors:
            return self.space.sample_many(self.rng, n)
        order = self.rng.permutation(len(neighbors))
        out = [dict(neighbors[i]) for i in order[:n]]
        if len(out) < n:
            out.extend(self.space.sample_many(self.rng, n - len(out)))
        return out

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        super().tell(config, objective)
        objective = float(objective)
        if self._scale is None and np.isfinite(objective) and objective != 0:
            self._scale = abs(objective)

        if self._current is None or self._current_objective is None:
            self._current = dict(config)
            self._current_objective = objective
            return

        delta = objective - self._current_objective
        scale = self._scale or 1.0
        accept = delta <= 0
        if not accept and self._temperature > 1e-12:
            probability = float(np.exp(-(delta / scale) / self._temperature))
            accept = self.rng.random() < probability
        if accept:
            self._current = dict(config)
            self._current_objective = objective
            self._stale = 0
        else:
            self._stale += 1

        self._temperature *= self.cooling
        if self._stale >= self.restarts_after:
            # Random restart from the best point seen so far.
            best = self.best()
            if best is not None:
                self._current, self._current_objective = dict(best[0]), best[1]
            self._temperature = self.initial_temperature
            self._stale = 0
