"""Uniform random search (the baseline every surrogate must beat)."""

from __future__ import annotations

from typing import Any, Dict, List

from repro.core.search.base import SearchAlgorithm, config_key, register_search
from repro.core.space import ParameterSpace

__all__ = ["RandomSearch"]


@register_search
class RandomSearch(SearchAlgorithm):
    """Samples allowed configurations uniformly at random, without repeats."""

    name = "random"

    def __init__(self, space: ParameterSpace, seed: int = 0, avoid_repeats: bool = True):
        super().__init__(space, seed)
        self.avoid_repeats = avoid_repeats
        self._seen: set = set()

    _key = staticmethod(config_key)

    def ask(self) -> Dict[str, Any]:
        for _ in range(50):
            config = self._random_config()
            key = self._key(config)
            if not self.avoid_repeats or key not in self._seen:
                self._seen.add(key)
                return config
        # The space is (nearly) exhausted; allow a repeat rather than fail.
        return self._random_config()

    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Draw a whole batch with one vectorized ``sample_many`` per round."""
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if n == 1:
            return [self.ask()]
        out: List[Dict[str, Any]] = []
        for _ in range(50):
            for config in self.space.sample_many(self.rng, n - len(out)):
                key = self._key(config)
                if not self.avoid_repeats or key not in self._seen:
                    self._seen.add(key)
                    out.append(config)
                    if len(out) == n:
                        break
            if len(out) == n:
                return out
        # The space is (nearly) exhausted; pad with repeats rather than fail.
        out.extend(self.space.sample_many(self.rng, n - len(out)))
        return out
