"""Uniform random search (the baseline every surrogate must beat)."""

from __future__ import annotations

from typing import Any, Dict

from repro.core.search.base import SearchAlgorithm, register_search
from repro.core.space import ParameterSpace

__all__ = ["RandomSearch"]


@register_search
class RandomSearch(SearchAlgorithm):
    """Samples allowed configurations uniformly at random, without repeats."""

    name = "random"

    def __init__(self, space: ParameterSpace, seed: int = 0, avoid_repeats: bool = True):
        super().__init__(space, seed)
        self.avoid_repeats = avoid_repeats
        self._seen: set = set()

    @staticmethod
    def _key(config: Dict[str, Any]) -> tuple:
        return tuple(sorted((k, str(v)) for k, v in config.items()))

    def ask(self) -> Dict[str, Any]:
        for _ in range(50):
            config = self._random_config()
            key = self._key(config)
            if not self.avoid_repeats or key not in self._seen:
                self._seen.add(key)
                return config
        # The space is (nearly) exhausted; allow a repeat rather than fail.
        return self._random_config()
