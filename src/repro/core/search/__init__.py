"""Search algorithms for the auto-tuning loops (all ask/tell).

The paper's framework leaves the search method open ("using random
forests as default" in ytopt, §3.2.3; "one of many supported algorithms
for the space state search" in READEX, §3.2.4).  This package provides a
family of interchangeable algorithms behind one ask/tell interface:

* :class:`~repro.core.search.random_search.RandomSearch`
* :class:`~repro.core.search.grid.GridSearch` and
  :class:`~repro.core.search.grid.LatinHypercubeSearch`
* :class:`~repro.core.search.annealing.SimulatedAnnealing`
* :class:`~repro.core.search.genetic.GeneticAlgorithm`
* :class:`~repro.core.search.bayesian.GaussianProcessSearch` (GP + EI)
* :class:`~repro.core.search.forest.RandomForestSearch` (ytopt's default
  surrogate, implemented from scratch)
"""

from repro.core.search.annealing import SimulatedAnnealing
from repro.core.search.base import SearchAlgorithm, make_search
from repro.core.search.bayesian import GaussianProcessSearch
from repro.core.search.forest import RandomForestSearch
from repro.core.search.genetic import GeneticAlgorithm
from repro.core.search.grid import GridSearch, LatinHypercubeSearch
from repro.core.search.random_search import RandomSearch

__all__ = [
    "GaussianProcessSearch",
    "GeneticAlgorithm",
    "GridSearch",
    "LatinHypercubeSearch",
    "RandomForestSearch",
    "RandomSearch",
    "SearchAlgorithm",
    "SimulatedAnnealing",
    "make_search",
]
