"""A steady-state genetic algorithm over configuration dictionaries."""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence, Tuple

from repro.core.search.base import SearchAlgorithm, register_search
from repro.core.space import ParameterSpace

__all__ = ["GeneticAlgorithm"]


@register_search
class GeneticAlgorithm(SearchAlgorithm):
    """Tournament selection, uniform crossover, per-parameter mutation."""

    name = "genetic"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        population_size: int = 16,
        mutation_rate: float = 0.2,
        tournament: int = 3,
    ):
        super().__init__(space, seed)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        if not 0.0 <= mutation_rate <= 1.0:
            raise ValueError("mutation_rate must be in [0, 1]")
        if tournament < 1:
            raise ValueError("tournament must be >= 1")
        self.population_size = int(population_size)
        self.mutation_rate = float(mutation_rate)
        self.tournament = int(tournament)
        #: Evaluated members: (config, objective); best kept at the front.
        self._population: List[Tuple[Dict[str, Any], float]] = []

    # -- GA operators -----------------------------------------------------------------
    def _select_parent(self) -> Dict[str, Any]:
        contenders = [
            self._population[int(self.rng.integers(0, len(self._population)))]
            for _ in range(min(self.tournament, len(self._population)))
        ]
        return dict(min(contenders, key=lambda item: item[1])[0])

    def _crossover(self, a: Mapping[str, Any], b: Mapping[str, Any]) -> Dict[str, Any]:
        return {
            name: (a[name] if self.rng.random() < 0.5 else b[name]) for name in self.space.names()
        }

    def _mutate(self, config: Dict[str, Any]) -> Dict[str, Any]:
        mutated = dict(config)
        for name in self.space.names():
            if self.rng.random() < self.mutation_rate:
                mutated[name] = self.space[name].sample(self.rng)
        return mutated

    # -- ask/tell ------------------------------------------------------------------------
    def ask(self) -> Dict[str, Any]:
        # Fill the initial population with random configurations first.
        if len(self.history) < self.population_size:
            return self._random_config()
        for _ in range(30):
            child = self._mutate(self._crossover(self._select_parent(), self._select_parent()))
            if self.space.is_allowed(child):
                return child
        return self._random_config()

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        super().tell(config, objective)
        self._population.append((dict(config), float(objective)))
        self._population.sort(key=lambda item: item[1])
        del self._population[self.population_size:]

    # -- batch interface: whole generations at once -----------------------------------
    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Propose a whole generation of offspring from the current population."""
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if n == 1:
            return [self.ask()]
        out: List[Dict[str, Any]] = []
        deficit = self.population_size - len(self.history)
        if deficit > 0:
            out.extend(self.space.sample_many(self.rng, min(n, deficit)))
        if not self._population:
            if len(out) < n:
                out.extend(self.space.sample_many(self.rng, n - len(out)))
            return out
        while len(out) < n:
            for _ in range(30):
                child = self._mutate(
                    self._crossover(self._select_parent(), self._select_parent())
                )
                if self.space.is_allowed(child):
                    out.append(child)
                    break
            else:
                out.append(self._random_config())
        return out

    def tell_batch(
        self, configs: Sequence[Mapping[str, Any]], objectives: Sequence[float]
    ) -> None:
        """Absorb a generation with a single sort instead of one per tell."""
        if len(configs) != len(objectives):
            raise ValueError(
                f"got {len(configs)} configs but {len(objectives)} objectives"
            )
        for config, objective in zip(configs, objectives):
            SearchAlgorithm.tell(self, config, objective)
            self._population.append((dict(config), float(objective)))
        self._population.sort(key=lambda item: item[1])
        del self._population[self.population_size:]
