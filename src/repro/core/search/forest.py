"""Random-forest surrogate search (the ytopt default, from scratch).

§3.2.3: "autotuner assigns the values in the allowed ranges (using
random forests as default)".  No ML library is available offline, so the
forest is implemented here: bagged CART regression trees over the
unit-encoded configuration vectors; the ensemble spread provides the
uncertainty estimate for an expected-improvement acquisition, exactly
like SMAC-style tuners.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

import numpy as np
from scipy.stats import norm

from repro.core.search.base import SurrogateSearch, register_search
from repro.core.space import ParameterSpace

__all__ = ["RegressionTree", "RandomForestRegressor", "RandomForestSearch"]


@dataclass
class _TreeNode:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_TreeNode"] = None
    right: Optional["_TreeNode"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None or self.right is None


class RegressionTree:
    """A CART regression tree with variance-reduction splits."""

    def __init__(self, max_depth: int = 8, min_samples_leaf: int = 2, max_features: Optional[int] = None):
        if max_depth < 1 or min_samples_leaf < 1:
            raise ValueError("max_depth and min_samples_leaf must be >= 1")
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._root: Optional[_TreeNode] = None

    def fit(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RegressionTree":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        if len(x) != len(y) or len(x) == 0:
            raise ValueError("x and y must be non-empty and the same length")
        self._root = self._build(x, y, depth=0, rng=rng)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int, rng: np.random.Generator) -> _TreeNode:
        node = _TreeNode(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < 2 * self.min_samples_leaf or np.all(y == y[0]):
            return node

        n_features = x.shape[1]
        k = self.max_features or max(1, int(np.ceil(np.sqrt(n_features))))
        features = rng.choice(n_features, size=min(k, n_features), replace=False)

        best_score = np.inf
        best = None
        for feature in features:
            values = np.unique(x[:, feature])
            if len(values) < 2:
                continue
            thresholds = (values[:-1] + values[1:]) / 2.0
            for threshold in thresholds:
                mask = x[:, feature] <= threshold
                n_left, n_right = int(mask.sum()), int((~mask).sum())
                if n_left < self.min_samples_leaf or n_right < self.min_samples_leaf:
                    continue
                score = n_left * y[mask].var() + n_right * y[~mask].var()
                if score < best_score:
                    best_score = score
                    best = (feature, threshold, mask)
        if best is None:
            return node

        feature, threshold, mask = best
        node.feature = int(feature)
        node.threshold = float(threshold)
        node.left = self._build(x[mask], y[mask], depth + 1, rng)
        node.right = self._build(x[~mask], y[~mask], depth + 1, rng)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("the tree has not been fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        return np.array([self._predict_one(row) for row in x])

    def _predict_one(self, row: np.ndarray) -> float:
        node = self._root
        while node is not None and not node.is_leaf:
            node = node.left if row[node.feature] <= node.threshold else node.right
        return node.value if node is not None else 0.0


class RandomForestRegressor:
    """Bagged regression trees with ensemble mean/std prediction."""

    def __init__(
        self,
        n_trees: int = 24,
        max_depth: int = 8,
        min_samples_leaf: int = 2,
        max_features: Optional[int] = None,
    ):
        if n_trees < 1:
            raise ValueError("n_trees must be >= 1")
        self.n_trees = n_trees
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self._trees: List[RegressionTree] = []

    def fit(self, x: np.ndarray, y: np.ndarray, rng: np.random.Generator) -> "RandomForestRegressor":
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float)
        self._trees = []
        n = len(y)
        for _ in range(self.n_trees):
            idx = rng.integers(0, n, size=n)  # bootstrap sample
            tree = RegressionTree(self.max_depth, self.min_samples_leaf, self.max_features)
            tree.fit(x[idx], y[idx], rng)
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> tuple:
        if not self._trees:
            raise RuntimeError("the forest has not been fit")
        preds = np.vstack([tree.predict(x) for tree in self._trees])
        return preds.mean(axis=0), np.maximum(preds.std(axis=0), 1e-9)


@register_search
class RandomForestSearch(SurrogateSearch):
    """SMAC-style search: random-forest surrogate + expected improvement."""

    name = "forest"

    def __init__(
        self,
        space: ParameterSpace,
        seed: int = 0,
        initial_random: int = 10,
        candidates: int = 256,
        n_trees: int = 24,
        exploration: float = 0.01,
    ):
        super().__init__(space, seed)
        if initial_random < 1:
            raise ValueError("initial_random must be >= 1")
        self.initial_random = int(initial_random)
        self.candidates = int(candidates)
        self.exploration = float(exploration)
        self.forest = RandomForestRegressor(n_trees=n_trees)

    # -- surrogate interface ------------------------------------------------------------
    def _fit(self, finite: List) -> np.ndarray:
        objectives = np.array([o for _, o in finite])
        self.forest.fit(
            self.space.encode_many([c for c, _ in finite]), objectives, self.rng
        )
        return objectives

    def _score(self, pool: List[Dict[str, Any]], objectives: np.ndarray) -> np.ndarray:
        """Expected improvement of ``pool`` under the fitted forest."""
        mean, std = self.forest.predict(self.space.encode_many(pool))
        improvement = float(objectives.min()) - mean - self.exploration
        z = improvement / std
        return improvement * norm.cdf(z) + std * norm.pdf(z)

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        super().tell(config, objective)
