"""Exhaustive grid search and Latin-hypercube sampling."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional

import numpy as np

from repro.core.search.base import SearchAlgorithm, register_search
from repro.core.space import ParameterSpace

__all__ = ["GridSearch", "LatinHypercubeSearch"]


@register_search
class GridSearch(SearchAlgorithm):
    """Walks the (constrained) cartesian grid of representative values.

    This is the "exhaustive empirical exploration" option of §4.1; it is
    only practical for small spaces, which is exactly the point the
    ablation benchmark makes.
    """

    name = "grid"

    def __init__(self, space: ParameterSpace, seed: int = 0, resolution: int = 10):
        super().__init__(space, seed)
        self.resolution = int(resolution)
        self._iterator: Iterator[Dict[str, Any]] = space.grid_configurations(self.resolution)
        self._exhausted = False
        self._pending: Optional[Dict[str, Any]] = None
        self._advance()

    def _advance(self) -> None:
        try:
            self._pending = next(self._iterator)
        except StopIteration:
            self._pending = None
            self._exhausted = True

    def is_exhausted(self) -> bool:
        return self._exhausted

    def ask(self) -> Dict[str, Any]:
        if self._pending is None:
            # Exhausted: fall back to random samples so callers asking for
            # more evaluations than grid points still get configurations.
            return self._random_config()
        config = self._pending
        self._advance()
        return config

    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Pull the next ``n`` grid points (short or empty when exhausted).

        Unlike :meth:`ask` there is no random fallback after exhaustion,
        so ``while search.ask_batch(n): ...`` terminates for every ``n``.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        out: List[Dict[str, Any]] = []
        while len(out) < n and self._pending is not None:
            out.append(self._pending)
            self._advance()
        return out


@register_search
class LatinHypercubeSearch(SearchAlgorithm):
    """Space-filling design: stratified samples across every dimension."""

    name = "lhs"

    def __init__(self, space: ParameterSpace, seed: int = 0, batch: int = 16):
        super().__init__(space, seed)
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.batch = int(batch)
        self._queue: list = []

    def _refill(self, size: Optional[int] = None) -> None:
        size = size or self.batch
        dims = len(self.space)
        if dims == 0:
            raise ValueError("cannot search an empty space")
        # One stratified permutation per dimension.
        samples = np.empty((size, dims))
        for d in range(dims):
            perm = self.rng.permutation(size)
            samples[:, d] = (perm + self.rng.random(size)) / size
        for config in self.space.decode_many(samples):
            if self.space.is_allowed(config):
                self._queue.append(config)
        if not self._queue:  # all rows violated constraints: fall back
            self._queue.append(self._random_config())

    def ask(self) -> Dict[str, Any]:
        if not self._queue:
            self._refill()
        return self._queue.pop(0)

    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Drain the stratified queue, refilling with whole LHS designs."""
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if n == 1:
            return [self.ask()]
        out: List[Dict[str, Any]] = []
        while len(out) < n:
            if not self._queue:
                self._refill(max(self.batch, n - len(out)))
            out.append(self._queue.pop(0))
        return out
