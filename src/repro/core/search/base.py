"""The ask/tell search interface and the algorithm factory.

Besides the scalar ``ask()`` / ``tell()`` protocol, every algorithm
supports a batch protocol — :meth:`SearchAlgorithm.ask_batch` proposes
``n`` configurations at once and :meth:`SearchAlgorithm.tell_batch`
reports their objectives together.  The base implementations fall back
to scalar loops (and are exact for ``n == 1``, so a batch tuner with
batch size 1 reproduces the sequential loop bit-for-bit); algorithms
with natural batch structure (population proposals in the genetic
search, single-surrogate-fit top-``n`` acquisition in the Bayesian and
forest searches, batched grid/LHS draws) override them with efficient
whole-generation versions.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.space import ParameterSpace
from repro.sim.rng import RandomStreams

__all__ = [
    "SearchAlgorithm",
    "SurrogateSearch",
    "config_key",
    "make_search",
    "SEARCH_REGISTRY",
]


def config_key(config: Mapping[str, Any]) -> tuple:
    """Canonical hashable key for a configuration dictionary.

    Order-insensitive and value-type-safe (``repr`` keeps ``1`` and
    ``"1"`` distinct).  Shared by the repeat-avoidance sets, the batch
    acquisition dedupe and the evaluation memoization cache so all of
    them agree on what "the same configuration" means.
    """
    return tuple(sorted((k, repr(v)) for k, v in config.items()))


class SearchAlgorithm(abc.ABC):
    """Base class: propose configurations (ask), learn from results (tell).

    The objective passed to :meth:`tell` is always *minimised*; the tuner
    handles direction and constraint penalties.
    """

    name = "search"

    def __init__(self, space: ParameterSpace, seed: int = 0):
        self.space = space
        self.streams = RandomStreams(seed)
        self.rng = self.streams.stream(f"search.{self.name}")
        #: Evaluated (config, objective) pairs in tell() order.
        self.history: List[Tuple[Dict[str, Any], float]] = []

    # -- interface -------------------------------------------------------------------
    @abc.abstractmethod
    def ask(self) -> Dict[str, Any]:
        """Propose the next configuration to evaluate."""

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        """Report the measured objective for a configuration."""
        self.history.append((dict(config), float(objective)))

    # -- batch interface ---------------------------------------------------------------
    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Propose up to ``n`` configurations to evaluate together.

        The default repeats :meth:`ask` without intermediate tells, so the
        proposals are what the algorithm would ask with no new information
        — exactly the parallel-evaluation semantics.  ``ask_batch(1)`` is
        always equivalent to ``[ask()]``.  May return fewer than ``n``
        configurations when the algorithm is exhausted mid-batch.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        out: List[Dict[str, Any]] = []
        for _ in range(n):
            if self.is_exhausted():
                break
            out.append(self.ask())
        return out

    def tell_batch(
        self, configs: Sequence[Mapping[str, Any]], objectives: Sequence[float]
    ) -> None:
        """Report measured objectives for a batch of configurations."""
        if len(configs) != len(objectives):
            raise ValueError(
                f"got {len(configs)} configs but {len(objectives)} objectives"
            )
        for config, objective in zip(configs, objectives):
            self.tell(config, objective)

    def is_exhausted(self) -> bool:
        """True when the algorithm has nothing new to propose (grid search)."""
        return False

    # -- helpers ----------------------------------------------------------------------
    def _select_top_distinct(
        self, pool: Sequence[Dict[str, Any]], scores: Sequence[float], n: int
    ) -> List[Dict[str, Any]]:
        """Top-``n`` distinct configurations from ``pool`` by descending score.

        Shared by the surrogate searches' ``ask_batch`` (one acquisition
        sweep, many proposals).  Pads with fresh random samples when the
        pool holds fewer than ``n`` distinct configurations; may return a
        short batch when the space itself is nearly exhausted.
        """
        out: List[Dict[str, Any]] = []
        seen: set = set()
        for i in np.argsort(-np.asarray(scores, dtype=float)):
            key = config_key(pool[i])
            if key in seen:
                continue
            seen.add(key)
            out.append(dict(pool[i]))
            if len(out) == n:
                break
        for _ in range(5):
            if len(out) == n:
                break
            for config in self.space.sample_many(self.rng, n - len(out)):
                key = config_key(config)
                if key not in seen:
                    seen.add(key)
                    out.append(config)
        return out

    def best(self) -> Optional[Tuple[Dict[str, Any], float]]:
        if not self.history:
            return None
        return min(self.history, key=lambda item: item[1])

    def observed_configs(self) -> List[Dict[str, Any]]:
        return [config for config, _ in self.history]

    def observed_objectives(self) -> np.ndarray:
        return np.array([obj for _, obj in self.history], dtype=float)

    def _random_config(self) -> Dict[str, Any]:
        return self.space.sample(self.rng)


class SurrogateSearch(SearchAlgorithm):
    """Shared skeleton for model-based searches (SMAC/BO style).

    Subclasses supply the surrogate by implementing :meth:`_fit` (train on
    the finite history, return the objective vector) and :meth:`_score`
    (acquisition value for a candidate pool).  The skeleton provides both
    loops: scalar :meth:`ask` (fit → scalar candidate pool → argmax) and
    :meth:`ask_batch` (fit once → vectorized pool → top-``n`` distinct),
    so the two paths cannot drift apart.

    The scalar pool intentionally draws one config at a time (preserving
    the historical sequential RNG stream) while the batch pool uses the
    vectorized ``sample_many``; both are constraint-filtered.
    """

    #: Objectives at or above this are treated as penalties, not data.
    PENALTY_THRESHOLD = 1e17

    #: Subclasses set these in __init__.
    initial_random: int
    candidates: int

    @abc.abstractmethod
    def _fit(self, finite: List[Tuple[Dict[str, Any], float]]) -> np.ndarray:
        """Fit the surrogate on the finite history; return the objectives."""

    @abc.abstractmethod
    def _score(self, pool: List[Dict[str, Any]], objectives: np.ndarray) -> np.ndarray:
        """Acquisition score (higher is better) for each pool candidate."""

    def _finite_history(self) -> List[Tuple[Dict[str, Any], float]]:
        return [
            (c, o)
            for c, o in self.history
            if np.isfinite(o) and o < self.PENALTY_THRESHOLD
        ]

    def _candidate_pool(self) -> List[Dict[str, Any]]:
        pool = [self._random_config() for _ in range(self.candidates)]
        best = self.best()
        if best is not None:
            pool.extend(self.space.neighbors(best[0], self.rng))
        return [c for c in pool if self.space.is_allowed(c)] or pool

    def ask(self) -> Dict[str, Any]:
        finite = self._finite_history()
        if len(finite) < self.initial_random:
            return self._random_config()
        objectives = self._fit(finite)
        pool = self._candidate_pool()
        scores = self._score(pool, objectives)
        return dict(pool[int(np.argmax(scores))])

    def ask_batch(self, n: int) -> List[Dict[str, Any]]:
        """Fit the surrogate once and return the top-``n`` distinct candidates.

        One surrogate fit + one acquisition sweep per batch instead of one
        per configuration — the dominant cost of the sequential loop.
        """
        if n < 1:
            raise ValueError("batch size must be >= 1")
        if n == 1:
            return [self.ask()]
        finite = self._finite_history()
        if len(finite) < self.initial_random:
            return self.space.sample_many(self.rng, n)
        objectives = self._fit(finite)
        pool = self.space.sample_many(self.rng, self.candidates)
        best = self.best()
        if best is not None:
            pool.extend(self.space.neighbors(best[0], self.rng))
        scores = self._score(pool, objectives)
        return self._select_top_distinct(pool, scores, n)


#: Registry of search algorithms keyed by their short name.
SEARCH_REGISTRY: Dict[str, type] = {}


def register_search(cls):
    SEARCH_REGISTRY[cls.name] = cls
    return cls


def make_search(name: str, space: ParameterSpace, seed: int = 0, **kwargs: Any) -> SearchAlgorithm:
    """Instantiate a search algorithm by name (``"random"``, ``"forest"``, ...)."""
    key = name.strip().lower()
    if key not in SEARCH_REGISTRY:
        raise ValueError(f"unknown search algorithm {name!r}; available: {sorted(SEARCH_REGISTRY)}")
    return SEARCH_REGISTRY[key](space, seed=seed, **kwargs)
