"""The ask/tell search interface and the algorithm factory."""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.space import ParameterSpace
from repro.sim.rng import RandomStreams

__all__ = ["SearchAlgorithm", "make_search", "SEARCH_REGISTRY"]


class SearchAlgorithm(abc.ABC):
    """Base class: propose configurations (ask), learn from results (tell).

    The objective passed to :meth:`tell` is always *minimised*; the tuner
    handles direction and constraint penalties.
    """

    name = "search"

    def __init__(self, space: ParameterSpace, seed: int = 0):
        self.space = space
        self.streams = RandomStreams(seed)
        self.rng = self.streams.stream(f"search.{self.name}")
        #: Evaluated (config, objective) pairs in tell() order.
        self.history: List[Tuple[Dict[str, Any], float]] = []

    # -- interface -------------------------------------------------------------------
    @abc.abstractmethod
    def ask(self) -> Dict[str, Any]:
        """Propose the next configuration to evaluate."""

    def tell(self, config: Mapping[str, Any], objective: float) -> None:
        """Report the measured objective for a configuration."""
        self.history.append((dict(config), float(objective)))

    def is_exhausted(self) -> bool:
        """True when the algorithm has nothing new to propose (grid search)."""
        return False

    # -- helpers ----------------------------------------------------------------------
    def best(self) -> Optional[Tuple[Dict[str, Any], float]]:
        if not self.history:
            return None
        return min(self.history, key=lambda item: item[1])

    def observed_configs(self) -> List[Dict[str, Any]]:
        return [config for config, _ in self.history]

    def observed_objectives(self) -> np.ndarray:
        return np.array([obj for _, obj in self.history], dtype=float)

    def _random_config(self) -> Dict[str, Any]:
        return self.space.sample(self.rng)


#: Registry of search algorithms keyed by their short name.
SEARCH_REGISTRY: Dict[str, type] = {}


def register_search(cls):
    SEARCH_REGISTRY[cls.name] = cls
    return cls


def make_search(name: str, space: ParameterSpace, seed: int = 0, **kwargs: Any) -> SearchAlgorithm:
    """Instantiate a search algorithm by name (``"random"``, ``"forest"``, ...)."""
    key = name.strip().lower()
    if key not in SEARCH_REGISTRY:
        raise ValueError(f"unknown search algorithm {name!r}; available: {sorted(SEARCH_REGISTRY)}")
    return SEARCH_REGISTRY[key](space, seed=seed, **kwargs)
