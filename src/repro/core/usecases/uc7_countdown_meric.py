"""Use case 7 (§3.2.7): running COUNTDOWN and MERIC together.

COUNTDOWN only exploits MPI communication phases; MERIC only exploits
the coarser instrumented regions (memory-bound vs compute-bound code).
The experiment runs an application with both kinds of opportunity under
(a) no runtime, (b) COUNTDOWN alone, (c) MERIC alone, and (d) both,
arbitrated by the :class:`~repro.runtime.coordination.RuntimeCoordinator`
so they never fight over the frequency knob.  The expected shape: the
coordinated pair saves at least as much energy as the better single
tool, with no conflict-induced slowdown.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.base import SyntheticApplication, make_phase
from repro.apps.mpi import MpiJobSimulator, RuntimeHooks
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.runtime.coordination import RuntimeCoordinator
from repro.runtime.countdown import CountdownMode, CountdownRuntime
from repro.runtime.meric import MericRuntime, RegionConfig
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "mixed_character_app"]


def mixed_character_app(n_iterations: int = 25) -> SyntheticApplication:
    """An app with compute-bound, memory-bound and MPI-bound regions."""
    phases = [
        make_phase("assemble", 0.7, kind="compute", ref_threads=56),
        make_phase("sparse_sweep", 0.9, kind="memory", ref_threads=56),
        make_phase("halo_exchange", 0.4, kind="mpi", comm_fraction=0.75, ref_threads=56),
        make_phase("io_checkpoint", 0.1, kind="io", ref_threads=56),
    ]
    return SyntheticApplication("mixed_character", phases, n_iterations=n_iterations)


def _meric_configs(low_freq_ghz: float = 1.4) -> Dict[str, RegionConfig]:
    """MERIC tuning table: down-clock the memory-bound and I/O regions."""
    return {
        "sparse_sweep": RegionConfig(core_freq_ghz=low_freq_ghz, uncore_freq_ghz=2.4),
        "io_checkpoint": RegionConfig(core_freq_ghz=low_freq_ghz),
    }


def _run(
    hooks: Optional[RuntimeHooks],
    label: str,
    n_nodes: int,
    seed: int,
    n_iterations: int,
    static_imbalance: float,
) -> Dict[str, float]:
    cluster = make_cluster(n_nodes, seed)
    nodes = cluster.nodes[:n_nodes]
    app = mixed_character_app(n_iterations)
    result = MpiJobSimulator.evaluate(
        nodes,
        app,
        {},
        hooks=hooks,
        streams=RandomStreams(seed),
        static_imbalance=static_imbalance,
        # Same job id across variants: identical imbalance pattern.
        job_id="uc7-mixed-character",
    )
    return {
        "runtime_s": result.runtime_s,
        "energy_j": result.energy_j,
        "power_w": result.average_power_w,
        "mpi_wait_s": result.mpi_wait_s,
    }


@register_use_case(
    "uc7",
    description="COUNTDOWN + MERIC coordinated by the runtime arbiter on one mixed app",
    objective_metric="energy_savings.coordinated",
    minimize=False,
)
def experiment(
    n_nodes: int = 4,
    seed: int = 8,
    n_iterations: int = 25,
    static_imbalance: float = 0.2,
) -> Dict[str, Any]:
    """Compare none / COUNTDOWN / MERIC / coordinated-both on one app."""
    runs: Dict[str, Dict[str, float]] = {}
    runs["none"] = _run(None, "none", n_nodes, seed, n_iterations, static_imbalance)
    runs["countdown"] = _run(
        CountdownRuntime(CountdownMode.WAIT_AND_COPY), "countdown",
        n_nodes, seed, n_iterations, static_imbalance,
    )
    runs["meric"] = _run(
        MericRuntime(region_configs=_meric_configs()), "meric",
        n_nodes, seed, n_iterations, static_imbalance,
    )
    coordinator = RuntimeCoordinator(
        [CountdownRuntime(CountdownMode.WAIT_AND_COPY), MericRuntime(region_configs=_meric_configs())]
    )
    runs["coordinated"] = _run(
        coordinator, "coordinated", n_nodes, seed, n_iterations, static_imbalance
    )

    baseline_energy = runs["none"]["energy_j"]
    baseline_runtime = runs["none"]["runtime_s"]
    savings = {
        name: 1.0 - run["energy_j"] / baseline_energy if baseline_energy > 0 else 0.0
        for name, run in runs.items()
    }
    slowdowns = {
        name: run["runtime_s"] / baseline_runtime - 1.0 if baseline_runtime > 0 else 0.0
        for name, run in runs.items()
    }
    return {
        "runs": runs,
        "energy_savings": savings,
        "slowdowns": slowdowns,
        "conflicts_prevented": coordinator.conflicts_prevented,
        "coordinated_beats_individual": savings["coordinated"]
        >= max(savings["countdown"], savings["meric"]) - 0.02,
    }


def run_use_case(
    n_nodes: int = 4,
    seed: int = 8,
    n_iterations: int = 25,
    static_imbalance: float = 0.2,
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc7`` campaign runner."""
    return run_registered(
        "uc7",
        seed=seed,
        n_nodes=n_nodes,
        n_iterations=n_iterations,
        static_imbalance=static_imbalance,
    )
