"""Use case 1 (§3.2.1): co-tuning SLURM, Conductor and Hypre.

The experiment has two parts, mirroring the paper's two target metrics:

1. **Runtime-system level (IPC/W, runtime).**  A sweep over Hypre
   solver/preconditioner configurations run under Conductor, once with
   no hardware power constraint and once under a per-node power budget.
   The key observation to reproduce: the configuration that wins
   unconstrained is *not* the winner under the power cap.

2. **Resource-manager level (jobs/hour).**  A co-tuning run where the
   cross-layer search jointly picks the Hypre parameters (application
   layer), the Conductor parameters (runtime layer) and the node count
   (RM layer) under a job power budget, compared against tuning the
   application alone with the other layers at their defaults.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.hypre import HypreLaplacian
from repro.apps.mpi import MpiJobSimulator
from repro.core.cotuner import CoTuner
from repro.core.objectives import make_objective
from repro.core.space import ParameterSpace
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import fresh_nodes, make_cluster
from repro.hardware.cluster import Cluster
from repro.runtime.conductor import ConductorRuntime
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "hypre_sweep", "cotune_hypre_conductor_rm"]


def hypre_sweep(
    cluster: Cluster,
    nodes_per_job: int = 4,
    per_node_budget_w: Optional[float] = 280.0,
    seed: int = 1,
) -> List[Dict[str, Any]]:
    """Evaluate representative Hypre configurations with and without a cap."""
    app = HypreLaplacian()
    configs = [
        {"solver": "PCG", "preconditioner": "BoomerAMG", "smoother": "hybrid-GS"},
        {"solver": "PCG", "preconditioner": "BoomerAMG", "smoother": "Chebyshev"},
        {"solver": "GMRES", "preconditioner": "BoomerAMG", "coarsening": "HMIS"},
        {"solver": "PCG", "preconditioner": "ParaSails"},
        {"solver": "BiCGSTAB", "preconditioner": "ParaSails"},
        {"solver": "BiCGSTAB", "preconditioner": "Euclid"},
        {"solver": "PCG", "preconditioner": "Jacobi"},
    ]
    rows: List[Dict[str, Any]] = []
    for index, config in enumerate(configs):
        row: Dict[str, Any] = {"config": dict(config)}
        for label, cap in (("uncapped", None), ("capped", per_node_budget_w)):
            nodes = fresh_nodes(cluster, nodes_per_job, cap_w=cap)
            runtime = ConductorRuntime(
                power_budget_w=cap * nodes_per_job if cap is not None else None
            )
            # Use the same job_id for both labels so the capped and the
            # uncapped run of one configuration see identical load-imbalance
            # noise: the only difference between the two rows is the cap.
            result = MpiJobSimulator.evaluate(
                nodes,
                app,
                config,
                hooks=runtime,
                streams=RandomStreams(seed + index),
                job_id=f"uc1-{index}",
                static_imbalance=0.1,
            )
            row[label] = {
                "runtime_s": result.runtime_s,
                "energy_j": result.energy_j,
                "power_w": result.average_power_w,
                "ipc_per_watt": result.ipc_per_watt,
            }
        rows.append(row)
    return rows


def cotune_hypre_conductor_rm(
    cluster: Cluster,
    per_node_budget_w: Optional[float] = 280.0,
    max_evals: int = 30,
    seed: int = 1,
) -> Dict[str, Any]:
    """Co-tune application + runtime + RM node count under a power budget."""
    streams = RandomStreams(seed)

    app_space = ParameterSpace.from_dict(
        {
            "solver": ["PCG", "GMRES", "BiCGSTAB"],
            "preconditioner": ["BoomerAMG", "ParaSails", "Euclid", "Jacobi"],
            "strong_threshold": [0.25, 0.5, 0.7, 0.9],
        },
        layer="application",
        name="hypre",
    )
    runtime_space = ParameterSpace.from_dict(
        {"rebalance_interval": [1, 2, 4], "step_fraction": [0.1, 0.25, 0.5]},
        layer="runtime",
        name="conductor",
    )
    rm_space = ParameterSpace.from_dict(
        {"nodes": [2, 4, 8]}, layer="system", name="rm"
    )

    evaluations = {"count": 0}

    def evaluate(nested: Dict[str, Dict[str, Any]]) -> Dict[str, float]:
        node_count = int(nested["system"]["nodes"])
        nodes = fresh_nodes(cluster, node_count, cap_w=per_node_budget_w)
        runtime = ConductorRuntime(
            power_budget_w=(
                per_node_budget_w * node_count
                if per_node_budget_w is not None
                else None
            ),
            rebalance_interval=int(nested["runtime"]["rebalance_interval"]),
            step_fraction=float(nested["runtime"]["step_fraction"]),
        )
        evaluations["count"] += 1
        result = MpiJobSimulator.evaluate(
            nodes,
            HypreLaplacian(),
            nested["application"],
            hooks=runtime,
            streams=streams.spawn(f"uc1-cotune-{evaluations['count']}"),
            job_id=f"uc1-cotune-{evaluations['count']}",
            static_imbalance=0.1,
        )
        metrics = result.metrics()
        # Job throughput at the RM level: how many such jobs fit per hour on
        # the whole cluster, given the node count this configuration uses.
        concurrent = max(1, len(cluster) // node_count)
        metrics["throughput_jobs_per_hour"] = (
            concurrent * 3600.0 / metrics["runtime_s"] if metrics["runtime_s"] > 0 else 0.0
        )
        return metrics

    cotuner = CoTuner(
        layer_spaces={"application": app_space, "runtime": runtime_space, "system": rm_space},
        evaluator=evaluate,
        objective=make_objective("throughput"),
        search="forest",
        max_evals=max_evals,
        seed=seed,
        name="uc1",
    )
    result = cotuner.run()
    return {
        "best_by_layer": result.best_by_layer,
        "best_metrics": result.best_metrics,
        "evaluations": result.tuning.evaluations,
    }


@register_use_case(
    "uc1",
    description="SLURM + Conductor + Hypre: capped-vs-uncapped sweep and cross-layer co-tuning",
    budget_param="per_node_budget_w",
    objective_metric="cotuned.best_metrics.throughput_jobs_per_hour",
    minimize=False,
)
def experiment(
    n_nodes: int = 8,
    per_node_budget_w: Optional[float] = 280.0,
    max_evals: int = 25,
    seed: int = 1,
) -> Dict[str, Any]:
    """Run the full use case; returns sweep rows, winners, and co-tuning result."""
    cluster = make_cluster(n_nodes, seed)
    sweep = hypre_sweep(cluster, nodes_per_job=min(4, n_nodes), per_node_budget_w=per_node_budget_w, seed=seed)

    def best(rows: List[Dict[str, Any]], key: str) -> Dict[str, Any]:
        return min(rows, key=lambda r: r[key]["runtime_s"])

    best_uncapped = best(sweep, "uncapped")
    best_capped = best(sweep, "capped")
    cotuned = cotune_hypre_conductor_rm(
        cluster, per_node_budget_w=per_node_budget_w, max_evals=max_evals, seed=seed
    )
    return {
        "sweep": sweep,
        "best_uncapped_config": best_uncapped["config"],
        "best_capped_config": best_capped["config"],
        "best_configs_differ": best_uncapped["config"] != best_capped["config"],
        "cotuned": cotuned,
        "per_node_budget_w": per_node_budget_w,
    }


def run_use_case(
    n_nodes: int = 8,
    per_node_budget_w: Optional[float] = 280.0,
    max_evals: int = 25,
    seed: int = 1,
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc1`` campaign runner."""
    return run_registered(
        "uc1",
        seed=seed,
        n_nodes=n_nodes,
        per_node_budget_w=per_node_budget_w,
        max_evals=max_evals,
    )
