"""The seven co-tuning use cases of §3.2, as runnable library functions.

Each module registers its experiment with the
:mod:`repro.experiments` campaign registry and exposes a thin
``run_use_case(...)`` shim over the registered runner: it builds the
relevant slice of the PowerStack, runs the experiment the paper
describes, and returns a plain dictionary of results.  The benchmark
harness (``benchmarks/bench_uc*.py``) and the integration tests call
these functions; campaigns (``python -m repro.experiments``) run
scenario×seed grids of them in parallel with columnar result capture.

| module | paper section | layers co-tuned |
|---|---|---|
| :mod:`uc1_slurm_conductor_hypre` | §3.2.1 | RM + Conductor + Hypre |
| :mod:`uc2_slurm_geopm`           | §3.2.2 | RM + GEOPM |
| :mod:`uc3_ytopt_clang`           | §3.2.3 | compiler + application + runtime |
| :mod:`uc4_readex_espreso`        | §3.2.4 | READEX/MERIC + application |
| :mod:`uc5_irm_epop`              | §3.2.5 | IRM + EPOP (power corridor) |
| :mod:`uc6_slurm_countdown`       | §3.2.6 | RM + COUNTDOWN |
| :mod:`uc7_countdown_meric`       | §3.2.7 | COUNTDOWN + MERIC |

:mod:`trace_replay` rides alongside the seven: workload-trace replay
(SWF or synthetic, the ``--workload`` campaign axis) through the
event-driven scheduler at mega scale.
"""

from repro.core.usecases.uc1_slurm_conductor_hypre import run_use_case as run_uc1
from repro.core.usecases.uc2_slurm_geopm import run_use_case as run_uc2
from repro.core.usecases.uc3_ytopt_clang import run_use_case as run_uc3
from repro.core.usecases.uc4_readex_espreso import run_use_case as run_uc4
from repro.core.usecases.uc5_irm_epop import run_use_case as run_uc5
from repro.core.usecases.uc6_slurm_countdown import run_use_case as run_uc6
from repro.core.usecases.uc7_countdown_meric import run_use_case as run_uc7
from repro.core.usecases.trace_replay import run_use_case as run_trace

__all__ = [
    "run_uc1",
    "run_uc2",
    "run_uc3",
    "run_uc4",
    "run_uc5",
    "run_uc6",
    "run_uc7",
    "run_trace",
]
