"""Use case 6 (§3.2.6): co-tuning SLURM and COUNTDOWN.

COUNTDOWN's promise is *performance-neutral* energy saving in MPI
phases.  The experiment runs two workloads — a communication-heavy
application (large MPI fraction, load imbalance) and a compute-bound
application (almost no MPI) — under each COUNTDOWN configuration level
the resource manager can select at job start (profile only, wait-only,
wait-and-copy), and reports energy saving and slowdown against the
profile-only baseline.  The expected shape: meaningful savings at
near-zero slowdown for the communication-heavy app, negligible savings
for the compute-bound one, and the aggressive mode saving the most at a
slightly higher slowdown.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.apps.base import SyntheticApplication, make_phase
from repro.apps.mpi import MpiJobSimulator
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.runtime.countdown import CountdownMode, CountdownRuntime
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "countdown_sweep"]


def _mpi_heavy_app(n_iterations: int = 25) -> SyntheticApplication:
    phases = [
        make_phase("solve", 0.8, kind="mixed", ref_threads=56),
        make_phase("halo_exchange", 0.5, kind="mpi", comm_fraction=0.75, ref_threads=56),
        make_phase("allreduce", 0.3, kind="mpi", comm_fraction=0.85, ref_threads=56),
    ]
    return SyntheticApplication("mpi_heavy", phases, n_iterations=n_iterations)


def _compute_bound_app(n_iterations: int = 25) -> SyntheticApplication:
    phases = [
        make_phase("kernel", 1.2, kind="compute", ref_threads=56),
        make_phase("reduce", 0.05, kind="mpi", comm_fraction=0.6, ref_threads=56),
    ]
    return SyntheticApplication("compute_bound", phases, n_iterations=n_iterations)


def countdown_sweep(
    app: SyntheticApplication,
    n_nodes: int = 4,
    seed: int = 7,
    static_imbalance: float = 0.25,
) -> List[Dict[str, Any]]:
    """Run one application under every COUNTDOWN mode."""
    rows: List[Dict[str, Any]] = []
    for mode in CountdownMode:
        cluster = make_cluster(n_nodes, seed)
        nodes = cluster.nodes[:n_nodes]
        runtime = CountdownRuntime(mode=mode)
        result = MpiJobSimulator.evaluate(
            nodes,
            app,
            {},
            hooks=runtime,
            streams=RandomStreams(seed),
            static_imbalance=static_imbalance,
            # Same job id for every mode so the imbalance pattern (and thus
            # the wait time COUNTDOWN can exploit) is identical.
            job_id=f"uc6-{app.name}",
        )
        report = runtime.report()
        rows.append(
            {
                "mode": mode.value,
                "runtime_s": result.runtime_s,
                "energy_j": result.energy_j,
                "power_w": result.average_power_w,
                "mpi_fraction": report["mpi_fraction"],
                "wait_time_s": report["wait_time_s"],
            }
        )
    return rows


@register_use_case(
    "uc6",
    description="SLURM + COUNTDOWN: energy saving on MPI-heavy vs compute-bound apps",
    objective_metric="summary.mpi_heavy_wait_and_copy_saving",
    minimize=False,
)
def experiment(n_nodes: int = 4, seed: int = 7, n_iterations: int = 25) -> Dict[str, Any]:
    """Compare COUNTDOWN modes on MPI-heavy vs compute-bound applications."""
    results: Dict[str, Any] = {}
    for label, app in (
        ("mpi_heavy", _mpi_heavy_app(n_iterations)),
        ("compute_bound", _compute_bound_app(n_iterations)),
    ):
        rows = countdown_sweep(app, n_nodes=n_nodes, seed=seed)
        baseline = next(r for r in rows if r["mode"] == CountdownMode.PROFILE_ONLY.value)
        for row in rows:
            row["energy_saving"] = (
                1.0 - row["energy_j"] / baseline["energy_j"] if baseline["energy_j"] > 0 else 0.0
            )
            row["slowdown"] = (
                row["runtime_s"] / baseline["runtime_s"] - 1.0
                if baseline["runtime_s"] > 0
                else 0.0
            )
        results[label] = rows

    def saving(label: str, mode: CountdownMode) -> float:
        return next(r["energy_saving"] for r in results[label] if r["mode"] == mode.value)

    results["summary"] = {
        "mpi_heavy_wait_only_saving": saving("mpi_heavy", CountdownMode.WAIT_ONLY),
        "mpi_heavy_wait_and_copy_saving": saving("mpi_heavy", CountdownMode.WAIT_AND_COPY),
        "compute_bound_wait_and_copy_saving": saving("compute_bound", CountdownMode.WAIT_AND_COPY),
        "mpi_heavy_wait_only_slowdown": next(
            r["slowdown"] for r in results["mpi_heavy"] if r["mode"] == CountdownMode.WAIT_ONLY.value
        ),
    }
    return results


def run_use_case(n_nodes: int = 4, seed: int = 7, n_iterations: int = 25) -> Dict[str, Any]:
    """Thin shim over the registered ``uc6`` campaign runner."""
    return run_registered("uc6", seed=seed, n_nodes=n_nodes, n_iterations=n_iterations)
