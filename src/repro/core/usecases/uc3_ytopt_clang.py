"""Use case 3 (§3.2.3, Figure 4): the ytopt auto-tuning flow.

Tunes the Clang loop-pragma parameters (and optionally system-level
knobs: thread count, frequency, power cap) of a tileable kernel through
the plopper, with the random-forest surrogate as the default search —
the exact loop of Figure 4: autotuner → plopper (compile + execute) →
performance database → repeat until ``--max-evals``.

The end-to-end twist from the paper: running the same search **under a
system power cap** yields a different best configuration, because the
power cap changes which part of the roofline the kernel sits on.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.kernels import TileableKernel
from repro.compiler.plopper import Plopper
from repro.core.constraints import ConstraintSet, MetricConstraint
from repro.core.space import ParameterSpace
from repro.core.tuner import Autotuner, TuningResult
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "tune_kernel"]


def tune_kernel(
    node_power_cap_w: Optional[float],
    max_evals: int = 40,
    seed: int = 4,
    search: str = "forest",
    include_system_knobs: bool = True,
    power_cap_constraint: bool = False,
) -> TuningResult:
    """One ytopt tuning run (optionally under a node power cap)."""
    cluster = make_cluster(1, seed)
    kernel = TileableKernel(n_iterations=2, base_seconds=4.0)
    plopper = Plopper(
        cluster.nodes[:1],
        kernel=kernel,
        node_power_cap_w=node_power_cap_w,
        streams=RandomStreams(seed),
    )
    space_dict: Dict[str, Any] = dict(kernel.parameter_space())
    if include_system_knobs:
        space_dict["threads"] = [14, 28, 56]
        space_dict["opt_level"] = ["-O2", "-O3", "-Ofast"]
    space = ParameterSpace.from_dict(space_dict, layer="application", name="ytopt")

    constraints = ConstraintSet()
    if power_cap_constraint and node_power_cap_w is not None:
        constraints.add(MetricConstraint.power_cap(node_power_cap_w))

    tuner = Autotuner(
        space=space,
        evaluator=plopper.evaluate,
        objective="runtime",
        constraints=constraints,
        search=search,
        max_evals=max_evals,
        seed=seed,
        name="uc3",
    )
    return tuner.run()


@register_use_case(
    "uc3",
    description="ytopt + Clang: autotune a tileable kernel uncapped vs under a power cap",
    budget_param="node_power_cap_w",
    objective_metric="capped.best_objective",
    minimize=True,
)
def experiment(
    max_evals: int = 30,
    seed: int = 4,
    node_power_cap_w: float = 240.0,
    search: str = "forest",
) -> Dict[str, Any]:
    """Tune the kernel uncapped and under a power cap; compare the winners."""
    uncapped = tune_kernel(None, max_evals=max_evals, seed=seed, search=search)
    capped = tune_kernel(node_power_cap_w, max_evals=max_evals, seed=seed, search=search)

    # Cross-evaluate: how does each winner perform in the other regime?
    cluster = make_cluster(1, seed)
    kernel = TileableKernel(n_iterations=2, base_seconds=4.0)

    def evaluate(config: Dict[str, Any], cap: Optional[float]) -> Dict[str, float]:
        plopper = Plopper(
            cluster.nodes[:1], kernel=kernel, node_power_cap_w=cap, streams=RandomStreams(seed + 7)
        )
        return dict(plopper.evaluate(config))

    cross = {}
    if uncapped.best_config is not None and capped.best_config is not None:
        cross = {
            "uncapped_winner_under_cap": evaluate(uncapped.best_config, node_power_cap_w),
            "capped_winner_uncapped": evaluate(capped.best_config, None),
        }
    return {
        "uncapped": uncapped.summary(),
        "capped": capped.summary(),
        "uncapped_convergence": uncapped.convergence,
        "capped_convergence": capped.convergence,
        "winners_differ": (
            uncapped.best_config != capped.best_config
            if uncapped.best_config and capped.best_config
            else False
        ),
        "cross_evaluation": cross,
        "node_power_cap_w": node_power_cap_w,
    }


def run_use_case(
    max_evals: int = 30,
    seed: int = 4,
    node_power_cap_w: float = 240.0,
    search: str = "forest",
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc3`` campaign runner."""
    return run_registered(
        "uc3",
        seed=seed,
        max_evals=max_evals,
        node_power_cap_w=node_power_cap_w,
        search=search,
    )
