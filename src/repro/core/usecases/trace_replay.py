"""Workload-trace replay: mega-scale scheduling studies as a use case.

The paper's cluster-level scenarios (queue dynamics, EASY backfill,
power-aware admission) are functions of the *workload*, not of any
co-tuner.  This use case replays a workload trace — a Standard Workload
Format log or a deterministic synthetic trace, named by a
:mod:`~repro.workloads.spec` string — through the power-aware scheduler
under the PR-9 event-driven engine, and reports the scheduling outcome
(waits, utilization, backfills, makespan).  Jobs run as
:class:`~repro.workloads.replay.TraceReplayApplication` one-timeout
replays, so campaigns can sweep 16k–65k-node clusters and 100k+-job
traces per run.

Campaign usage::

    python -m repro.experiments run --uc trace \\
        --workload synth:n_jobs=100000,mean_interarrival_s=0.68,mean_runtime_s=600,max_nodes_per_job=64,arrival_quantum_s=30 \\
        --param trace.n_nodes=16384
"""

from __future__ import annotations

from typing import Any, Dict

from repro.apps.mpi import RuntimeHooks
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.resource_manager.policies import SitePolicies
from repro.resource_manager.slurm import PowerAwareScheduler, SchedulerConfig
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.workloads.spec import workload_requests

__all__ = ["run_use_case"]

_DEFAULT_WORKLOAD = (
    "synth:n_jobs=2000,mean_interarrival_s=2.0,mean_runtime_s=600.0,"
    "max_nodes_per_job=8,arrival_quantum_s=30.0"
)


def _bare_runtime(job, budget, scheduler) -> RuntimeHooks:
    """Replay jobs have no interior phases for a runtime to steer."""
    return RuntimeHooks()


@register_use_case(
    "trace",
    description="workload-trace replay: SWF or synthetic traces at mega scale",
    objective_metric="stats.mean_wait_s",
    minimize=True,
)
def experiment(
    seed: int = 1,
    n_nodes: int = 1024,
    workload: str = _DEFAULT_WORKLOAD,
    driver: str = "event",
    monitor_interval_s: float = 600.0,
    backfill_depth: int = 100,
    reserve_fraction: float = 0.0,
) -> Dict[str, Any]:
    """Replay one workload trace through the event-driven scheduler."""
    requests = workload_requests(workload, seed=seed)
    env = Environment()
    cluster = make_cluster(n_nodes, seed)
    policies = SitePolicies(
        system_power_budget_w=cluster.total_tdp_w(),
        reserve_fraction=reserve_fraction,
    )
    config = SchedulerConfig(
        scheduling_interval_s=10.0,
        vectorized=True,
        driver=driver,
        monitor_interval_s=monitor_interval_s,
        backfill_depth=backfill_depth,
        runtime_factory=_bare_runtime,
    )
    scheduler = PowerAwareScheduler(env, cluster, policies, config, RandomStreams(seed))
    scheduler.submit_trace(requests)
    stats = scheduler.run_until_complete()
    return {
        "workload": workload,
        "driver": driver,
        "n_nodes": n_nodes,
        "n_jobs": len(requests),
        "sim_horizon_s": env.now,
        "stats": stats.as_dict(),
    }


def run_use_case(
    seed: int = 1,
    n_nodes: int = 1024,
    workload: str = _DEFAULT_WORKLOAD,
    driver: str = "event",
    monitor_interval_s: float = 600.0,
    backfill_depth: int = 100,
    reserve_fraction: float = 0.0,
) -> Dict[str, Any]:
    """Thin shim over the registered ``trace`` campaign runner."""
    return run_registered(
        "trace",
        seed=seed,
        n_nodes=n_nodes,
        workload=workload,
        driver=driver,
        monitor_interval_s=monitor_interval_s,
        backfill_depth=backfill_depth,
        reserve_fraction=reserve_fraction,
    )
