"""Use case 5 (§3.2.5, Figure 6): IRM + EPOP power-corridor management.

A workload of long-running, mostly malleable jobs is pushed through the
invasive resource manager under a site power corridor.  The same trace
is replayed under different corridor-enforcement strategies — none
(uncontrolled), static power capping, DVFS, and the invasive dynamic
node redistribution — and the resulting system power traces are scored
against the corridor (violation fraction, shrink/expand events), which
is the quantitative version of Figure 6.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.apps.base import SyntheticApplication, make_phase
from repro.apps.generator import JobRequest
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.resource_manager.irm import CorridorStrategy, InvasiveResourceManager
from repro.resource_manager.policies import SitePolicies
from repro.resource_manager.slurm import SchedulerConfig
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "make_malleable_workload", "run_strategy"]


def make_malleable_workload(
    n_jobs: int = 6,
    iterations: int = 60,
    seed: int = 6,
    interarrival_s: float = 90.0,
) -> List[JobRequest]:
    """Long-running malleable jobs (EPOP-style phase loops)."""
    streams = RandomStreams(seed)
    rng = streams.stream("uc5.workload")
    requests: List[JobRequest] = []
    time = 0.0
    for i in range(n_jobs):
        phases = [
            make_phase("advance", float(rng.uniform(2.0, 5.0)), kind="mixed", ref_threads=56),
            make_phase("exchange", float(rng.uniform(0.3, 0.8)), kind="mpi",
                       comm_fraction=0.6, ref_threads=56),
        ]
        app = SyntheticApplication(
            f"epop_app_{i}", phases, n_iterations=iterations, rank_multiple=1
        )
        nodes = int(rng.choice([2, 4]))
        requests.append(
            JobRequest(
                job_id=f"epop-{i:03d}",
                application=app,
                nodes_requested=nodes,
                nodes_min=1,
                nodes_max=8,
                walltime_estimate_s=3600.0,
                malleable=True,
                arrival_time_s=time,
                user=f"user{i % 3}",
            )
        )
        time += float(rng.exponential(interarrival_s))
    return requests


def run_strategy(
    strategy: CorridorStrategy,
    workload: Sequence[JobRequest],
    n_nodes: int = 16,
    corridor: Optional[tuple] = None,
    seed: int = 6,
    control_interval_s: float = 20.0,
) -> Dict[str, Any]:
    """Replay the workload under one corridor-enforcement strategy."""
    cluster = make_cluster(n_nodes, seed)
    env = Environment()
    lower, upper = corridor if corridor is not None else (None, None)
    policies = SitePolicies(
        system_power_budget_w=cluster.total_tdp_w(),
        corridor_lower_w=lower,
        corridor_upper_w=upper,
        averaging_window_s=60.0,
    )
    irm = InvasiveResourceManager(
        env,
        cluster,
        policies,
        SchedulerConfig(scheduling_interval_s=10.0, monitor_interval_s=5.0),
        RandomStreams(seed),
        strategy=strategy,
        control_interval_s=control_interval_s,
    )
    irm.submit_trace(list(workload))
    stats = irm.run_until_complete()
    report = irm.corridor_report()
    trace = irm.power_series
    return {
        "strategy": strategy.value,
        "stats": stats.as_dict(),
        "corridor_report": report,
        "power_trace": list(zip(trace.times.tolist(), trace.values.tolist())),
        "events": [
            {"time_s": e.time_s, "action": e.action, "job": e.job_id, **e.detail}
            for e in irm.events
        ],
    }


@register_use_case(
    "uc5",
    description="IRM + EPOP: corridor enforcement strategies on a malleable workload",
    objective_metric="violation_fractions.invasive",
    minimize=True,
)
def experiment(
    n_nodes: int = 16,
    n_jobs: int = 6,
    iterations: int = 50,
    seed: int = 6,
    strategies: Sequence[CorridorStrategy] = (
        CorridorStrategy.NONE,
        CorridorStrategy.POWER_CAPPING,
        CorridorStrategy.DVFS,
        CorridorStrategy.INVASIVE,
    ),
) -> Dict[str, Any]:
    """Compare corridor-enforcement strategies on the same malleable workload."""
    workload = make_malleable_workload(n_jobs=n_jobs, iterations=iterations, seed=seed)
    # Derive a corridor from the uncontrolled run so it is genuinely binding:
    # upper bound below the uncontrolled peak, lower bound above idle.
    baseline = run_strategy(CorridorStrategy.NONE, workload, n_nodes=n_nodes, seed=seed)
    peak = baseline["corridor_report"].get("max_power_w") if "max_power_w" in baseline[
        "corridor_report"
    ] else None
    peak = peak or max(p for _, p in baseline["power_trace"])
    idle = min(p for _, p in baseline["power_trace"])
    corridor = (idle + 0.35 * (peak - idle), idle + 0.8 * (peak - idle))

    results: Dict[str, Any] = {"corridor": corridor, "runs": {}}
    for strategy in strategies:
        results["runs"][strategy.value] = run_strategy(
            strategy, workload, n_nodes=n_nodes, corridor=corridor, seed=seed
        )
    fractions = {
        name: run["corridor_report"].get("violation_fraction", 1.0)
        for name, run in results["runs"].items()
    }
    results["violation_fractions"] = fractions
    if CorridorStrategy.NONE.value in fractions and CorridorStrategy.INVASIVE.value in fractions:
        results["invasive_improves_compliance"] = (
            fractions[CorridorStrategy.INVASIVE.value]
            <= fractions[CorridorStrategy.NONE.value] + 1e-9
        )
    return results


def run_use_case(
    n_nodes: int = 16,
    n_jobs: int = 6,
    iterations: int = 50,
    seed: int = 6,
    strategies: Sequence[CorridorStrategy] = (
        CorridorStrategy.NONE,
        CorridorStrategy.POWER_CAPPING,
        CorridorStrategy.DVFS,
        CorridorStrategy.INVASIVE,
    ),
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc5`` campaign runner."""
    return run_registered(
        "uc5",
        seed=seed,
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        iterations=iterations,
        strategies=strategies,
    )
