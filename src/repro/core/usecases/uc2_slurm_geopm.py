"""Use case 2 (§3.2.2): co-tuning SLURM and GEOPM.

Two experiments:

1. **Agent comparison on one imbalanced job.**  The same multi-node job
   is run under each GEOPM agent with the same job-level power budget;
   the power balancer should beat the static power governor on runtime
   (it steers power toward the critical path) and the energy-efficient
   agent should cut energy at a bounded runtime cost.

2. **Site policy filtering (the Figure 3 flow).**  A small job mix is
   run through the power-aware scheduler under each of GEOPM's three
   site-policy modes (static site-wide, job-specific from a history
   database, dynamic via the endpoint), recording the policy each job
   was launched with and the system-level outcome.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.apps.base import SyntheticApplication, make_phase
from repro.apps.generator import WorkloadGenerator
from repro.apps.mpi import MpiJobSimulator
from repro.core.stack import PowerStack, PowerStackConfig
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import make_cluster
from repro.hardware.cluster import ClusterSpec
from repro.resource_manager.policies import GeopmPolicyMode, SitePolicies
from repro.resource_manager.slurm import SchedulerConfig
from repro.runtime.geopm import GeopmPolicy, GeopmRuntime
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "agent_comparison", "policy_mode_comparison"]


def _imbalanced_app(n_iterations: int = 20) -> SyntheticApplication:
    phases = [
        make_phase("compute", 1.2, kind="compute", ref_threads=56),
        make_phase("stream_update", 0.5, kind="memory", ref_threads=56),
        make_phase("exchange", 0.15, kind="mpi", comm_fraction=0.7, ref_threads=56),
    ]
    return SyntheticApplication("imbalanced_compute", phases, n_iterations=n_iterations)


def agent_comparison(
    n_nodes: int = 4,
    per_node_budget_w: Optional[float] = 280.0,
    seed: int = 2,
    n_iterations: int = 20,
) -> List[Dict[str, Any]]:
    """Run the same job under each GEOPM agent with the same budget."""
    app = _imbalanced_app(n_iterations)
    rows: List[Dict[str, Any]] = []
    for agent in ("monitor", "power_governor", "power_balancer", "energy_efficient"):
        cluster = make_cluster(n_nodes, seed)
        nodes = cluster.nodes[:n_nodes]
        # Production default: the performance governor (max frequency).  The
        # energy-efficient agent walks down from there; the power agents cap it.
        cluster.state.set_node_frequencies(cluster.spec.node.cpu.freq_max_ghz)
        budget = (
            per_node_budget_w * n_nodes
            if agent != "monitor" and per_node_budget_w is not None
            else None
        )
        policy = GeopmPolicy(agent=agent, power_budget_w=budget, perf_degradation=0.1)
        runtime = GeopmRuntime(policy=policy)
        # A deterministic, linearly spread decomposition imbalance so every
        # agent faces the same (substantial) load-imbalance pattern.
        skew = {
            node.hostname: 1.0 + 0.35 * index / max(1, n_nodes - 1)
            for index, node in enumerate(nodes)
        }
        result = MpiJobSimulator.evaluate(
            nodes,
            app,
            {},
            hooks=runtime,
            streams=RandomStreams(seed),
            static_imbalance=0.0,
            imbalance_sigma=0.02,
            static_skew=skew,
            job_id="uc2-agent-comparison",
        )
        rows.append(
            {
                "agent": agent,
                "runtime_s": result.runtime_s,
                "energy_j": result.energy_j,
                "power_w": result.average_power_w,
                "mpi_wait_s": result.mpi_wait_s,
                "report": runtime.report(),
            }
        )
    return rows


def policy_mode_comparison(
    n_nodes: int = 8, n_jobs: int = 8, seed: int = 3
) -> List[Dict[str, Any]]:
    """Run a job mix under each GEOPM site-policy mode (Figure 3)."""
    rows: List[Dict[str, Any]] = []
    workload = WorkloadGenerator(
        RandomStreams(seed), mean_interarrival_s=60.0, max_nodes_per_job=max(2, n_nodes // 2)
    ).generate(n_jobs)
    for mode in GeopmPolicyMode:
        policies = SitePolicies(
            system_power_budget_w=n_nodes * 400.0,
            geopm_mode=mode,
            default_geopm_policy=GeopmPolicy(agent="power_balancer"),
        )
        stack = PowerStack(
            PowerStackConfig(
                cluster=ClusterSpec(n_nodes=n_nodes),
                policies=policies,
                scheduler=SchedulerConfig(scheduling_interval_s=10.0),
                seed=seed,
            )
        )
        run = stack.run_workload(workload)
        assignments = {
            job_id: {
                "agent": job.launch_metadata.get("geopm_agent"),
                "budget_w": job.launch_metadata.get("power_budget_w"),
                "source": job.launch_metadata.get("geopm_source"),
            }
            for job_id, job in run.scheduler.jobs.items()
        }
        rows.append(
            {
                "mode": mode.value,
                "metrics": run.metrics(),
                "assignments": assignments,
            }
        )
    return rows


@register_use_case(
    "uc2",
    description="SLURM + GEOPM: agent comparison under one budget and site-policy modes",
    budget_param="per_node_budget_w",
    objective_metric="balancer_speedup_over_governor",
    minimize=False,
)
def experiment(
    n_nodes: int = 4,
    per_node_budget_w: Optional[float] = 280.0,
    seed: int = 2,
    n_iterations: int = 20,
    include_policy_modes: bool = True,
) -> Dict[str, Any]:
    """Run the SLURM + GEOPM use case."""
    agents = agent_comparison(
        n_nodes=n_nodes,
        per_node_budget_w=per_node_budget_w,
        seed=seed,
        n_iterations=n_iterations,
    )
    by_agent = {row["agent"]: row for row in agents}
    governor = by_agent["power_governor"]
    balancer = by_agent["power_balancer"]
    speedup = (
        governor["runtime_s"] / balancer["runtime_s"] - 1.0
        if balancer["runtime_s"] > 0
        else 0.0
    )
    result: Dict[str, Any] = {
        "agents": agents,
        "balancer_speedup_over_governor": speedup,
        "energy_saving_energy_efficient": 1.0
        - by_agent["energy_efficient"]["energy_j"] / by_agent["monitor"]["energy_j"],
    }
    if include_policy_modes:
        result["policy_modes"] = policy_mode_comparison(seed=seed)
    return result


def run_use_case(
    n_nodes: int = 4,
    per_node_budget_w: Optional[float] = 280.0,
    seed: int = 2,
    n_iterations: int = 20,
    include_policy_modes: bool = True,
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc2`` campaign runner."""
    return run_registered(
        "uc2",
        seed=seed,
        n_nodes=n_nodes,
        per_node_budget_w=per_node_budget_w,
        n_iterations=n_iterations,
        include_policy_modes=include_policy_modes,
    )
