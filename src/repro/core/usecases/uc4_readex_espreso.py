"""Use case 4 (§3.2.4, Figure 5): READEX/MERIC tuning of the ESPRESO FETI solver.

Design-time analysis sweeps hardware configurations (core/uncore
frequency) and application tuning parameters (solver, preconditioner,
domain size — with ATP dependency constraints), builds the tuning model,
and the production run replays the best configuration per region.  The
experiment compares:

* the **default** run (base frequencies, default application parameters),
* the **best static** configuration (one global hardware setting), and
* the **READEX dynamic** run (per-region settings from the tuning model),

on runtime and energy — per-region tuning should save energy beyond the
best static setting because the FETI regions have different characters
(factorisation is compute-bound, the CG loop is memory/communication
bound).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.apps.espreso import EspresoFeti
from repro.apps.mpi import MpiJobSimulator
from repro.experiments.registry import register_use_case, run_registered
from repro.experiments.shared import fresh_nodes, make_cluster
from repro.hardware.cluster import Cluster
from repro.runtime.meric import MericRuntime, RegionConfig
from repro.runtime.readex import AtpConstraint, AtpParameter, ReadexTuner
from repro.sim.rng import RandomStreams

__all__ = ["run_use_case", "design_time_analysis"]


def design_time_analysis(
    cluster: Cluster,
    n_nodes: int = 2,
    objective: str = "energy_j",
    seed: int = 5,
    with_atp: bool = True,
):
    """Run the READEX design-time analysis and return the tuning model."""
    nodes = fresh_nodes(cluster, n_nodes)
    app = EspresoFeti()
    atp_params = ()
    atp_constraints = ()
    if with_atp:
        atp_params = (
            AtpParameter("preconditioner", ("LUMPED", "DIRICHLET")),
            AtpParameter("domain_size", (800, 1600, 3200)),
        )
        atp_constraints = (
            AtpConstraint(
                "DIRICHLET preconditioner is too memory-hungry for the largest domains",
                lambda cfg: not (
                    cfg.get("preconditioner") == "DIRICHLET" and cfg.get("domain_size", 0) >= 3200
                ),
            ),
        )
    tuner = ReadexTuner(
        application=app,
        nodes=nodes,
        core_freqs_ghz=(1.4, 2.0, 2.4, 3.0),
        uncore_freqs_ghz=(1.6, 2.4),
        atp_parameters=atp_params,
        atp_constraints=atp_constraints,
        objective=objective,
        max_iterations_per_experiment=3,
        streams=RandomStreams(seed),
    )
    return tuner.run_design_time_analysis(), tuner


@register_use_case(
    "uc4",
    description="READEX/MERIC + ESPRESO: design-time analysis vs default/static/dynamic production",
    objective_metric="readex_dynamic.energy_j",
    minimize=True,
)
def experiment(
    n_nodes: int = 2,
    seed: int = 5,
    objective: str = "energy_j",
    production_iterations: Optional[int] = 30,
) -> Dict[str, Any]:
    """Design-time analysis + production comparison (default / static / dynamic)."""
    cluster = make_cluster(max(n_nodes, 2), seed)
    model, tuner = design_time_analysis(cluster, n_nodes=n_nodes, objective=objective, seed=seed)
    app = EspresoFeti()
    app_params = dict(model.application_params)

    def production_run(hooks, label: str) -> Dict[str, float]:
        nodes = fresh_nodes(cluster, n_nodes)
        result = MpiJobSimulator.evaluate(
            nodes,
            app,
            app_params,
            hooks=hooks,
            streams=RandomStreams(seed + 100),
            job_id=f"uc4-{label}",
            max_iterations=production_iterations,
        )
        return {
            "runtime_s": result.runtime_s,
            "energy_j": result.energy_j,
            "power_w": result.average_power_w,
        }

    # Default: no runtime attached, base frequencies.
    default = production_run(None, "default")

    # Best static: single global configuration chosen from the design-time data.
    best_static_config = None
    best_static_score = float("inf")
    for entry in model.history:
        score = entry["score"]
        if score < best_static_score:
            best_static_score = score
            best_static_config = RegionConfig(
                core_freq_ghz=entry["core_freq_ghz"] or None,
                uncore_freq_ghz=entry["uncore_freq_ghz"] or None,
            )
    static_runtime = MericRuntime(region_configs={"*": best_static_config or RegionConfig()})
    static = production_run(static_runtime, "static")

    # READEX dynamic: per-region configurations from the tuning model.
    dynamic = production_run(model.runtime(), "dynamic")

    def saving(reference: Dict[str, float], candidate: Dict[str, float], metric: str) -> float:
        if reference[metric] <= 0:
            return 0.0
        return 1.0 - candidate[metric] / reference[metric]

    return {
        "application_params": app_params,
        "region_configs": {r: c.as_dict() for r, c in model.region_configs.items()},
        "experiments_run": tuner.experiments_run,
        "default": default,
        "best_static": static,
        "readex_dynamic": dynamic,
        "energy_saving_static_vs_default": saving(default, static, "energy_j"),
        "energy_saving_dynamic_vs_default": saving(default, dynamic, "energy_j"),
        "energy_saving_dynamic_vs_static": saving(static, dynamic, "energy_j"),
        "slowdown_dynamic_vs_default": (
            dynamic["runtime_s"] / default["runtime_s"] - 1.0 if default["runtime_s"] > 0 else 0.0
        ),
    }


def run_use_case(
    n_nodes: int = 2,
    seed: int = 5,
    objective: str = "energy_j",
    production_iterations: Optional[int] = 30,
) -> Dict[str, Any]:
    """Thin shim over the registered ``uc4`` campaign runner."""
    return run_registered(
        "uc4",
        seed=seed,
        n_nodes=n_nodes,
        objective=objective,
        production_iterations=production_iterations,
    )
