"""The assembled PowerStack: cluster + policies + scheduler + runtimes.

:class:`PowerStack` wires the simulated layers together exactly as
Figure 2 places them — site policies on top, the resource manager over
the cluster, job-level runtimes attached at launch, applications inside
jobs, node-level controls underneath — and gives the tuning layers a
single object to build, run and measure.  Each call to
:meth:`PowerStack.run_workload` uses a *fresh* cluster and environment
so tuning evaluations are independent.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.apps.generator import JobRequest
from repro.hardware.cluster import Cluster, ClusterSpec
from repro.resource_manager.irm import CorridorStrategy, InvasiveResourceManager
from repro.resource_manager.policies import SitePolicies
from repro.resource_manager.slurm import PowerAwareScheduler, SchedulerConfig, SchedulerStats
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams

__all__ = ["PowerStackConfig", "PowerStackRun", "PowerStack"]


@dataclass
class PowerStackConfig:
    """Everything needed to instantiate one PowerStack."""

    cluster: ClusterSpec = field(default_factory=lambda: ClusterSpec(n_nodes=8))
    policies: SitePolicies = field(default_factory=SitePolicies)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    #: Use the invasive RM (corridor management) instead of the plain scheduler.
    use_irm: bool = False
    corridor_strategy: CorridorStrategy = CorridorStrategy.INVASIVE
    seed: int = 0


@dataclass
class PowerStackRun:
    """The outcome of running one workload through the stack."""

    stats: SchedulerStats
    scheduler: PowerAwareScheduler
    cluster: Cluster

    def metrics(self) -> Dict[str, float]:
        """Canonical metric dictionary for objectives and constraints."""
        stats = self.stats
        return {
            "runtime_s": stats.makespan_s,
            "energy_j": stats.total_energy_j,
            "power_w": stats.mean_system_power_w,
            "peak_power_w": stats.peak_system_power_w,
            "throughput_jobs_per_hour": stats.throughput_jobs_per_hour,
            "mean_wait_s": stats.mean_wait_s,
            "mean_turnaround_s": stats.mean_turnaround_s,
            "node_utilization": stats.node_utilization,
            "jobs_completed": float(stats.jobs_completed),
        }


class PowerStack:
    """Factory + driver for complete PowerStack simulations."""

    def __init__(self, config: Optional[PowerStackConfig] = None):
        self.config = config or PowerStackConfig()

    # -- construction --------------------------------------------------------------------
    def build(
        self,
        seed_offset: int = 0,
        runtime_factory: Optional[Callable] = None,
        policies_override: Optional[SitePolicies] = None,
        scheduler_override: Optional[SchedulerConfig] = None,
    ) -> PowerAwareScheduler:
        """Instantiate a fresh environment, cluster and scheduler."""
        cfg = self.config
        env = Environment()
        cluster = Cluster(cfg.cluster, seed=cfg.seed + seed_offset)
        policies = policies_override or copy.deepcopy(cfg.policies)
        sched_cfg = scheduler_override or copy.deepcopy(cfg.scheduler)
        if runtime_factory is not None:
            sched_cfg.runtime_factory = runtime_factory
        streams = RandomStreams(cfg.seed + seed_offset)
        if cfg.use_irm:
            return InvasiveResourceManager(
                env, cluster, policies, sched_cfg, streams, strategy=cfg.corridor_strategy
            )
        return PowerAwareScheduler(env, cluster, policies, sched_cfg, streams)

    # -- execution ---------------------------------------------------------------------------
    def run_workload(
        self,
        requests: Sequence[JobRequest],
        seed_offset: int = 0,
        runtime_factory: Optional[Callable] = None,
        policies_override: Optional[SitePolicies] = None,
        scheduler_override: Optional[SchedulerConfig] = None,
    ) -> PowerStackRun:
        """Run a workload through a freshly built stack and return metrics."""
        scheduler = self.build(
            seed_offset=seed_offset,
            runtime_factory=runtime_factory,
            policies_override=policies_override,
            scheduler_override=scheduler_override,
        )
        scheduler.submit_trace(self._clone_requests(requests))
        stats = scheduler.run_until_complete()
        return PowerStackRun(stats=stats, scheduler=scheduler, cluster=scheduler.cluster)

    @staticmethod
    def _clone_requests(requests: Sequence[JobRequest]) -> List[JobRequest]:
        """Deep-ish copies so one evaluation cannot mutate another's requests."""
        clones: List[JobRequest] = []
        for request in requests:
            clones.append(
                replace_request(request)
            )
        return clones

    # -- convenience for small tests -----------------------------------------------------------
    @classmethod
    def small(cls, n_nodes: int = 4, seed: int = 0, **policy_kwargs: Any) -> "PowerStack":
        policies = SitePolicies(
            system_power_budget_w=policy_kwargs.pop("system_power_budget_w", n_nodes * 450.0),
            **policy_kwargs,
        )
        return cls(
            PowerStackConfig(
                cluster=ClusterSpec(n_nodes=n_nodes),
                policies=policies,
                scheduler=SchedulerConfig(scheduling_interval_s=5.0, monitor_interval_s=5.0),
                seed=seed,
            )
        )


def replace_request(request: JobRequest, **overrides: Any) -> JobRequest:
    """Copy a :class:`JobRequest`, optionally overriding fields.

    The application object itself is shared (applications are stateless);
    the parameter dictionary is copied so per-evaluation overrides are safe.
    """
    data = dict(
        job_id=request.job_id,
        application=request.application,
        params=dict(request.params),
        nodes_requested=request.nodes_requested,
        nodes_min=request.nodes_min,
        nodes_max=request.nodes_max,
        ranks_per_node=request.ranks_per_node,
        walltime_estimate_s=request.walltime_estimate_s,
        malleable=request.malleable,
        arrival_time_s=request.arrival_time_s,
        user=request.user,
    )
    data.update(overrides)
    return JobRequest(**data)
