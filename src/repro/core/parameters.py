"""Typed tunable parameters.

Every knob in Table 1 — node counts and task counts at the system level,
agent and aggressiveness choices at the runtime level, solver and
preconditioner choices at the application level, frequencies and power
caps at the node level — becomes one of these parameter types.  Each
parameter knows how to

* validate and sample values,
* encode values into the unit interval (for the numeric search
  algorithms) and decode them back, and
* propose neighbouring values (for local-search style algorithms).

Each parameter also exposes *vectorized* batch variants
(:meth:`Parameter.to_unit_array`, :meth:`Parameter.from_unit_array`,
:meth:`Parameter.sample_array`) so :class:`~repro.core.space.ParameterSpace`
can encode, decode and sample whole batches of configurations with numpy
instead of per-value Python loops — the hot path of the batched tuning
engine.
"""

from __future__ import annotations

import abc
from typing import Any, List, Sequence

import numpy as np

__all__ = [
    "Parameter",
    "CategoricalParameter",
    "OrdinalParameter",
    "BooleanParameter",
    "IntegerParameter",
    "FloatParameter",
]


class Parameter(abc.ABC):
    """Base class of all tunable parameters."""

    def __init__(self, name: str, layer: str = "application"):
        if not name:
            raise ValueError("parameter name must not be empty")
        self.name = name
        #: PowerStack layer the parameter belongs to (used by the co-tuner
        #: to slice the space and by Table 1 reporting).
        self.layer = layer

    # -- required interface ----------------------------------------------------------
    @abc.abstractmethod
    def validate(self, value: Any) -> Any:
        """Return a canonical version of ``value`` or raise ``ValueError``."""

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw a uniform random value."""

    @abc.abstractmethod
    def to_unit(self, value: Any) -> float:
        """Encode a value into [0, 1] for numeric surrogates."""

    @abc.abstractmethod
    def from_unit(self, u: float) -> Any:
        """Decode a [0, 1] position back into a value."""

    @abc.abstractmethod
    def grid(self, resolution: int = 10) -> List[Any]:
        """Representative values for exhaustive/grid search."""

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[Any]:
        """Values adjacent to ``value`` (default: one fresh sample)."""
        return [self.sample(rng)]

    # -- vectorized batch interface (overridden where numpy can help) ---------------
    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        """Encode a batch of values into [0, 1] (default: scalar loop)."""
        return np.array([self.to_unit(v) for v in values], dtype=float)

    def from_unit_array(self, u: np.ndarray) -> List[Any]:
        """Decode a batch of [0, 1] positions (default: scalar loop)."""
        return [self.from_unit(float(x)) for x in np.asarray(u, dtype=float)]

    def sample_array(self, rng: np.random.Generator, count: int) -> List[Any]:
        """Draw ``count`` uniform random values (default: scalar loop)."""
        return [self.sample(rng) for _ in range(count)]

    def grid_size(self, resolution: int = 10) -> int:
        """Number of grid points without materializing the grid list."""
        return len(self.grid(resolution))

    @property
    def is_numeric(self) -> bool:
        return False

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, layer={self.layer!r})"


class CategoricalParameter(Parameter):
    """An unordered choice among discrete values."""

    def __init__(self, name: str, values: Sequence[Any], layer: str = "application"):
        super().__init__(name, layer)
        if not values:
            raise ValueError(f"{name}: needs at least one value")
        self.values = list(values)
        self._index = {self._key(v): i for i, v in enumerate(self.values)}

    @staticmethod
    def _key(value: Any) -> Any:
        return value if not isinstance(value, list) else tuple(value)

    def validate(self, value: Any) -> Any:
        if self._key(value) not in self._index:
            raise ValueError(f"{self.name}: {value!r} not in {self.values}")
        return value

    def sample(self, rng: np.random.Generator) -> Any:
        return self.values[int(rng.integers(0, len(self.values)))]

    def to_unit(self, value: Any) -> float:
        idx = self._index[self._key(self.validate(value))]
        if len(self.values) == 1:
            return 0.0
        return idx / (len(self.values) - 1)

    def from_unit(self, u: float) -> Any:
        u = float(np.clip(u, 0.0, 1.0))
        idx = int(round(u * (len(self.values) - 1)))
        return self.values[idx]

    def grid(self, resolution: int = 10) -> List[Any]:
        return list(self.values)

    def grid_size(self, resolution: int = 10) -> int:
        return len(self.values)

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[Any]:
        others = [v for v in self.values if self._key(v) != self._key(value)]
        if not others:
            return [value]
        return [others[int(rng.integers(0, len(others)))]]

    # -- vectorized batch interface ---------------------------------------------------
    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        idx = np.array([self._index[self._key(self.validate(v))] for v in values], dtype=float)
        if len(self.values) == 1:
            return np.zeros_like(idx)
        return idx / (len(self.values) - 1)

    def from_unit_array(self, u: np.ndarray) -> List[Any]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        idx = np.rint(u * (len(self.values) - 1)).astype(int)
        return [self.values[i] for i in idx]

    def sample_array(self, rng: np.random.Generator, count: int) -> List[Any]:
        idx = rng.integers(0, len(self.values), size=count)
        return [self.values[i] for i in idx]


class OrdinalParameter(CategoricalParameter):
    """An ordered choice among discrete values (e.g. tile sizes, P-states)."""

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[Any]:
        idx = self._index[self._key(self.validate(value))]
        out = []
        if idx > 0:
            out.append(self.values[idx - 1])
        if idx < len(self.values) - 1:
            out.append(self.values[idx + 1])
        return out or [value]

    @property
    def is_numeric(self) -> bool:
        return all(isinstance(v, (int, float, np.integer, np.floating)) for v in self.values)


class BooleanParameter(CategoricalParameter):
    """A true/false switch."""

    def __init__(self, name: str, layer: str = "application"):
        super().__init__(name, [False, True], layer)

    def validate(self, value: Any) -> Any:
        if not isinstance(value, (bool, np.bool_)):
            raise ValueError(f"{self.name}: expected a bool, got {value!r}")
        return bool(value)

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[Any]:
        return [not self.validate(value)]


class IntegerParameter(Parameter):
    """An integer range [low, high] (inclusive), optionally log-scaled."""

    def __init__(
        self, name: str, low: int, high: int, log: bool = False, layer: str = "application"
    ):
        super().__init__(name, layer)
        if low > high:
            raise ValueError(f"{name}: low must be <= high")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low = int(low)
        self.high = int(high)
        self.log = bool(log)

    @property
    def is_numeric(self) -> bool:
        return True

    def validate(self, value: Any) -> int:
        value = int(value)
        if not self.low <= value <= self.high:
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")
        return value

    def sample(self, rng: np.random.Generator) -> int:
        return self.from_unit(float(rng.random()))

    def to_unit(self, value: Any) -> float:
        value = self.validate(value)
        if self.high == self.low:
            return 0.0
        if self.log:
            return (np.log(value) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
        return (value - self.low) / (self.high - self.low)

    def from_unit(self, u: float) -> int:
        u = float(np.clip(u, 0.0, 1.0))
        if self.log:
            value = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            value = self.low + u * (self.high - self.low)
        return int(np.clip(round(value), self.low, self.high))

    def grid(self, resolution: int = 10) -> List[int]:
        count = min(resolution, self.high - self.low + 1)
        return sorted({self.from_unit(u) for u in np.linspace(0.0, 1.0, count)})

    def grid_size(self, resolution: int = 10) -> int:
        if self.log:
            # Log-spaced rounding can collapse adjacent points: count exactly.
            return len(self.grid(resolution))
        return min(resolution, self.high - self.low + 1)

    # -- vectorized batch interface ---------------------------------------------------
    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        vals = np.array([self.validate(v) for v in values], dtype=float)
        if self.high == self.low:
            return np.zeros_like(vals)
        if self.log:
            return (np.log(vals) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
        return (vals - self.low) / (self.high - self.low)

    def from_unit_array(self, u: np.ndarray) -> List[int]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            vals = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            vals = self.low + u * (self.high - self.low)
        clipped = np.clip(np.rint(vals), self.low, self.high).astype(int)
        return [int(v) for v in clipped]

    def sample_array(self, rng: np.random.Generator, count: int) -> List[int]:
        return self.from_unit_array(rng.random(count))

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[int]:
        value = self.validate(value)
        step = max(1, (self.high - self.low) // 20)
        out = []
        if value - step >= self.low:
            out.append(value - step)
        if value + step <= self.high:
            out.append(value + step)
        return out or [value]


class FloatParameter(Parameter):
    """A continuous range [low, high], optionally log-scaled."""

    def __init__(
        self, name: str, low: float, high: float, log: bool = False, layer: str = "application"
    ):
        super().__init__(name, layer)
        if low > high:
            raise ValueError(f"{name}: low must be <= high")
        if log and low <= 0:
            raise ValueError(f"{name}: log scale requires low > 0")
        self.low = float(low)
        self.high = float(high)
        self.log = bool(log)

    @property
    def is_numeric(self) -> bool:
        return True

    def validate(self, value: Any) -> float:
        value = float(value)
        if not self.low - 1e-12 <= value <= self.high + 1e-12:
            raise ValueError(f"{self.name}: {value} outside [{self.low}, {self.high}]")
        return float(np.clip(value, self.low, self.high))

    def sample(self, rng: np.random.Generator) -> float:
        return self.from_unit(float(rng.random()))

    def to_unit(self, value: Any) -> float:
        value = self.validate(value)
        if self.high == self.low:
            return 0.0
        if self.log:
            return float(
                (np.log(value) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
            )
        return float((value - self.low) / (self.high - self.low))

    def from_unit(self, u: float) -> float:
        u = float(np.clip(u, 0.0, 1.0))
        if self.log:
            return float(np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low))))
        return float(self.low + u * (self.high - self.low))

    def grid(self, resolution: int = 10) -> List[float]:
        return [self.from_unit(u) for u in np.linspace(0.0, 1.0, max(2, resolution))]

    def grid_size(self, resolution: int = 10) -> int:
        return max(2, resolution)

    # -- vectorized batch interface ---------------------------------------------------
    def to_unit_array(self, values: Sequence[Any]) -> np.ndarray:
        vals = np.array([self.validate(v) for v in values], dtype=float)
        if self.high == self.low:
            return np.zeros_like(vals)
        if self.log:
            return (np.log(vals) - np.log(self.low)) / (np.log(self.high) - np.log(self.low))
        return (vals - self.low) / (self.high - self.low)

    def from_unit_array(self, u: np.ndarray) -> List[float]:
        u = np.clip(np.asarray(u, dtype=float), 0.0, 1.0)
        if self.log:
            vals = np.exp(np.log(self.low) + u * (np.log(self.high) - np.log(self.low)))
        else:
            vals = self.low + u * (self.high - self.low)
        return [float(v) for v in vals]

    def sample_array(self, rng: np.random.Generator, count: int) -> List[float]:
        return self.from_unit_array(rng.random(count))

    def neighbors(self, value: Any, rng: np.random.Generator) -> List[float]:
        value = self.validate(value)
        span = (self.high - self.low) * 0.1
        return [
            self.validate(np.clip(value + delta, self.low, self.high))
            for delta in (-span, span)
            if span > 0
        ] or [value]
