"""The paper's primary contribution: the end-to-end auto-tuning framework.

Figure 1's orange box — "the PowerStack end-to-end auto-tuning
framework" — is implemented here.  The pieces mirror the paper's §3
structure:

* **tunable parameters at each layer** —
  :mod:`repro.core.parameters`, :mod:`repro.core.space` (typed parameter
  spaces with dependency constraints, tagged by PowerStack layer),
* **objectives and constraints** — :mod:`repro.core.objectives`,
  :mod:`repro.core.constraints` (the smallest runtime / lowest power /
  lowest energy under a system power cap),
* **search** — :mod:`repro.core.search` (random, grid, Latin hypercube,
  simulated annealing, genetic, GP Bayesian optimisation, random-forest
  surrogate; all ask/tell),
* **the tuning loops** — :mod:`repro.core.tuner` (single-layer,
  ytopt-style), :mod:`repro.core.cotuner` (co-tuning of two or more
  layers), :mod:`repro.core.endtoend` (the full Figure 1 loop over a
  simulated PowerStack),
* **layer interfaces and goal translation** —
  :mod:`repro.core.interfaces` (Table 1/Table 3 registries),
  :mod:`repro.core.translation` (site → system → job → node budget
  translation and upward metric aggregation),
* **the assembled stack** — :mod:`repro.core.stack`, and the seven §3.2
  use cases under :mod:`repro.core.usecases`.
"""

from repro.core.constraints import Constraint, ConstraintSet, ForbiddenCombination, MetricConstraint
from repro.core.cotuner import CoTuner, CoTuningResult
from repro.core.endtoend import EndToEndResult, EndToEndTuner
from repro.core.objectives import Objective, WeightedObjective, make_objective
from repro.core.parameters import (
    BooleanParameter,
    CategoricalParameter,
    FloatParameter,
    IntegerParameter,
    OrdinalParameter,
    Parameter,
)
from repro.core.space import ParameterSpace
from repro.core.stack import PowerStack, PowerStackConfig
from repro.core.translation import GoalTranslator, TranslationStep
from repro.core.tuner import (
    Autotuner,
    BatchAutotuner,
    EvaluationCache,
    SerialExecutor,
    ThreadedExecutor,
    TuningResult,
)

__all__ = [
    "Autotuner",
    "BatchAutotuner",
    "BooleanParameter",
    "CategoricalParameter",
    "CoTuner",
    "CoTuningResult",
    "Constraint",
    "ConstraintSet",
    "EndToEndResult",
    "EndToEndTuner",
    "EvaluationCache",
    "FloatParameter",
    "ForbiddenCombination",
    "GoalTranslator",
    "IntegerParameter",
    "MetricConstraint",
    "Objective",
    "OrdinalParameter",
    "Parameter",
    "ParameterSpace",
    "PowerStack",
    "PowerStackConfig",
    "SerialExecutor",
    "ThreadedExecutor",
    "TranslationStep",
    "TuningResult",
    "WeightedObjective",
    "make_objective",
]
