"""Top-down goal translation and bottom-up metric aggregation.

§4.1 names the missing interfaces: "(1) translation of high-level goals
into subsequent lower-level goals, (2) translation of monitored metrics
at lower layers to derived metrics at higher layers".  The
:class:`GoalTranslator` implements both directions for the power-budget
chain the framework uses everywhere:

    site budget  →  per-system budgets  →  per-job budgets  →
    per-node budgets  →  per-component (package / DRAM / GPU) limits

and, upward, node → job → system → site metric aggregation.  Every
translation step is recorded so Figure 1 / Figure 3 style reports can
show how the numbers filtered down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from repro.hardware.node import Node

__all__ = ["TranslationStep", "GoalTranslator"]


@dataclass(frozen=True)
class TranslationStep:
    """One recorded budget-translation step."""

    source_layer: str
    target_layer: str
    description: str
    inputs: Dict[str, float]
    outputs: Dict[str, float]


@dataclass
class GoalTranslator:
    """Translates power budgets down the stack and metrics back up."""

    #: Fraction of each budget held back as safety margin at every step.
    margin_fraction: float = 0.02
    steps: List[TranslationStep] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.margin_fraction < 0.5:
            raise ValueError("margin_fraction must be in [0, 0.5)")

    def _record(self, source: str, target: str, description: str,
                inputs: Mapping[str, float], outputs: Mapping[str, float]) -> None:
        self.steps.append(
            TranslationStep(source, target, description, dict(inputs), dict(outputs))
        )

    # -- downward: budgets ---------------------------------------------------------------
    def site_to_systems(
        self, site_budget_w: float, system_weights: Mapping[str, float]
    ) -> Dict[str, float]:
        """Split the site budget across systems proportionally to weights."""
        if site_budget_w <= 0:
            raise ValueError("site_budget_w must be positive")
        if not system_weights:
            raise ValueError("system_weights must not be empty")
        total_weight = sum(system_weights.values())
        if total_weight <= 0:
            raise ValueError("system weights must sum to a positive value")
        usable = site_budget_w * (1.0 - self.margin_fraction)
        budgets = {
            name: usable * weight / total_weight for name, weight in system_weights.items()
        }
        self._record(
            "site", "system", "split site budget across systems",
            {"site_budget_w": site_budget_w}, budgets,
        )
        return budgets

    def system_to_jobs(
        self,
        system_budget_w: float,
        job_node_counts: Mapping[str, int],
        total_nodes: int,
        idle_power_per_node_w: float = 0.0,
    ) -> Dict[str, float]:
        """Derive per-job budgets proportional to their node counts."""
        if system_budget_w <= 0:
            raise ValueError("system_budget_w must be positive")
        if total_nodes <= 0:
            raise ValueError("total_nodes must be positive")
        allocated_nodes = sum(job_node_counts.values())
        idle_nodes = max(0, total_nodes - allocated_nodes)
        usable = (system_budget_w - idle_nodes * idle_power_per_node_w) * (
            1.0 - self.margin_fraction
        )
        usable = max(usable, 0.0)
        per_node = usable / total_nodes if total_nodes else 0.0
        budgets = {job: per_node * count for job, count in job_node_counts.items()}
        self._record(
            "system", "job", "proportional job budgets (equal watts per node)",
            {"system_budget_w": system_budget_w, "total_nodes": float(total_nodes)},
            budgets,
        )
        return budgets

    def job_to_nodes(
        self,
        job_budget_w: float,
        nodes: Sequence[Node],
        demand_weights: Optional[Mapping[str, float]] = None,
    ) -> Dict[str, float]:
        """Split a job budget across its nodes.

        With ``demand_weights`` (e.g. measured per-node power demand or
        critical-path weights from a power-balancing runtime), the split is
        proportional; otherwise it is even.  Every node is clamped to its
        enforceable range.
        """
        if job_budget_w <= 0:
            raise ValueError("job_budget_w must be positive")
        if not nodes:
            raise ValueError("nodes must not be empty")
        weights = {
            node.hostname: (demand_weights or {}).get(node.hostname, 1.0) for node in nodes
        }
        total_weight = sum(weights.values())
        budgets: Dict[str, float] = {}
        for node in nodes:
            share = job_budget_w * weights[node.hostname] / total_weight
            budgets[node.hostname] = float(
                min(max(share, node.spec.min_power_w), node.max_power_w())
            )
        self._record(
            "job", "node", "split job budget across nodes",
            {"job_budget_w": job_budget_w, "nodes": float(len(nodes))}, budgets,
        )
        return budgets

    def node_to_components(self, node: Node, node_budget_w: float) -> Dict[str, float]:
        """Split a node budget into platform / package / DRAM / GPU shares."""
        if node_budget_w <= 0:
            raise ValueError("node_budget_w must be positive")
        budget = max(node_budget_w, node.spec.min_power_w)
        remaining = budget - node.spec.platform_power_w
        gpu_tdp = node.spec.n_gpus * node.spec.gpu.max_power_w
        cpu_tdp = node.spec.n_sockets * node.spec.cpu.tdp_w
        total = gpu_tdp + cpu_tdp
        shares: Dict[str, float] = {"platform": node.spec.platform_power_w}
        for i in range(node.spec.n_sockets):
            shares[f"package-{i}"] = remaining * (cpu_tdp / total) / node.spec.n_sockets
        for i in range(node.spec.n_gpus):
            shares[f"gpu-{i}"] = remaining * (gpu_tdp / total) / node.spec.n_gpus
        self._record(
            "node", "component", "split node budget across hardware domains",
            {"node_budget_w": node_budget_w}, shares,
        )
        return shares

    # -- downward: objective translation ----------------------------------------------------
    def throughput_goal_to_job_runtime(
        self, jobs_per_hour: float, concurrent_jobs: int
    ) -> float:
        """Translate a system throughput target into a per-job runtime target.

        (The §3.1.4 example: a throughput objective at the RM becomes a
        time-to-solution target for each job-level runtime.)
        """
        if jobs_per_hour <= 0 or concurrent_jobs <= 0:
            raise ValueError("jobs_per_hour and concurrent_jobs must be positive")
        runtime_s = 3600.0 * concurrent_jobs / jobs_per_hour
        self._record(
            "system", "job", "throughput target to per-job runtime target",
            {"jobs_per_hour": jobs_per_hour, "concurrent_jobs": float(concurrent_jobs)},
            {"runtime_target_s": runtime_s},
        )
        return runtime_s

    def job_runtime_to_app_progress(
        self, runtime_target_s: float, iterations: int
    ) -> float:
        """Translate a job runtime target into seconds per application iteration."""
        if runtime_target_s <= 0 or iterations <= 0:
            raise ValueError("runtime_target_s and iterations must be positive")
        per_step = runtime_target_s / iterations
        self._record(
            "job", "application", "runtime target to per-timestep budget",
            {"runtime_target_s": runtime_target_s, "iterations": float(iterations)},
            {"seconds_per_timestep": per_step},
        )
        return per_step

    # -- upward: metric aggregation -----------------------------------------------------------
    @staticmethod
    def aggregate_node_metrics(node_metrics: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
        """Aggregate per-node metrics into job-level metrics."""
        if not node_metrics:
            return {}
        runtime = max(m.get("runtime_s", 0.0) for m in node_metrics.values())
        energy = sum(m.get("energy_j", 0.0) for m in node_metrics.values())
        power = energy / runtime if runtime > 0 else 0.0
        return {"runtime_s": runtime, "energy_j": energy, "power_w": power}

    @staticmethod
    def aggregate_job_metrics(job_metrics: Mapping[str, Mapping[str, float]]) -> Dict[str, float]:
        """Aggregate per-job metrics into system-level metrics."""
        if not job_metrics:
            return {}
        energy = sum(m.get("energy_j", 0.0) for m in job_metrics.values())
        runtime = max(m.get("runtime_s", 0.0) for m in job_metrics.values())
        completed = float(len(job_metrics))
        throughput = completed / (runtime / 3600.0) if runtime > 0 else 0.0
        return {
            "energy_j": energy,
            "makespan_s": runtime,
            "throughput_jobs_per_hour": throughput,
            "power_w": energy / runtime if runtime > 0 else 0.0,
        }

    # -- reporting ------------------------------------------------------------------------------
    def trace(self) -> List[Dict[str, object]]:
        """The recorded translation chain (for Figure 1/3 style reports)."""
        return [
            {
                "from": step.source_layer,
                "to": step.target_layer,
                "description": step.description,
                "inputs": step.inputs,
                "outputs": step.outputs,
            }
            for step in self.steps
        ]
