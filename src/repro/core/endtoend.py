"""The end-to-end auto-tuning framework (the orange box of Figure 1).

Given a PowerStack description and a workload, the
:class:`EndToEndTuner` builds one cross-layer parameter space —

* **system** layer: job power-budget policy, power-aware node selection,
  backfilling,
* **job/runtime** layer: GEOPM agent choice and allowed performance
  degradation,
* **node** layer: uncore frequency policy,
* **application** layer: the application's own tunables (optional —
  applied to every job running that application),
* **system-software** layer: compiler optimisation level (optional, for
  kernel workloads),

— and co-tunes them for "the optimal solution (the smallest runtime, the
lowest power, or the lowest energy) under a system power cap".  Every
evaluation runs the whole workload through a fresh simulated PowerStack,
so the cross-layer interactions the paper is interested in are measured,
not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.apps.base import Application
from repro.apps.generator import JobRequest
from repro.core.constraints import ConstraintSet, MetricConstraint
from repro.core.cotuner import CoTuner, CoTuningResult
from repro.core.parameters import BooleanParameter, CategoricalParameter, OrdinalParameter
from repro.core.space import ParameterSpace
from repro.core.stack import PowerStack, PowerStackRun, replace_request
from repro.core.translation import GoalTranslator
from repro.resource_manager.policies import JobPowerPolicy, SitePolicies
from repro.runtime.geopm import GeopmPolicy, GeopmRuntime
from repro.telemetry.database import PerformanceDatabase

__all__ = ["EndToEndResult", "EndToEndTuner"]

#: GEOPM agents the end-to-end tuner considers at the runtime layer.
RUNTIME_AGENTS = ("power_governor", "power_balancer", "energy_efficient", "frequency_map")


@dataclass
class EndToEndResult:
    """Best cross-layer configuration plus supporting evidence."""

    cotuning: CoTuningResult
    baseline_metrics: Dict[str, float]
    best_metrics: Dict[str, float]
    translation_trace: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def best_by_layer(self) -> Dict[str, Dict[str, Any]]:
        return self.cotuning.best_by_layer

    @property
    def database(self) -> PerformanceDatabase:
        return self.cotuning.database

    def improvement_over_baseline(self, metric: str = "runtime_s") -> float:
        """Relative improvement of the tuned configuration over the baseline."""
        base = self.baseline_metrics.get(metric)
        best = self.best_metrics.get(metric)
        if not base or best is None or base <= 0:
            return 0.0
        return (base - best) / base

    def summary(self) -> Dict[str, Any]:
        return {
            "best_by_layer": self.best_by_layer,
            "best_metrics": self.best_metrics,
            "baseline_metrics": self.baseline_metrics,
            "evaluations": self.cotuning.tuning.evaluations,
        }


class EndToEndTuner:
    """Co-tunes system, runtime, node, application and compiler layers.

    Executor selection (``executor=``, forwarded to the batched engine):
    ``"serial"`` evaluates in the calling thread; ``"thread"`` suits
    evaluators that wait on subprocesses or I/O; ``"process"`` runs
    CPU-bound evaluations on a process pool past the GIL — note the
    end-to-end evaluator replays whole simulated workloads, which is
    exactly the CPU-bound shape the process pool is for.  ``max_workers``
    bounds either pool.
    """

    def __init__(
        self,
        stack: PowerStack,
        workload: Sequence[JobRequest],
        objective: str = "runtime",
        system_power_cap_w: Optional[float] = None,
        application: Optional[Application] = None,
        tune_layers: Sequence[str] = ("system", "runtime", "node"),
        search: str = "forest",
        max_evals: int = 40,
        seed: int = 0,
        batch_size: int = 1,
        executor: str = "serial",
        max_workers: Optional[int] = None,
        cache_evaluations: bool = False,
    ):
        if not workload:
            raise ValueError("the end-to-end tuner needs a workload")
        self.stack = stack
        self.workload = list(workload)
        self.objective = objective
        self.system_power_cap_w = system_power_cap_w
        self.application = application
        self.tune_layers = tuple(tune_layers)
        self.search = search
        self.max_evals = int(max_evals)
        self.seed = int(seed)
        #: Batched-engine knobs, forwarded to the CoTuner.  A batch size > 1
        #: asks the search for whole generations; ``cache_evaluations``
        #: memoizes repeated cross-layer configurations (every evaluation
        #: replays the full workload, so hits are pure savings).
        self.batch_size = int(batch_size)
        self.executor = executor
        self.max_workers = max_workers
        self.cache_evaluations = bool(cache_evaluations)
        self.translator = GoalTranslator()
        self._evaluation_count = 0

    # -- space construction ----------------------------------------------------------------
    def build_layer_spaces(self) -> Dict[str, ParameterSpace]:
        spaces: Dict[str, ParameterSpace] = {}
        if "system" in self.tune_layers:
            system = ParameterSpace(name="system")
            system.add(
                CategoricalParameter(
                    "job_power_policy",
                    [p.value for p in JobPowerPolicy],
                    layer="system",
                )
            )
            system.add(BooleanParameter("power_aware_node_selection", layer="system"))
            system.add(BooleanParameter("backfill", layer="system"))
            spaces["system"] = system
        if "runtime" in self.tune_layers:
            runtime = ParameterSpace(name="runtime")
            runtime.add(CategoricalParameter("agent", list(RUNTIME_AGENTS), layer="runtime"))
            runtime.add(
                OrdinalParameter("perf_degradation", [0.02, 0.05, 0.10, 0.20], layer="runtime")
            )
            spaces["runtime"] = runtime
        if "node" in self.tune_layers:
            node = ParameterSpace(name="node")
            node.add(OrdinalParameter("uncore_ghz", [1.4, 1.8, 2.2, 2.4], layer="node"))
            spaces["node"] = node
        if "application" in self.tune_layers and self.application is not None:
            app_space = ParameterSpace.from_dict(
                self.application.parameter_space(), layer="application", name="application"
            )
            spaces["application"] = app_space
        if "system_software" in self.tune_layers:
            sysw = ParameterSpace(name="system_software")
            sysw.add(
                OrdinalParameter("opt_level_index", [0, 1, 2, 3, 4], layer="system_software")
            )
            spaces["system_software"] = sysw
        if not spaces:
            raise ValueError(f"no tunable layers selected from {self.tune_layers!r}")
        return spaces

    # -- evaluation ---------------------------------------------------------------------------
    def _apply_system_layer(
        self, policies: SitePolicies, scheduler_kwargs: Dict[str, Any], config: Mapping[str, Any]
    ) -> None:
        if "job_power_policy" in config:
            policies.job_power_policy = JobPowerPolicy(config["job_power_policy"])
        if "power_aware_node_selection" in config:
            scheduler_kwargs["power_aware_node_selection"] = bool(
                config["power_aware_node_selection"]
            )
        if "backfill" in config:
            scheduler_kwargs["backfill"] = bool(config["backfill"])

    def _runtime_factory(self, runtime_config: Mapping[str, Any], node_config: Mapping[str, Any]):
        agent = str(runtime_config.get("agent", "power_governor"))
        degradation = float(runtime_config.get("perf_degradation", 0.05))
        uncore = node_config.get("uncore_ghz")

        def factory(job, budget_w, scheduler):
            policy = GeopmPolicy(
                agent=agent,
                power_budget_w=budget_w,
                perf_degradation=degradation,
                source="end_to_end_tuner",
            )
            if uncore is not None:
                for node in scheduler.cluster.nodes:
                    node.set_uncore_frequency(float(uncore))
            job.launch_metadata = {"geopm_agent": agent, "power_budget_w": budget_w}
            return GeopmRuntime(policy=policy)

        return factory

    def _workload_with_app_params(self, app_config: Mapping[str, Any]) -> List[JobRequest]:
        if not app_config or self.application is None:
            return list(self.workload)
        out: List[JobRequest] = []
        for request in self.workload:
            if request.application.name == self.application.name:
                params = dict(request.params)
                params.update(app_config)
                out.append(replace_request(request, params=params))
            else:
                out.append(request)
        return out

    def evaluate(self, nested_config: Mapping[str, Mapping[str, Any]]) -> Dict[str, float]:
        """Run the workload under one cross-layer configuration."""
        import copy as _copy

        policies = _copy.deepcopy(self.stack.config.policies)
        if self.system_power_cap_w is not None:
            policies.system_power_budget_w = self.system_power_cap_w
        scheduler_cfg = _copy.deepcopy(self.stack.config.scheduler)
        scheduler_kwargs: Dict[str, Any] = {}
        self._apply_system_layer(policies, scheduler_kwargs, nested_config.get("system", {}))
        for key, value in scheduler_kwargs.items():
            setattr(scheduler_cfg, key, value)

        factory = self._runtime_factory(
            nested_config.get("runtime", {}), nested_config.get("node", {})
        )
        workload = self._workload_with_app_params(nested_config.get("application", {}))

        self._evaluation_count += 1
        run: PowerStackRun = self.stack.run_workload(
            workload,
            seed_offset=0,  # same cluster draw for every evaluation: fair comparison
            runtime_factory=factory,
            policies_override=policies,
            scheduler_override=scheduler_cfg,
        )
        return run.metrics()

    # -- baseline & constraints --------------------------------------------------------------------
    def baseline_configuration(self) -> Dict[str, Dict[str, Any]]:
        """The untuned default: proportional budgets, static power governor."""
        baseline: Dict[str, Dict[str, Any]] = {}
        if "system" in self.tune_layers:
            baseline["system"] = {
                "job_power_policy": JobPowerPolicy.PROPORTIONAL.value,
                "power_aware_node_selection": False,
                "backfill": True,
            }
        if "runtime" in self.tune_layers:
            baseline["runtime"] = {"agent": "power_governor", "perf_degradation": 0.05}
        if "node" in self.tune_layers:
            baseline["node"] = {"uncore_ghz": 2.4}
        if "application" in self.tune_layers and self.application is not None:
            baseline["application"] = self.application.default_parameters()
        if "system_software" in self.tune_layers:
            baseline["system_software"] = {"opt_level_index": 3}
        return baseline

    def constraints(self) -> ConstraintSet:
        constraints = ConstraintSet()
        if self.system_power_cap_w is not None:
            constraints.add(MetricConstraint.power_cap(self.system_power_cap_w))
        return constraints

    # -- main entry point ------------------------------------------------------------------------------
    def run(self) -> EndToEndResult:
        spaces = self.build_layer_spaces()
        cotuner = CoTuner(
            layer_spaces=spaces,
            evaluator=self.evaluate,
            objective=self.objective,
            constraints=self.constraints(),
            search=self.search,
            max_evals=self.max_evals,
            seed=self.seed,
            name="end-to-end",
            batch_size=self.batch_size,
            executor=self.executor,
            max_workers=self.max_workers,
            cache_evaluations=self.cache_evaluations,
        )
        baseline_metrics = dict(self.evaluate(self.baseline_configuration()))
        try:
            result = cotuner.run()
        finally:
            cotuner.close()  # release thread pools when executor="thread"

        # Record the budget-translation chain for the winning configuration.
        cluster_spec = self.stack.config.cluster
        node_tdp = cluster_spec.node.tdp_w
        budget = self.system_power_cap_w or self.stack.config.policies.system_power_budget_w
        per_system = self.translator.site_to_systems(budget * 1.05, {cluster_spec.name: 1.0})
        job_nodes = {r.job_id: r.nodes_requested for r in self.workload[:4]}
        self.translator.system_to_jobs(
            per_system[cluster_spec.name], job_nodes, cluster_spec.n_nodes,
            idle_power_per_node_w=node_tdp * 0.25,
        )

        return EndToEndResult(
            cotuning=result,
            baseline_metrics=baseline_metrics,
            best_metrics=dict(result.best_metrics),
            translation_trace=self.translator.trace(),
        )
