"""The single-loop autotuner (the ytopt flow of Figure 4).

The loop is exactly the paper's three steps: (1) the search algorithm
assigns values in the allowed ranges, (2) the evaluator ("plopper")
builds/runs the configuration and measures it, (3) the result is
appended to the performance database; repeat until ``max_evals``.  The
best configuration is read off the database at the end.

:class:`BatchAutotuner` is the batched/parallel variant: it drives the
same loop through :meth:`SearchAlgorithm.ask_batch` /
:meth:`SearchAlgorithm.tell_batch`, evaluates each batch through a
pluggable executor (:class:`SerialExecutor`, the thread-pool
:class:`ThreadedExecutor` for GIL-releasing / subprocess evaluators, or
the process-pool :class:`ProcessExecutor` for CPU-bound pure-Python
evaluators) and memoizes evaluator calls in an :class:`EvaluationCache`
keyed by the canonical configuration.  With ``batch_size=1``, a serial
executor and the cache disabled it reproduces the sequential
:class:`Autotuner` bit-for-bit.
"""

from __future__ import annotations

import math
import os
import pickle
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.constraints import ConstraintSet
from repro.core.objectives import Objective, PENALTY_OBJECTIVE, WeightedObjective, make_objective
from repro.core.search.base import SearchAlgorithm, config_key, make_search
from repro.core.space import ParameterSpace
from repro.telemetry.database import EvaluationRecord, PerformanceDatabase

__all__ = [
    "TuningResult",
    "Autotuner",
    "BatchAutotuner",
    "EvaluationCache",
    "SerialExecutor",
    "ThreadedExecutor",
    "ProcessExecutor",
    "make_executor",
]

#: An evaluator maps a configuration to a dictionary of measured metrics.
Evaluator = Callable[[Dict[str, Any]], Mapping[str, float]]

#: Internal evaluation outcome: (metrics, failed).
_Outcome = Tuple[Dict[str, float], bool]


class SerialExecutor:
    """Evaluates a batch in the calling thread, in order."""

    name = "serial"

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        return [fn(item) for item in items]


class ThreadedExecutor:
    """Evaluates a batch on a shared thread pool (order-preserving).

    Suited to evaluators that release the GIL or wait on subprocesses /
    I/O (real build-and-run ploppers); pure-Python evaluators gain little.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self.max_workers = max_workers
        self._pool: Optional[ThreadPoolExecutor] = None

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(max_workers=self.max_workers)
        return list(self._pool.map(fn, items))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Worker-process global holding the evaluator shipped at pool start-up.
_PROCESS_EVALUATOR: Optional[Evaluator] = None


def _process_worker_init(evaluator: Evaluator) -> None:
    """Pool initializer: install the evaluator once per worker process."""
    global _PROCESS_EVALUATOR
    _PROCESS_EVALUATOR = evaluator


def _process_worker_call(config: Dict[str, Any]) -> _Outcome:
    """Evaluate one configuration in a worker, mirroring ``_call_evaluator``.

    The exception-to-failure-metrics conversion must happen *inside* the
    worker: exceptions are data to the tuning loop, and letting them
    propagate would poison the whole ``Executor.map`` batch.
    """
    try:
        return dict(_PROCESS_EVALUATOR(config)), False
    except Exception as error:  # evaluator failures are data, not crashes
        metrics = {"error": 1.0, "error_message_hash": float(abs(hash(str(error))) % 10_000)}
        return metrics, True


class ProcessExecutor:
    """Evaluates a batch on a process pool (order-preserving).

    The executor for CPU-bound pure-Python evaluators, which the thread
    pool cannot speed up because of the GIL.  The contract: the evaluator
    must be *picklable* (a module-level function or a picklable callable
    object) — it is shipped to each worker once via the pool initializer,
    and batches are submitted in chunks so per-item IPC overhead is
    amortised.  Note ``error_message_hash`` of failures may differ from
    the in-process executors because string hashing is per-process.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None, chunksize: Optional[int] = None):
        self.max_workers = max_workers
        self.chunksize = chunksize
        self._evaluator: Optional[Evaluator] = None
        self._pool: Optional[ProcessPoolExecutor] = None

    def bind_evaluator(self, evaluator: Evaluator) -> None:
        """Declare the evaluator the pool will run (checked for picklability)."""
        try:
            pickle.dumps(evaluator)
        except Exception as error:
            raise TypeError(
                "the process executor requires a picklable evaluator "
                "(define it at module level, or use executor='thread'): "
                f"{error}"
            ) from error
        if self._pool is not None and evaluator is not self._evaluator:
            self.close()
        self._evaluator = evaluator

    def map(self, fn: Callable[[Any], Any], items: Sequence[Any]) -> List[Any]:
        """Evaluate ``items`` on the pool; order-preserving.

        NOTE: when an evaluator is bound, ``fn`` is *not* shipped to the
        workers — the pool runs the stock evaluate-and-convert-failures
        wrapper (:func:`_process_worker_call`) around the bound evaluator
        instead, because pickling an arbitrary ``fn`` (typically a tuner
        bound method) would drag the whole tuner object graph across the
        process boundary.  ``BatchAutotuner`` enforces this contract by
        rejecting subclasses that override ``_call_evaluator``.
        """
        items = list(items)
        if not items:
            return []
        if self._evaluator is None:
            # No bound evaluator (used outside BatchAutotuner): degrade to
            # in-process evaluation rather than pickling a bound method.
            return [fn(item) for item in items]
        if self._pool is None:
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_process_worker_init,
                initargs=(self._evaluator,),
            )
        workers = self.max_workers or os.cpu_count() or 1
        chunksize = self.chunksize or max(1, math.ceil(len(items) / (workers * 4)))
        return list(self._pool.map(_process_worker_call, items, chunksize=chunksize))

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


def make_executor(spec: Union[str, Any], max_workers: Optional[int] = None):
    """Resolve an executor spec (``"serial"``, ``"thread"``, ``"process"``
    or an object with a ``.map(fn, items)`` method)."""
    if not isinstance(spec, str):
        if not hasattr(spec, "map"):
            raise TypeError(f"executor {spec!r} must provide a .map(fn, items) method")
        return spec
    key = spec.strip().lower()
    if key == "serial":
        return SerialExecutor()
    if key in ("thread", "threads", "threadpool"):
        return ThreadedExecutor(max_workers=max_workers)
    if key in ("process", "processes", "processpool"):
        return ProcessExecutor(max_workers=max_workers)
    raise ValueError(f"unknown executor {spec!r}; available: serial, thread, process")


class EvaluationCache:
    """Memoizes evaluator outcomes keyed by the canonical configuration.

    Tuning loops revisit configurations constantly (small spaces, repeated
    acquisition winners); re-running the plopper for a configuration that
    has already been built and measured is pure waste.  Failures are
    memoized too — a deterministic evaluator fails again.
    """

    def __init__(self) -> None:
        self._data: Dict[tuple, _Outcome] = {}
        self.hits = 0
        self.misses = 0

    key = staticmethod(config_key)

    def get(self, key: tuple) -> Optional[_Outcome]:
        outcome = self._data.get(key)
        if outcome is None:
            self.misses += 1
            return None
        self.hits += 1
        return outcome

    def put(self, key: tuple, outcome: _Outcome) -> None:
        self._data[key] = outcome

    def __len__(self) -> int:
        return len(self._data)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    best_config: Optional[Dict[str, Any]]
    best_metrics: Dict[str, float]
    best_objective: float
    evaluations: int
    database: PerformanceDatabase
    objective_name: str
    infeasible_evaluations: int = 0
    failed_evaluations: int = 0
    convergence: List[float] = field(default_factory=list)
    #: Evaluation-cache statistics (always 0 for the sequential Autotuner).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Retry-with-backoff statistics (``BatchAutotuner`` with
    #: ``max_retries > 0``): attempts re-issued for failed evaluations,
    #: and how many of those ultimately succeeded.
    retried_evaluations: int = 0
    recovered_evaluations: int = 0

    @property
    def found_feasible(self) -> bool:
        return self.best_config is not None

    def summary(self) -> Dict[str, Any]:
        return {
            "objective": self.objective_name,
            "best_objective": self.best_objective,
            "best_config": self.best_config,
            "evaluations": self.evaluations,
            "infeasible": self.infeasible_evaluations,
            "failed": self.failed_evaluations,
        }


class Autotuner:
    """Ask / evaluate / tell loop over one parameter space."""

    def __init__(
        self,
        space: ParameterSpace,
        evaluator: Evaluator,
        objective: Union[str, Objective, WeightedObjective] = "runtime",
        constraints: Optional[ConstraintSet] = None,
        search: Union[str, SearchAlgorithm] = "forest",
        max_evals: int = 100,
        seed: int = 0,
        database: Optional[PerformanceDatabase] = None,
        name: str = "autotuner",
        infeasible_penalty_factor: float = 10.0,
    ):
        if max_evals < 1:
            raise ValueError("max_evals must be >= 1")
        self.space = space
        self.evaluator = evaluator
        self.objective = make_objective(objective) if isinstance(objective, str) else objective
        self.constraints = constraints or ConstraintSet()
        self.search = (
            make_search(search, space, seed=seed) if isinstance(search, str) else search
        )
        self.max_evals = int(max_evals)
        self.database = database if database is not None else PerformanceDatabase(name)
        self.name = name
        self.infeasible_penalty_factor = float(infeasible_penalty_factor)

    # -- evaluation of one configuration ---------------------------------------------------
    def _call_evaluator(self, config: Dict[str, Any]) -> _Outcome:
        """Run the evaluator, turning exceptions into failure metrics."""
        try:
            return dict(self.evaluator(config)), False
        except Exception as error:  # evaluator failures are data, not crashes
            metrics = {"error": 1.0, "error_message_hash": float(abs(hash(str(error))) % 10_000)}
            return metrics, True

    def _evaluate_one(self, config: Dict[str, Any]) -> EvaluationRecord:
        metrics, failed = self._call_evaluator(config)
        return self._record_evaluation(config, metrics, failed)

    def _record_evaluation(
        self, config: Dict[str, Any], metrics: Dict[str, float], failed: bool
    ) -> EvaluationRecord:
        feasible = (not failed) and self.constraints.allows_metrics(metrics)
        objective_value = PENALTY_OBJECTIVE if failed else float(self.objective(metrics))
        record = self.database.add_evaluation(
            config=config,
            metrics=metrics,
            objective=objective_value,
            elapsed_s=metrics.get("runtime_s", 0.0),
            feasible=feasible,
            tuner=self.name,
        )
        return record

    def _search_value(self, record: EvaluationRecord) -> float:
        """Objective value reported to the search (penalised when infeasible)."""
        if record.feasible:
            return record.objective
        if record.objective >= PENALTY_OBJECTIVE:
            return PENALTY_OBJECTIVE
        magnitude = abs(record.objective)
        return record.objective + self.infeasible_penalty_factor * (magnitude + 1.0)

    # -- main loop -------------------------------------------------------------------------------
    def run(
        self, callback: Optional[Callable[[int, EvaluationRecord], None]] = None
    ) -> TuningResult:
        """Run up to ``max_evals`` evaluations and return the best result."""
        infeasible = 0
        failed = 0
        convergence: List[float] = []
        best_feasible: Optional[EvaluationRecord] = None

        for index in range(self.max_evals):
            if self.search.is_exhausted():
                break
            config = self.search.ask()
            config = self.space.validate(config)
            if not self.space.is_allowed(config):
                # The search proposed a forbidden combination: reject without
                # spending an evaluation on it.
                self.search.tell(config, PENALTY_OBJECTIVE)
                continue

            record = self._evaluate_one(config)
            if not record.feasible:
                infeasible += 1
            if "error" in record.metrics:
                failed += 1
            self.search.tell(config, self._search_value(record))

            if record.feasible and (
                best_feasible is None or record.objective < best_feasible.objective
            ):
                best_feasible = record
            convergence.append(
                best_feasible.objective if best_feasible is not None else math.inf
            )
            if callback is not None:
                callback(index, record)

        best = best_feasible or self.database.best(minimize=True, feasible_only=False)
        return TuningResult(
            best_config=dict(best.config) if best is not None else None,
            best_metrics=dict(best.metrics) if best is not None else {},
            best_objective=best.objective if best is not None else math.inf,
            evaluations=len(self.database),
            database=self.database,
            objective_name=getattr(self.objective, "name", "objective"),
            infeasible_evaluations=infeasible,
            failed_evaluations=failed,
            convergence=convergence,
        )


class BatchAutotuner(Autotuner):
    """Batched ask/evaluate/tell loop with memoization and parallel evaluation.

    Per round the loop (1) asks the search for a whole batch, (2) rejects
    constraint-violating proposals without spending evaluations, (3)
    resolves the rest through the evaluation cache (which also
    deduplicates identical configurations within a batch), (4) runs the
    misses through the executor, and (5) reports the whole batch back
    with one ``tell_batch``.  Records land in the database in ask order,
    so with ``batch_size=1`` the run is indistinguishable from
    :class:`Autotuner`.

    ``cache_evaluations`` is opt-in (matching :class:`~repro.core.cotuner.CoTuner`
    and the end-to-end tuner): memoization assumes a deterministic
    evaluator — failures are cached too, so a flaky evaluator would pin
    a transient failure for the rest of the run.
    """

    def __init__(
        self,
        space: ParameterSpace,
        evaluator: Evaluator,
        batch_size: int = 16,
        executor: Union[str, Any] = "serial",
        max_workers: Optional[int] = None,
        cache_evaluations: bool = False,
        max_retries: int = 0,
        retry_backoff_s: float = 0.0,
        **kwargs: Any,
    ):
        super().__init__(space, evaluator, **kwargs)
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff_s < 0:
            raise ValueError("retry_backoff_s must be >= 0")
        self.batch_size = int(batch_size)
        self.max_retries = int(max_retries)
        self.retry_backoff_s = float(retry_backoff_s)
        self.retried_evaluations = 0
        self.recovered_evaluations = 0
        self.executor = make_executor(executor, max_workers=max_workers)
        # The process executor ships the evaluator to its workers once, at
        # pool start-up; it checks picklability here so a bad evaluator
        # fails fast instead of at the first batch.
        bind = getattr(self.executor, "bind_evaluator", None)
        if bind is not None:
            if type(self)._call_evaluator is not Autotuner._call_evaluator:
                raise TypeError(
                    "the process executor replicates the stock "
                    "Autotuner._call_evaluator inside its workers; a subclass "
                    "overriding _call_evaluator must use the serial or thread "
                    "executor instead"
                )
            bind(self.evaluator)
        self.cache: Optional[EvaluationCache] = (
            EvaluationCache() if cache_evaluations else None
        )

    def close(self) -> None:
        """Release executor resources (no-op for the serial executor)."""
        close = getattr(self.executor, "close", None)
        if close is not None:
            close()

    # -- batch evaluation ------------------------------------------------------------------
    def _map_with_retries(self, configs: List[Dict[str, Any]]) -> List[_Outcome]:
        """Executor map that re-issues failed evaluations with backoff.

        Straggling or transiently-poisoned evaluators (chaos profiles,
        flaky measurement hosts) get up to ``max_retries`` fresh attempts
        each, with exponential backoff between retry rounds.  The final
        outcome per position replaces the failed one, so a recovered
        evaluation is indistinguishable downstream from a first-try
        success — only the retry counters tell the story.
        """
        outcomes = list(self.executor.map(self._call_evaluator, configs))
        if self.max_retries <= 0:
            return outcomes
        for attempt in range(1, self.max_retries + 1):
            failed_positions = [i for i, (_, was_failed) in enumerate(outcomes) if was_failed]
            if not failed_positions:
                break
            if self.retry_backoff_s > 0:
                time.sleep(self.retry_backoff_s * (2 ** (attempt - 1)))
            retries = [configs[i] for i in failed_positions]
            self.retried_evaluations += len(retries)
            for i, outcome in zip(
                failed_positions, self.executor.map(self._call_evaluator, retries)
            ):
                if not outcome[1]:
                    self.recovered_evaluations += 1
                outcomes[i] = outcome
        return outcomes

    def _evaluate_batch(self, configs: List[Dict[str, Any]]) -> List[_Outcome]:
        """Outcomes for ``configs`` via cache + executor, in input order."""
        results: Dict[int, _Outcome] = {}
        if self.cache is None:
            return self._map_with_retries(configs)

        # Group cache misses by canonical key so within-batch duplicates
        # are evaluated once.
        pending: Dict[tuple, List[int]] = {}
        ordered_keys: List[tuple] = []
        for pos, config in enumerate(configs):
            key = self.cache.key(config)
            if key in pending:
                self.cache.hits += 1  # resolved by the in-flight duplicate
                pending[key].append(pos)
                continue
            cached = self.cache.get(key)
            if cached is not None:
                results[pos] = cached
            else:
                pending[key] = [pos]
                ordered_keys.append(key)
        misses = [configs[pending[key][0]] for key in ordered_keys]
        for key, outcome in zip(ordered_keys, self._map_with_retries(misses)):
            self.cache.put(key, outcome)
            for pos in pending[key]:
                results[pos] = outcome
        return [results[pos] for pos in range(len(configs))]

    # -- main loop -------------------------------------------------------------------------------
    def run(
        self, callback: Optional[Callable[[int, EvaluationRecord], None]] = None
    ) -> TuningResult:
        """Run up to ``max_evals`` evaluations in batches and return the best."""
        infeasible = 0
        failed = 0
        convergence: List[float] = []
        best_feasible: Optional[EvaluationRecord] = None
        slot = 0  # ask slots consumed, counting constraint rejections

        while slot < self.max_evals:
            if self.search.is_exhausted():
                break
            configs = self.search.ask_batch(min(self.batch_size, self.max_evals - slot))
            if not configs:
                break
            configs = [self.space.validate(config) for config in configs]
            allowed = [self.space.is_allowed(config) for config in configs]
            outcomes = self._evaluate_batch(
                [c for c, ok in zip(configs, allowed) if ok]
            )

            tell_values: List[float] = []
            outcome_iter = iter(outcomes)
            for config, ok in zip(configs, allowed):
                if not ok:
                    # Forbidden combination: reject without spending an
                    # evaluation on it (mirrors the sequential loop).
                    tell_values.append(PENALTY_OBJECTIVE)
                    slot += 1
                    continue
                metrics, was_failed = next(outcome_iter)
                record = self._record_evaluation(config, metrics, was_failed)
                if not record.feasible:
                    infeasible += 1
                if "error" in record.metrics:
                    failed += 1
                tell_values.append(self._search_value(record))
                if record.feasible and (
                    best_feasible is None or record.objective < best_feasible.objective
                ):
                    best_feasible = record
                convergence.append(
                    best_feasible.objective if best_feasible is not None else math.inf
                )
                if callback is not None:
                    callback(slot, record)
                slot += 1
            self.search.tell_batch(configs, tell_values)

        best = best_feasible or self.database.best(minimize=True, feasible_only=False)
        return TuningResult(
            best_config=dict(best.config) if best is not None else None,
            best_metrics=dict(best.metrics) if best is not None else {},
            best_objective=best.objective if best is not None else math.inf,
            evaluations=len(self.database),
            database=self.database,
            objective_name=getattr(self.objective, "name", "objective"),
            infeasible_evaluations=infeasible,
            failed_evaluations=failed,
            convergence=convergence,
            cache_hits=self.cache.hits if self.cache is not None else 0,
            cache_misses=self.cache.misses if self.cache is not None else 0,
            retried_evaluations=self.retried_evaluations,
            recovered_evaluations=self.recovered_evaluations,
        )
