"""The single-loop autotuner (the ytopt flow of Figure 4).

The loop is exactly the paper's three steps: (1) the search algorithm
assigns values in the allowed ranges, (2) the evaluator ("plopper")
builds/runs the configuration and measures it, (3) the result is
appended to the performance database; repeat until ``max_evals``.  The
best configuration is read off the database at the end.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.core.constraints import ConstraintSet
from repro.core.objectives import Objective, PENALTY_OBJECTIVE, WeightedObjective, make_objective
from repro.core.search.base import SearchAlgorithm, make_search
from repro.core.space import ParameterSpace
from repro.telemetry.database import EvaluationRecord, PerformanceDatabase

__all__ = ["TuningResult", "Autotuner"]

#: An evaluator maps a configuration to a dictionary of measured metrics.
Evaluator = Callable[[Dict[str, Any]], Mapping[str, float]]


@dataclass
class TuningResult:
    """Outcome of one tuning run."""

    best_config: Optional[Dict[str, Any]]
    best_metrics: Dict[str, float]
    best_objective: float
    evaluations: int
    database: PerformanceDatabase
    objective_name: str
    infeasible_evaluations: int = 0
    failed_evaluations: int = 0
    convergence: List[float] = field(default_factory=list)

    @property
    def found_feasible(self) -> bool:
        return self.best_config is not None

    def summary(self) -> Dict[str, Any]:
        return {
            "objective": self.objective_name,
            "best_objective": self.best_objective,
            "best_config": self.best_config,
            "evaluations": self.evaluations,
            "infeasible": self.infeasible_evaluations,
            "failed": self.failed_evaluations,
        }


class Autotuner:
    """Ask / evaluate / tell loop over one parameter space."""

    def __init__(
        self,
        space: ParameterSpace,
        evaluator: Evaluator,
        objective: Union[str, Objective, WeightedObjective] = "runtime",
        constraints: Optional[ConstraintSet] = None,
        search: Union[str, SearchAlgorithm] = "forest",
        max_evals: int = 100,
        seed: int = 0,
        database: Optional[PerformanceDatabase] = None,
        name: str = "autotuner",
        infeasible_penalty_factor: float = 10.0,
    ):
        if max_evals < 1:
            raise ValueError("max_evals must be >= 1")
        self.space = space
        self.evaluator = evaluator
        self.objective = make_objective(objective) if isinstance(objective, str) else objective
        self.constraints = constraints or ConstraintSet()
        self.search = (
            make_search(search, space, seed=seed) if isinstance(search, str) else search
        )
        self.max_evals = int(max_evals)
        self.database = database if database is not None else PerformanceDatabase(name)
        self.name = name
        self.infeasible_penalty_factor = float(infeasible_penalty_factor)

    # -- evaluation of one configuration ---------------------------------------------------
    def _evaluate_one(self, config: Dict[str, Any]) -> EvaluationRecord:
        failed = False
        try:
            metrics = dict(self.evaluator(config))
        except Exception as error:  # evaluator failures are data, not crashes
            metrics = {"error": 1.0, "error_message_hash": float(abs(hash(str(error))) % 10_000)}
            failed = True

        feasible = (not failed) and self.constraints.allows_metrics(metrics)
        objective_value = PENALTY_OBJECTIVE if failed else float(self.objective(metrics))
        record = self.database.add_evaluation(
            config=config,
            metrics=metrics,
            objective=objective_value,
            elapsed_s=metrics.get("runtime_s", 0.0),
            feasible=feasible,
            tuner=self.name,
        )
        return record

    def _search_value(self, record: EvaluationRecord) -> float:
        """Objective value reported to the search (penalised when infeasible)."""
        if record.feasible:
            return record.objective
        if record.objective >= PENALTY_OBJECTIVE:
            return PENALTY_OBJECTIVE
        magnitude = abs(record.objective)
        return record.objective + self.infeasible_penalty_factor * (magnitude + 1.0)

    # -- main loop -------------------------------------------------------------------------------
    def run(
        self, callback: Optional[Callable[[int, EvaluationRecord], None]] = None
    ) -> TuningResult:
        """Run up to ``max_evals`` evaluations and return the best result."""
        infeasible = 0
        failed = 0
        convergence: List[float] = []
        best_feasible: Optional[EvaluationRecord] = None

        for index in range(self.max_evals):
            if self.search.is_exhausted():
                break
            config = self.search.ask()
            config = self.space.validate(config)
            if not self.space.is_allowed(config):
                # The search proposed a forbidden combination: reject without
                # spending an evaluation on it.
                self.search.tell(config, PENALTY_OBJECTIVE)
                continue

            record = self._evaluate_one(config)
            if not record.feasible:
                infeasible += 1
            if "error" in record.metrics:
                failed += 1
            self.search.tell(config, self._search_value(record))

            if record.feasible and (
                best_feasible is None or record.objective < best_feasible.objective
            ):
                best_feasible = record
            convergence.append(
                best_feasible.objective if best_feasible is not None else math.inf
            )
            if callback is not None:
                callback(index, record)

        best = best_feasible or self.database.best(minimize=True, feasible_only=False)
        return TuningResult(
            best_config=dict(best.config) if best is not None else None,
            best_metrics=dict(best.metrics) if best is not None else {},
            best_objective=best.objective if best is not None else math.inf,
            evaluations=len(self.database),
            database=self.database,
            objective_name=getattr(self.objective, "name", "objective"),
            infeasible_evaluations=infeasible,
            failed_evaluations=failed,
            convergence=convergence,
        )
