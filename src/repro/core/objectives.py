"""Objective functions over the canonical metric vocabulary.

Section 3's framing: find "the best combination of different parameters
at the distinct layers (parameter space) for an optimal solution (the
smallest runtime, the lowest power, or the lowest energy) under a system
power cap."  An :class:`Objective` turns a measured metric dictionary
into a scalar to minimise; constraint handling (the "under a power cap"
part) lives in :mod:`repro.core.constraints` and the tuner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Sequence

from repro.telemetry.metrics import METRIC_REGISTRY

__all__ = ["Objective", "WeightedObjective", "make_objective", "PENALTY_OBJECTIVE"]

#: Objective value assigned to configurations that could not be evaluated.
PENALTY_OBJECTIVE = 1.0e18


@dataclass(frozen=True)
class Objective:
    """Minimise (or maximise) a single named metric."""

    metric: str
    minimize: bool = True
    name: str = ""

    def __post_init__(self) -> None:
        if not self.metric:
            raise ValueError("metric must not be empty")
        if not self.name:
            object.__setattr__(self, "name", ("min " if self.minimize else "max ") + self.metric)

    def __call__(self, metrics: Mapping[str, float]) -> float:
        """Scalar objective value (always to be minimised by the search)."""
        if self.metric not in metrics:
            return PENALTY_OBJECTIVE
        value = float(metrics[self.metric])
        return value if self.minimize else -value

    def readable(self, objective_value: float) -> float:
        """Convert a search-space objective back to the metric's natural sign."""
        return objective_value if self.minimize else -objective_value


@dataclass(frozen=True)
class WeightedObjective:
    """A weighted combination of metrics (all normalised to 'minimise')."""

    terms: tuple  # of (Objective, weight)
    name: str = "weighted"

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError("WeightedObjective needs at least one term")
        for _objective, weight in self.terms:
            if weight < 0:
                raise ValueError("weights must be >= 0")

    def __call__(self, metrics: Mapping[str, float]) -> float:
        total = 0.0
        for objective, weight in self.terms:
            value = objective(metrics)
            if value >= PENALTY_OBJECTIVE:
                return PENALTY_OBJECTIVE
            total += weight * value
        return total

    @classmethod
    def of(cls, weights: Mapping[str, float], name: str = "weighted") -> "WeightedObjective":
        terms = tuple((make_objective(metric), weight) for metric, weight in weights.items())
        return cls(terms=terms, name=name)


#: Shorthand names accepted by :func:`make_objective` in addition to raw
#: metric names from the registry.
_ALIASES: Dict[str, tuple] = {
    "runtime": ("runtime_s", True),
    "time": ("runtime_s", True),
    "energy": ("energy_j", True),
    "power": ("power_w", True),
    "edp": ("edp", True),
    "ed2p": ("ed2p", True),
    "throughput": ("throughput_jobs_per_hour", False),
    "ipc_per_watt": ("ipc_per_watt", False),
    "flops_per_watt": ("flops_per_watt", False),
    "power_efficiency": ("flops_per_watt", False),
    "energy_efficiency": ("flops_per_joule", False),
}


def make_objective(name: str) -> Objective:
    """Build an objective from a shorthand or canonical metric name.

    The optimisation direction comes from the metric registry (§2.2):
    runtime/power/energy/EDP are minimised, efficiency and throughput
    metrics are maximised.
    """
    key = name.strip().lower()
    if key in _ALIASES:
        metric, minimize = _ALIASES[key]
        return Objective(metric=metric, minimize=minimize)
    if key in METRIC_REGISTRY:
        return Objective(metric=key, minimize=METRIC_REGISTRY[key].minimize)
    raise ValueError(
        f"unknown objective {name!r}; use one of {sorted(_ALIASES)} or a metric name "
        f"from {sorted(METRIC_REGISTRY)}"
    )
