"""Standardised layer descriptions, terminology and component registry.

These registries are the machine-readable version of the paper's three
survey tables:

* :data:`LAYERS` — Table 1: per-layer objectives, telemetry, control
  parameters and methods,
* :data:`TERMS` — Table 3: definitions of the terms used by the
  end-to-end framework,
* :data:`EXISTING_COMPONENTS` — Table 2: the existing tools at each
  layer and the module of this package that re-implements each one.

Keeping them as data (rather than prose) lets the benchmarks regenerate
the tables directly from the code that implements the behaviour, so the
tables stay truthful as the framework evolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["LayerDescription", "LAYERS", "TERMS", "EXISTING_COMPONENTS", "layer_names"]


@dataclass(frozen=True)
class LayerDescription:
    """One row of Table 1."""

    name: str
    actors: Tuple[str, ...]
    objectives: Tuple[str, ...]
    telemetry: Tuple[str, ...]
    control_parameters: Tuple[str, ...]
    methods: Tuple[str, ...]


LAYERS: Dict[str, LayerDescription] = {
    "site": LayerDescription(
        name="site",
        actors=("facility manager", "electric grid / utility"),
        objectives=(
            "stay within the procured power band (power corridor)",
            "minimise energy cost across systems",
        ),
        telemetry=("site power", "ambient/water temperature", "energy price"),
        control_parameters=("per-system power budgets", "cooling setpoints"),
        methods=("contractual power bands", "demand response"),
    ),
    "system": LayerDescription(
        name="system (resource manager / job scheduler)",
        actors=("SLURM-like RM", "invasive RM"),
        objectives=(
            "maximise job throughput under the system power budget",
            "guaranteed rate of change / bounds on system power",
            "thermal-constrained performance optimisation",
        ),
        telemetry=(
            "per-node power and energy",
            "node temperatures",
            "queue wait times",
            "node utilisation",
            "job power budgets in use",
        ),
        control_parameters=(
            "number of nodes per job (moldable jobs)",
            "which nodes to select (variation / thermal aware)",
            "which job to run or backfill",
            "job power budgets",
            "job pause / resume / cancel / relaunch",
            "binary dependency selection",
        ),
        methods=(
            "power-aware scheduling and backfilling",
            "per-job power budget assignment",
            "dynamic resource redistribution (malleable jobs)",
            "idle node shutdown",
        ),
    ),
    "job": LayerDescription(
        name="job / runtime system",
        actors=("GEOPM", "Conductor", "COUNTDOWN", "MERIC/READEX", "EPOP"),
        objectives=(
            "power-constrained performance optimisation",
            "performance-constrained energy optimisation",
            "energy efficiency with bounded performance degradation",
        ),
        telemetry=(
            "job power / energy (RAPL)",
            "per-region runtime and IPC",
            "MPI wait and copy time",
            "application progress (epochs)",
        ),
        control_parameters=(
            "per-node power caps",
            "core frequency (P-states)",
            "uncore frequency",
            "thread count / concurrency throttling",
            "per-region configurations",
            "runtime aggressiveness level",
        ),
        methods=(
            "power balancing across nodes",
            "frequency scaling in MPI phases",
            "per-region best-configuration replay",
            "agent-based policy plugins",
        ),
    ),
    "application": LayerDescription(
        name="application",
        actors=("application developer", "application-level tuner (ytopt)"),
        objectives=(
            "minimise time to solution",
            "maximise calculations per timestep per watt",
        ),
        telemetry=("application progress metric", "per-phase timings", "solver iterations"),
        control_parameters=(
            "solver / preconditioner / smoother choices",
            "domain decomposition and blocking factors",
            "loop transformation parameters (tile, interchange, unroll)",
            "input deck options",
            "#threads / #processes",
        ),
        methods=(
            "algorithmic selection",
            "autotuning with surrogate models",
            "application-level instrumentation (ATP/regions)",
        ),
    ),
    "node": LayerDescription(
        name="node / hardware",
        actors=("node-level manager", "firmware"),
        objectives=(
            "enforce the node power cap",
            "stay below thermal limits",
        ),
        telemetry=(
            "RAPL energy counters",
            "package/DRAM power",
            "die temperature",
            "hardware performance counters (IPC, FLOPS)",
        ),
        control_parameters=(
            "RAPL power limits (package, DRAM)",
            "P-states / core frequency",
            "uncore frequency",
            "duty-cycle modulation (T-states)",
            "GPU frequency and power caps",
        ),
        methods=("RAPL capping", "DVFS governors", "duty cycling", "thermal throttling"),
    ),
    "system_software": LayerDescription(
        name="system software (compiler toolchain, MPI/OpenMP libraries)",
        actors=("compiler", "library maintainers"),
        objectives=("maximise generated-code efficiency", "minimise communication overhead"),
        telemetry=("compile time", "code efficiency (achieved FLOP rate)"),
        control_parameters=(
            "optimisation flags",
            "loop transformation pragmas",
            "JIT-enable parameters",
            "MPI / OpenMP library variant",
        ),
        methods=("flag tuning", "pragma autotuning (ytopt)", "JIT at relaunch"),
    ),
}


#: Table 3: definitions of terms.
TERMS: Dict[str, str] = {
    "tuning": (
        "Improving the target metric through better handling of available control "
        "parameters and configuration options without violating operating constraints."
    ),
    "co-tuning": (
        "Improving the target metrics of two or more layers of the PowerStack by "
        "incorporating cross-layer characteristics in the orchestration process."
    ),
    "end-to-end auto-tuning": (
        "Holistic co-tuning of all layers of the PowerStack."
    ),
    "control parameter": (
        "A knob exposed by a layer that affects performance, power or energy and can "
        "be set by an actor at that layer or the layer above."
    ),
    "telemetry": (
        "Measured or derived metrics reported by a layer to the layers above."
    ),
    "actor": "The software or human agent that owns the control parameters of a layer.",
    "power constraint": "A power limit applied and measured over a time window.",
    "energy goal": "An energy target assigned and measured over a job execution or system uptime.",
    "power corridor": (
        "Lower and upper bounds on site/system power usage within a specified time window."
    ),
    "power budget": "The share of the procured power assigned to a system, job or node.",
    "moldable job": (
        "A job whose resource allocation can be chosen at launch between a user-provided "
        "minimum and maximum, but not changed afterwards."
    ),
    "malleable job": "A job whose resource allocation can be changed while it runs.",
    "resource manager": (
        "The system-level software that allocates nodes and power to jobs and enforces "
        "site policies (e.g. SLURM)."
    ),
    "runtime system": (
        "The job-level software that manages power and performance of a running job "
        "(e.g. GEOPM, Conductor, COUNTDOWN, MERIC)."
    ),
    "endpoint": (
        "The shared-memory gateway between a persistent resource-manager daemon and the "
        "job-level power-management daemon."
    ),
    "job-aware interaction": (
        "An RM/runtime interaction that takes job behaviour (profiles or runtime telemetry) "
        "into account when applying power management decisions."
    ),
    "job-agnostic interaction": (
        "An RM/runtime interaction that is transparent to the application and does not use "
        "job behaviour."
    ),
}


#: Table 2: existing tools per layer and the module implementing our analogue.
EXISTING_COMPONENTS: Dict[str, List[Tuple[str, str]]] = {
    "system (resource manager / job scheduler)": [
        ("SLURM (power-aware plugin)", "repro.resource_manager.slurm.PowerAwareScheduler"),
        ("Invasive Resource Manager (IRM)", "repro.resource_manager.irm.InvasiveResourceManager"),
        ("PowerSched / power-aware backfilling", "repro.resource_manager.queue.JobQueue"),
    ],
    "job-level runtime system": [
        ("GEOPM", "repro.runtime.geopm.GeopmRuntime"),
        ("Conductor", "repro.runtime.conductor.ConductorRuntime"),
        ("COUNTDOWN", "repro.runtime.countdown.CountdownRuntime"),
        ("MERIC", "repro.runtime.meric.MericRuntime"),
        ("READEX / Periscope Tuning Framework", "repro.runtime.readex.ReadexTuner"),
        ("EPOP / Invasive MPI", "repro.runtime.epop.EpopRuntime"),
    ],
    "node-level management": [
        ("RAPL / msr-safe", "repro.hardware.rapl.RaplInterface"),
        ("cpufreq / DVFS governors", "repro.node_mgmt.dvfs.DvfsGovernor"),
        ("duty-cycle modulation runtime", "repro.node_mgmt.dutycycle.DutyCycleModulator"),
        ("node monitoring daemons", "repro.node_mgmt.monitor.NodeMonitor"),
    ],
    "application-level tuning": [
        ("ytopt (Clang pragma autotuning)", "repro.core.tuner.Autotuner"),
        ("plopper", "repro.compiler.plopper.Plopper"),
        ("ATP / application parameter plugins", "repro.runtime.readex.AtpParameter"),
        ("Hypre parameter selection", "repro.apps.hypre.HypreLaplacian"),
    ],
}


def layer_names() -> List[str]:
    return list(LAYERS)
