"""Job state machine and accounting as seen by the resource manager."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.apps.generator import JobRequest
from repro.apps.mpi import JobResult
from repro.hardware.node import Node

__all__ = ["JobState", "Job"]


class JobState(str, Enum):
    """Lifecycle states of a job in the resource manager."""

    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"


@dataclass
class Job:
    """A submitted job plus the RM's bookkeeping about it."""

    request: JobRequest
    state: JobState = JobState.PENDING
    submit_time_s: float = 0.0
    start_time_s: Optional[float] = None
    end_time_s: Optional[float] = None
    assigned_nodes: List[Node] = field(default_factory=list)
    power_budget_w: Optional[float] = None
    result: Optional[JobResult] = None
    #: GEOPM-style policy metadata recorded at launch (Figure 3 reporting).
    launch_metadata: Dict[str, object] = field(default_factory=dict)
    #: Times this job was re-queued after a node crash interrupted it.
    restarts: int = 0
    #: Mirror of ``request.job_id``: the id is immutable and read on
    #: every queue/ledger operation, so a plain attribute beats a
    #: property round trip at trace scale.
    job_id: str = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.job_id = self.request.job_id

    @property
    def is_active(self) -> bool:
        return self.state in (JobState.PENDING, JobState.RUNNING)

    @property
    def node_count(self) -> int:
        return len(self.assigned_nodes)

    # -- timing metrics -----------------------------------------------------------
    def wait_time_s(self) -> Optional[float]:
        """Queuing delay (None while still pending)."""
        if self.start_time_s is None:
            return None
        return self.start_time_s - self.submit_time_s

    def run_time_s(self) -> Optional[float]:
        if self.start_time_s is None or self.end_time_s is None:
            return None
        return self.end_time_s - self.start_time_s

    def turnaround_s(self) -> Optional[float]:
        if self.end_time_s is None:
            return None
        return self.end_time_s - self.submit_time_s

    # -- state transitions ------------------------------------------------------------
    def mark_started(self, time_s: float, nodes: List[Node], power_budget_w: Optional[float]) -> None:
        if self.state is not JobState.PENDING:
            raise RuntimeError(f"cannot start job {self.job_id} in state {self.state}")
        self.state = JobState.RUNNING
        self.start_time_s = time_s
        self.assigned_nodes = list(nodes)
        self.power_budget_w = power_budget_w

    def mark_completed(self, time_s: float, result: Optional[JobResult]) -> None:
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"cannot complete job {self.job_id} in state {self.state}")
        self.state = JobState.COMPLETED
        self.end_time_s = time_s
        self.result = result

    def mark_cancelled(self, time_s: float) -> None:
        if self.state in (JobState.COMPLETED, JobState.FAILED):
            raise RuntimeError(f"cannot cancel job {self.job_id} in state {self.state}")
        self.state = JobState.CANCELLED
        self.end_time_s = time_s

    def mark_failed(self, time_s: float) -> None:
        self.state = JobState.FAILED
        self.end_time_s = time_s

    def mark_requeued(self, time_s: float) -> None:
        """Return an interrupted RUNNING job to PENDING (crash recovery).

        Launch-specific state is reset; ``submit_time_s`` is kept, so
        wait-time accounting charges the full queue-to-final-start span.
        """
        if self.state is not JobState.RUNNING:
            raise RuntimeError(f"cannot requeue job {self.job_id} in state {self.state}")
        self.state = JobState.PENDING
        self.start_time_s = None
        self.end_time_s = None
        self.assigned_nodes = []
        self.power_budget_w = None
        self.result = None
        self.restarts += 1

    def accounting(self) -> Dict[str, float]:
        """Accounting record for the scheduler statistics."""
        record: Dict[str, float] = {
            "nodes": float(self.node_count),
            "power_budget_w": float(self.power_budget_w or 0.0),
        }
        if self.wait_time_s() is not None:
            record["wait_s"] = float(self.wait_time_s())
        if self.run_time_s() is not None:
            record["runtime_s"] = float(self.run_time_s())
        if self.turnaround_s() is not None:
            record["turnaround_s"] = float(self.turnaround_s())
        if self.result is not None:
            record["energy_j"] = self.result.energy_j
            record["avg_power_w"] = self.result.average_power_w
        return record
