"""Power-aware resource manager / job scheduler (SLURM analogue).

Implements the system layer of the PowerStack: a FCFS + EASY-backfill
scheduler that is *power aware* in the three ways the paper's use cases
need:

* **system power budget** — the sum of the per-job power budgets never
  exceeds the site's schedulable power (§3.2.2's contractual limits);
* **power-aware node selection** — under a power cap, processors with
  better manufacturing variation sustain higher frequency, so the
  scheduler hands the most efficient (or coolest) free nodes to each job
  (§3.1.1);
* **job-level power budgets and launch policies** — each launch derives
  a job budget from the site policy and attaches a job-level runtime
  (GEOPM by default) configured with that budget (Figure 3).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.apps.generator import JobRequest
from repro.apps.mpi import MpiJobSimulator, RuntimeHooks
from repro.faults import injector as _faults
from repro.hardware.cluster import Cluster
from repro.hardware.node import Node
from repro.resource_manager.job import Job, JobState
from repro.resource_manager.policies import (
    GeopmPolicyMode,
    JobPowerPolicy,
    PolicyAssigner,
    SitePolicies,
)
from repro.resource_manager.queue import JobQueue
from repro.runtime.base import JobRuntime
from repro.runtime.geopm import GeopmEndpoint, GeopmRuntime
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.telemetry.sampler import PowerTimeSeries

__all__ = [
    "SchedulerConfig",
    "SchedulerStats",
    "LaunchPlan",
    "NodeAvailabilityProfile",
    "PowerAwareScheduler",
]

#: Signature of a runtime factory: (job, power_budget_w, scheduler) -> hooks.
RuntimeFactory = Callable[[Job, Optional[float], "PowerAwareScheduler"], RuntimeHooks]

#: Reservation fallback when the availability profile never frees enough
#: nodes for the head job (nothing to backfill against).
PESSIMISTIC_SHADOW_S = 10 * 3600.0

#: Owner-id prefix for nodes drained after a crash.  Quarantine entries
#: live in the availability profile under this prefix, so the EASY
#: reservation accounts for repairs-in-progress like any pending release.
QUARANTINE_PREFIX = "__quarantine__"


class NodeAvailabilityProfile:
    """Running-job release profile for O(running) reservation computation.

    Keeps ``(estimated_release_time, node_count)`` entries sorted by
    release time, maintained incrementally at every launch and release,
    so the head job's earliest-start ("shadow") computation is one
    cumulative sum over the profile instead of a per-call sort of the
    whole running set.
    """

    def __init__(self) -> None:
        self._keys: List[Tuple[float, str]] = []
        self._counts: List[int] = []
        self._entries: Dict[str, Tuple[float, int]] = {}
        #: Cumulative-count cache, invalidated on mutation: between
        #: launches/releases every shadow-time query reuses one cumsum.
        self._cum: Optional[np.ndarray] = None

    def __len__(self) -> int:
        return len(self._keys)

    def add(self, job_id: str, release_time_s: float, node_count: int) -> None:
        if job_id in self._entries:
            self.remove(job_id)
        key = (release_time_s, job_id)
        i = bisect.bisect_left(self._keys, key)
        self._keys.insert(i, key)
        self._counts.insert(i, int(node_count))
        self._entries[job_id] = (release_time_s, int(node_count))
        self._cum = None

    def remove(self, job_id: str) -> None:
        entry = self._entries.pop(job_id, None)
        if entry is None:
            return
        i = bisect.bisect_left(self._keys, (entry[0], job_id))
        del self._keys[i]
        del self._counts[i]
        self._cum = None

    def update_count(self, job_id: str, node_count: int) -> None:
        """Adjust a job's node count in place (malleable grow/shrink)."""
        entry = self._entries.get(job_id)
        if entry is None or entry[1] == node_count:
            return
        self.add(job_id, entry[0], node_count)

    def earliest_start(self, needed: int, free_count: int, now_s: float) -> float:
        """Earliest time ``needed`` nodes are expected to be available."""
        if free_count >= needed:
            return now_s
        if not self._counts:
            return now_s + PESSIMISTIC_SHADOW_S
        if self._cum is None:
            self._cum = np.cumsum(self._counts)
        cumulative = self._cum
        idx = int(np.searchsorted(cumulative, needed - free_count))
        if idx >= len(self._keys):
            return now_s + PESSIMISTIC_SHADOW_S
        return max(self._keys[idx][0], now_s)


@dataclass(frozen=True)
class LaunchPlan:
    """Outcome of the shared feasibility kernel for one candidate job.

    Backfill candidacy (:meth:`PowerAwareScheduler._fits_now`) and the
    actual launch (:meth:`PowerAwareScheduler._try_start`) both consume
    the same plan, so they can never disagree on the candidate node set,
    the budget inputs, or power feasibility.
    """

    node_count: int
    node_indices: Tuple[int, ...]
    budget_w: Optional[float]
    commitment_w: float


@dataclass
class SchedulerConfig:
    """Tunable configuration of the scheduler (its Table 1 parameters)."""

    scheduling_interval_s: float = 10.0
    monitor_interval_s: float = 5.0
    power_aware_node_selection: bool = True
    thermal_aware_node_selection: bool = False
    backfill: bool = True
    #: Per-job static imbalance passed to the job simulator.
    static_imbalance: float = 0.08
    imbalance_sigma: float = 0.03
    #: Optional cap on how long the scheduler keeps scheduling (safety net).
    max_simulated_time_s: Optional[float] = None
    runtime_factory: Optional[RuntimeFactory] = None
    #: Crash-recovery policy (only exercised under fault injection):
    #: re-queue interrupted jobs, up to ``max_restarts`` times each, and
    #: quarantine the dead node for ``quarantine_repair_s`` seconds
    #: (``None`` = take the repair time from the fault plan).
    requeue_on_crash: bool = True
    max_restarts: int = 2
    quarantine_repair_s: Optional[float] = None
    #: Drive node selection / feasibility / reservations on the cluster's
    #: struct-of-arrays state (the default).  ``False`` selects the scalar
    #: per-``Node``-list reference path, which must stay decision-identical
    #: (bench_perf_scheduler_scale asserts bit-equal schedules).
    vectorized: bool = True
    #: Simulation driver.  ``"event"`` (the default) arms wakeups only for
    #: real state changes — arrivals, completions, repairs, explicit
    #: schedule requests — and fast-forwards over idle time (the power
    #: monitor suspends while nothing runs and replays its sampling grid
    #: bit-exactly on wake).  ``"interval"`` keeps the historical
    #: fixed-tick scheduler/monitor loops; the two drivers are
    #: decision-identical on continuous-time traces (the parity suite in
    #: tests/test_event_driver_parity.py pins start times, node
    #: assignments and stats across both).
    driver: str = "event"
    #: Bound on how many queued jobs one backfill sweep examines past the
    #: FCFS head (SLURM's ``bf_max_job_test``).  ``None`` keeps the
    #: exhaustive historical sweep; mega-scale traces set a depth so a
    #: pass is O(schedulable), not O(pending).
    backfill_depth: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheduling_interval_s <= 0 or self.monitor_interval_s <= 0:
            raise ValueError("intervals must be positive")
        if self.static_imbalance < 0 or self.imbalance_sigma < 0:
            raise ValueError("imbalance parameters must be >= 0")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be >= 0")
        if self.quarantine_repair_s is not None and self.quarantine_repair_s <= 0:
            raise ValueError("quarantine_repair_s must be positive")
        if self.driver not in ("event", "interval"):
            raise ValueError(f"driver must be 'event' or 'interval', got {self.driver!r}")
        if self.backfill_depth is not None and self.backfill_depth < 1:
            raise ValueError("backfill_depth must be >= 1 (or None for unbounded)")


@dataclass
class SchedulerStats:
    """Aggregate statistics after (or during) a scheduling run."""

    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_cancelled: int = 0
    makespan_s: float = 0.0
    mean_wait_s: float = 0.0
    mean_turnaround_s: float = 0.0
    throughput_jobs_per_hour: float = 0.0
    node_utilization: float = 0.0
    total_energy_j: float = 0.0
    mean_system_power_w: float = 0.0
    peak_system_power_w: float = 0.0
    committed_power_w: float = 0.0
    backfilled_jobs: int = 0
    #: Crash-recovery accounting — populated only under fault injection.
    jobs_requeued: int = 0
    nodes_quarantined: int = 0
    crash_failures: int = 0
    reclaimed_power_w: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        out = {
            "jobs_submitted": float(self.jobs_submitted),
            "jobs_completed": float(self.jobs_completed),
            "jobs_cancelled": float(self.jobs_cancelled),
            "makespan_s": self.makespan_s,
            "mean_wait_s": self.mean_wait_s,
            "mean_turnaround_s": self.mean_turnaround_s,
            "throughput_jobs_per_hour": self.throughput_jobs_per_hour,
            "node_utilization": self.node_utilization,
            "total_energy_j": self.total_energy_j,
            "mean_system_power_w": self.mean_system_power_w,
            "peak_system_power_w": self.peak_system_power_w,
            "committed_power_w": self.committed_power_w,
            "backfilled_jobs": float(self.backfilled_jobs),
        }
        # Crash counters appear only when chaos actually fired, so
        # fault-free runs keep their historical (golden-pinned) shape.
        if (
            self.jobs_requeued
            or self.nodes_quarantined
            or self.crash_failures
            or self.reclaimed_power_w
        ):
            out.update(
                {
                    "jobs_requeued": float(self.jobs_requeued),
                    "nodes_quarantined": float(self.nodes_quarantined),
                    "crash_failures": float(self.crash_failures),
                    "reclaimed_power_w": self.reclaimed_power_w,
                }
            )
        return out


class PowerAwareScheduler:
    """FCFS + backfill scheduler with system power budgeting."""

    def __init__(
        self,
        env: Environment,
        cluster: Cluster,
        policies: Optional[SitePolicies] = None,
        config: Optional[SchedulerConfig] = None,
        streams: Optional[RandomStreams] = None,
    ):
        self.env = env
        self.cluster = cluster
        self.policies = policies or SitePolicies(
            system_power_budget_w=cluster.system_power_budget_w
        )
        self.config = config or SchedulerConfig()
        self.streams = streams or RandomStreams(0)
        self.policy_assigner = PolicyAssigner(self.policies)

        self.queue = JobQueue()
        self.jobs: Dict[str, Job] = {}
        self.running: Dict[str, Job] = {}
        self.completed: List[Job] = []
        self.runtime_handles: Dict[str, RuntimeHooks] = {}
        self.endpoints: Dict[str, GeopmEndpoint] = {}
        self.power_series = PowerTimeSeries("system")
        self.backfilled_jobs = 0

        self._committed_power_w = 0.0
        self._busy_node_seconds = 0.0
        self._last_utilization_sample_s = env.now
        self._started = False
        self._sims: Dict[str, MpiJobSimulator] = {}
        self._expected_submissions = 0
        #: Incremental release profile backing the EASY reservation.
        self._availability = NodeAvailabilityProfile()
        #: Power commitment recorded per launch, so release is symmetric
        #: even when a job's budget is retuned while it runs.
        self._commitments: Dict[str, float] = {}
        #: Nodes currently owned by each job (updated on malleable resizes),
        #: released in _finish.
        self._owned_nodes: Dict[str, List[Node]] = {}
        #: Tightest head-job reservation ever promised, per job id.  The
        #: EASY invariant (a backfill never delays the head past its
        #: reservation) is asserted against this map by the test suite.
        self.head_reservations: Dict[str, float] = {}
        #: Crash recovery (fault injection): job_id -> crashed hostname,
        #: consumed by _job_process when the interrupted simulator unwinds.
        self._crashed: Dict[str, str] = {}
        #: Drained nodes: hostname -> estimated repair-complete time.
        self.quarantined: Dict[str, float] = {}
        self.jobs_requeued = 0
        self.nodes_quarantined = 0
        self.crash_failures = 0
        self.reclaimed_power_w = 0.0

        # -- event-driven driver state -------------------------------------
        #: Jobs that have left the active (PENDING/RUNNING) set, maintained
        #: incrementally so run_until_complete's liveness check is O(1)
        #: instead of scanning every submitted job per event step.
        self._finished_count = 0
        #: Event driver: a pass is armed at the next scheduler-grid time
        #: (interval-parity for mutations no event follows, e.g. cancel).
        self._grid_pass_armed = False
        #: Next scheduler tick-grid time (event driver), advanced with the
        #: same float accumulation the interval loop uses so deferred
        #: passes land on bit-identical timestamps.
        self._sched_grid: Optional[float] = None
        #: Suspended-monitor state (event driver): while no job runs the
        #: monitor process parks on ``_mon_wake`` and ``_mon_next`` holds
        #: the first unsampled grid time; wakes replay the missed grid
        #: bit-exactly before any state mutation.
        self._mon_suspended = False
        self._mon_wake = None
        self._mon_next = 0.0
        #: Cached hostname list for fault-injection sweeps (the node set
        #: is immutable; rebuilding this per monitor sample is O(n) waste).
        self._all_hostnames: Optional[List[str]] = None
        # -- O(schedulable) pass state -------------------------------------
        #: Feasibility epoch: bumped whenever anything _plan_launch depends
        #: on changes (free-set version, committed power, schedulable
        #: power).  A job marked infeasible at the current epoch cannot
        #: have become feasible, so passes skip it without re-planning.
        self._feas_epoch = 0
        self._feas_key: Optional[Tuple[int, float, float]] = None
        self._infeasible_at: Dict[str, int] = {}
        #: Ranked-free-node cache, valid for one free-set version (the
        #: efficiency key is immutable, so equal versions rank equally).
        self._ranked_cache: Optional[np.ndarray] = None
        self._ranked_cache_version = -1

    # -- public API ------------------------------------------------------------------
    def submit(self, request: JobRequest) -> Job:
        """Submit a job now; scheduling is attempted immediately.

        Jobs that can never run on this cluster — no node count satisfies
        the application's rank constraint, or the smallest acceptable
        count exceeds the machine — are rejected (FAILED) instead of
        queued, so one malformed request cannot wedge the FCFS head and
        starve the queue forever.
        """
        job = self._enqueue(request)
        if job.state is JobState.PENDING:
            self._schedule()
        return job

    def _enqueue(self, request: JobRequest) -> Job:
        """Register + queue one request without running a pass."""
        if request.job_id in self.jobs:
            raise ValueError(f"duplicate job id {request.job_id!r}")
        job = Job(request=request, submit_time_s=self.env.now)
        self.jobs[request.job_id] = job
        acceptable = request.acceptable_node_counts()
        if not acceptable or min(acceptable) > len(self.cluster):
            job.mark_failed(self.env.now)
            self._finished_count += 1
            job.launch_metadata["reject_reason"] = (
                "no acceptable node count fits this cluster "
                f"(acceptable={acceptable}, cluster={len(self.cluster)} nodes)"
            )
            return job
        self.queue.push(job)
        return job

    def submit_trace(self, requests: Sequence[JobRequest]) -> None:
        """Submit a whole trace, honouring each request's arrival time."""
        self._expected_submissions += len(requests)
        self.env.process(self._arrival_process(list(requests)))

    def start(self) -> None:
        """Start the driver processes (monitor; plus ticks under "interval")."""
        if self._started:
            return
        self._started = True
        self._sched_grid = self.env.now
        if self.config.driver == "interval":
            self.env.process(self._scheduler_loop())
            self.env.process(self._monitor_loop())
        else:
            self.env.process(self._event_monitor_loop())

    def run_until_complete(self, extra_time_s: float = 0.0) -> "SchedulerStats":
        """Convenience driver: run the DES until all submitted jobs finished."""
        self.start()
        guard = 0
        while (
            len(self.jobs) < self._expected_submissions
            or self._finished_count < len(self.jobs)
            # Cancelled jobs stay in `running` until their simulator
            # unwinds; keep driving the DES so their nodes are reclaimed.
            or self.running
        ):
            horizon = self.env.peek()
            if horizon == float("inf"):
                break
            self.env.run(until=horizon)
            guard += 1
            if guard > 100_000_000:  # pragma: no cover - runaway guard
                raise RuntimeError("scheduler did not converge")
        if extra_time_s > 0:
            self.env.run(until=self.env.now + extra_time_s)
        # A suspended monitor owes the tail of its sampling grid (idle
        # fast-forward skipped the ticks; nothing changed, so replaying
        # them now is bit-identical to having ticked through).
        self._monitor_catch_up(up_to_now=True)
        return self.stats()

    # -- DES processes ------------------------------------------------------------------
    def _arrival_process(self, requests: List[JobRequest]):
        """Submit requests at their arrival times, one pass per timestamp.

        Same-timestamp arrivals (common in integer-stamped SWF traces)
        are queued as a batch before a single scheduling pass: the pass's
        FCFS fixpoint loop launches them in submission order with exactly
        the per-launch state updates per-submit passes would have made,
        so coalescing is decision-identical while saving O(batch) full
        passes.
        """
        requests = sorted(requests, key=lambda r: r.arrival_time_s)
        i, n = 0, len(requests)
        while i < n:
            delay = requests[i].arrival_time_s - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            arrived = requests[i].arrival_time_s
            progressed = False
            while i < n and requests[i].arrival_time_s == arrived:
                job = self._enqueue(requests[i])
                progressed = progressed or job.state is JobState.PENDING
                i += 1
            if progressed:
                self._schedule()

    def _scheduler_loop(self):
        while True:
            if (
                self.config.max_simulated_time_s is not None
                and self.env.now > self.config.max_simulated_time_s
            ):
                return
            self._schedule()
            yield self.env.timeout(self.config.scheduling_interval_s)

    def _monitor_loop(self):
        while True:
            self._sample_power()
            yield self.env.timeout(self.config.monitor_interval_s)

    def _event_monitor_loop(self):
        """Event-driver monitor: tick while jobs run, suspend while idle.

        While the running set is non-empty this is the interval monitor
        verbatim (same sample times, same timeout accumulation — the
        samples are bit-identical).  When the machine idles the process
        parks on an event instead of burning a wakeup every interval;
        :meth:`_monitor_catch_up` replays the skipped grid samples — at
        their historical timestamps, with provably unchanged state —
        before anything mutates power/allocation state.
        """
        interval = self.config.monitor_interval_s
        while True:
            self._sample_power()
            if self.running:
                yield self.env.timeout(interval)
                continue
            self._mon_suspended = True
            self._mon_next = self.env.now + interval
            self._mon_wake = self.env.event()
            yield self._mon_wake
            # Resumed (and caught up) by _resume_monitor; land the next
            # real sample back on the historical grid.
            delay = self._mon_next - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)

    # repro-lint: hot
    def _monitor_catch_up(self, up_to_now: bool = False) -> None:
        """Replay grid samples the suspended monitor skipped (< now).

        Valid only because nothing that the sample reads — node power
        draw, the free mask, package temperatures — changes while zero
        jobs run, except through the replayed samples themselves (thermal
        excursions consume their RNG streams in replay order, exactly as
        interval ticks would have).  Callers must invoke this BEFORE
        mutating any of that state.
        """
        if not self._mon_suspended:
            return
        interval = self.config.monitor_interval_s
        now = self.env.now
        while self._mon_next < now or (up_to_now and self._mon_next == now):
            self._sample_power(at=self._mon_next)
            self._mon_next = self._mon_next + interval

    # repro-lint: hot
    def _resume_monitor(self) -> None:
        """Wake the suspended monitor (first launch after an idle spell)."""
        if not self._mon_suspended:
            return
        self._mon_suspended = False
        self._mon_wake.succeed()

    def _sample_power(self, at: Optional[float] = None) -> None:
        now = self.env.now if at is None else at
        inj = _faults.active()
        if inj is not None and inj.enabled:
            cluster = self.cluster
            if self._all_hostnames is None:
                self._all_hostnames = [node.hostname for node in cluster.nodes]
            # Thermal excursions land on the monitoring tick: an eligible
            # node's packages spike, which thermal-aware selection and the
            # BMC cpu_temp sensor then observe.
            for hostname, delta_c in inj.thermal_excursions(self._all_hostnames):
                cluster.state.pkg_temperature_c[cluster.node(hostname).node_id] += delta_c
                cluster.state.power_inputs_version += 1
        busy = self.cluster.state.busy_count
        dt = now - self._last_utilization_sample_s
        if dt > 0:
            self._busy_node_seconds += busy * dt
            self._last_utilization_sample_s = now
        self.power_series.record(now, self.cluster.instantaneous_power_w())

    # -- power accounting ------------------------------------------------------------------
    @property
    def committed_power_w(self) -> float:
        """Power currently committed to running jobs (their budgets)."""
        return self._committed_power_w

    def _commitment_for(self, nodes: Sequence[Node], budget_w: Optional[float]) -> float:
        return self._commitment_for_count(len(nodes), budget_w)

    def _commitment_for_count(self, count: int, budget_w: Optional[float]) -> float:
        """Commitment of an uncapped job is its nodes' worst-case draw."""
        if budget_w is not None:
            return budget_w
        return count * self.cluster.spec.node.tdp_w

    # -- scheduling core ----------------------------------------------------------------------
    def _free_count(self) -> int:
        if self.config.vectorized:
            return self.cluster.state.free_count
        return len(self.cluster.free_nodes())

    def _ranked_free_indices(self) -> Sequence[int]:
        """Free nodes in selection order (best-first for the active policy).

        The vectorized non-thermal ranking is memoized per free-set
        version: the efficiency key is immutable after construction, so
        an unchanged free mask ranks identically and one argsort serves
        every candidate a pass plans.  Thermal ranking keys on drifting
        temperatures and stays uncached.
        """
        if self.config.vectorized:
            if self.config.thermal_aware_node_selection:
                return self.cluster.rank_free_by_temperature()
            state = self.cluster.state
            if (
                self._ranked_cache is not None
                and self._ranked_cache_version == state.free_version
            ):
                return self._ranked_cache
            if self.config.power_aware_node_selection:
                ranked = self.cluster.rank_free_by_efficiency()
            else:
                ranked = self.cluster.free_node_indices()
            self._ranked_cache = ranked
            self._ranked_cache_version = state.free_version
            return ranked
        free = self.cluster.free_nodes()
        if self.config.thermal_aware_node_selection:
            ranked = self.cluster.rank_nodes_by_temperature(free)
        elif self.config.power_aware_node_selection:
            ranked = self.cluster.rank_nodes_by_efficiency(free)
        else:
            ranked = free
        return [n.node_id for n in ranked]

    def _choose_node_count(self, job: Job, free_count: int) -> Optional[int]:
        """Node count to start the job with (moldable jobs shrink to fit)."""
        acceptable = job.request.acceptable_node_counts()
        if not acceptable:
            return None
        fitting = [n for n in acceptable if n <= free_count]
        if not fitting:
            return None
        preferred = job.request.nodes_requested
        if preferred in fitting:
            return preferred
        return max(fitting)

    # repro-lint: hot
    def _plan_launch(self, job: Job) -> Optional[LaunchPlan]:
        """Shared feasibility kernel: candidate node set + budget + power check.

        Both backfill candidacy (:meth:`_fits_now`) and the actual launch
        (:meth:`_try_start`) evaluate THIS plan — the ranked candidate
        set and the budget inputs are computed once, so candidacy and
        launch cannot disagree under manufacturing variation (the ranked
        set differs from node-id order precisely when variation matters).
        """
        count = self._choose_node_count(job, self._free_count())
        if count is None:
            return None
        ranked = self._ranked_free_indices()
        if len(ranked) < count:
            return None
        chosen = ranked[:count]
        indices = tuple(chosen.tolist() if isinstance(chosen, np.ndarray) else chosen)
        spec = self.cluster.spec.node
        budget = self.policies.job_budget_w(
            job_nodes=count,
            total_nodes=len(self.cluster),
            committed_power_w=self._committed_power_w,
            node_tdp_w=self.cluster.nodes[indices[0]].max_power_w(),
            node_min_w=spec.min_power_w,
        )
        commitment = self._commitment_for_count(count, budget)
        if (
            self._committed_power_w + commitment
            > self.policies.schedulable_power_w + 1e-6
        ):
            return None
        return LaunchPlan(count, indices, budget, commitment)

    def _try_start(self, job: Job, backfill: bool = False) -> bool:
        plan = self._plan_launch(job)
        if plan is None:
            return False
        nodes = self.cluster.nodes_at(plan.node_indices)
        self._launch(job, nodes, plan.budget_w, backfilled=backfill, plan=plan)
        return True

    def _fits_now(self, job: Job) -> bool:
        return self._plan_launch(job) is not None

    # repro-lint: hot
    def _feasibility_epoch(self) -> int:
        """Epoch of everything :meth:`_plan_launch` depends on.

        A launch plan is a pure function of (free-set identity, committed
        power, schedulable power, the job's own immutable request), so a
        job found infeasible at some epoch is still infeasible while the
        epoch holds — passes skip it without re-planning.  Thermal-aware
        selection additionally keys on drifting temperatures and opts out
        of marks entirely.
        """
        key = (
            self.cluster.state.free_version,
            self._committed_power_w,
            self.policies.schedulable_power_w,
        )
        if key != self._feas_key:
            self._feas_key = key
            self._feas_epoch += 1
        return self._feas_epoch

    # repro-lint: hot
    def _schedule(self) -> None:
        """One scheduling pass: FCFS head first, then EASY backfill.

        The head's reservation (shadow time) is recomputed from the
        availability profile after *every* backfill launch, and the
        remaining candidates are re-filtered against the fresh value, so
        a later backfill can never ride on a stale reservation and delay
        the head job.

        Per-job infeasibility marks make the pass O(schedulable): a job
        that failed to plan is remembered against the current feasibility
        epoch and skipped — provably without changing any decision —
        until launches/releases/budget changes bump the epoch.
        """
        use_marks = not self.config.thermal_aware_node_selection
        marks = self._infeasible_at
        progressed = True
        while progressed:
            progressed = False
            head = self.queue.head()
            if head is None:
                return
            if use_marks and marks.get(head.job_id) == self._feasibility_epoch():
                break
            if self._try_start(head):
                self.queue.remove(head)
                marks.pop(head.job_id, None)
                progressed = True
            elif use_marks:
                marks[head.job_id] = self._feasibility_epoch()
        if not self.config.backfill:
            return
        head = self.queue.head()
        if head is None:
            return
        shadow = self._shadow_time(head)
        self._record_reservation(head, shadow)

        def fits(job: Job) -> bool:
            if use_marks and marks.get(job.job_id) == self._feasibility_epoch():
                return False
            ok = self._fits_now(job)
            if not ok and use_marks:
                marks[job.job_id] = self._feasibility_epoch()
            return ok

        candidates = self.queue.backfill_candidates(
            self.env.now, shadow, fits=fits,
            max_candidates=self.config.backfill_depth,
        )
        for job in candidates:
            # Re-filter against the reservation as recomputed after the
            # previous backfill launch (stale-shadow EASY fix).
            if self.env.now + job.request.walltime_estimate_s > shadow:
                continue
            plan = self._plan_launch(job)
            if plan is None:
                if use_marks:
                    marks[job.job_id] = self._feasibility_epoch()
                continue
            self._launch(
                job, self.cluster.nodes_at(plan.node_indices), plan.budget_w,
                backfilled=True, plan=plan,
            )
            self.queue.remove(job)
            marks.pop(job.job_id, None)
            self.backfilled_jobs += 1
            shadow = self._shadow_time(head)
            self._record_reservation(head, shadow)

    # repro-lint: hot
    def _request_schedule(self) -> None:
        """Run a pass for the current timestamp, inline, under both drivers.

        Completion-triggered passes deliberately stay per-trigger: node
        selection ranks the free pool at pass time, so batching two
        same-instant completions into one pass is decision-*visible*
        (the second job's nodes would join the pool before the first
        pass ranked it — runtime floors make simultaneous finishes
        real).  Per-trigger inline passes make the event driver's call
        sequence exactly the interval compat mode's, so parity holds
        structurally.  Same-timestamp triggers that ARE decision-neutral
        coalesce upstream instead: arrival batches run one pass per
        timestamp (:meth:`_arrival_process`), and tickless mutations
        with no event of their own (pending cancels, corridor reclaims)
        share one grid-armed pass (:meth:`_request_grid_pass`).
        """
        self._schedule()

    def _request_grid_pass(self) -> None:
        """Arm a pass at the next scheduler tick-grid time (event driver).

        Mutations that no event follows — a pending-job cancel, a
        corridor reclaim freeing nodes — were historically picked up by
        the next interval tick.  The event driver replicates exactly that
        timestamp: the grid is advanced with the same float accumulation
        the tick loop uses, so the deferred pass makes bit-identical
        decisions at bit-identical times.
        """
        if self.config.driver == "interval" or self._grid_pass_armed:
            return
        if self._sched_grid is None:
            # Driver not started yet: the start()-time pass covers it.
            return
        interval = self.config.scheduling_interval_s
        now = self.env.now
        grid = self._sched_grid
        while grid <= now:
            grid = grid + interval
        self._sched_grid = grid
        if (
            self.config.max_simulated_time_s is not None
            and grid > self.config.max_simulated_time_s
        ):
            # The interval loop would have stopped ticking before this
            # grid point; stay faithful to that.
            return
        self._grid_pass_armed = True
        self.env.timeout(grid - now).callbacks.append(self._fire_grid_pass)

    def _fire_grid_pass(self, _event) -> None:
        self._grid_pass_armed = False
        self._schedule()

    def _record_reservation(self, head: Job, shadow: float) -> None:
        current = self.head_reservations.get(head.job_id)
        if current is None or shadow < current:
            self.head_reservations[head.job_id] = shadow

    def _shadow_time(self, head: Job) -> float:
        """Estimated earliest start of the head job (its reservation time).

        The vectorized path reads the incrementally maintained
        :class:`NodeAvailabilityProfile` (one cumulative sum); the scalar
        reference path re-sorts the running set per call.  Cancelled jobs
        stay in ``self.running`` (and in the profile) until the simulator
        actually unwinds and their nodes are reclaimed, so pending
        releases are never undercounted.
        """
        needed = min(head.request.acceptable_node_counts() or [head.request.nodes_requested])
        free = self._free_count()
        if self.config.vectorized:
            return self._availability.earliest_start(needed, free, self.env.now)
        if free >= needed:
            return self.env.now
        releases = sorted(
            [
                (
                    (job.start_time_s or self.env.now) + job.request.walltime_estimate_s,
                    # The owned-node ledger tracks malleable grow/shrink; the
                    # launch snapshot (assigned_nodes) does not.
                    len(self._owned_nodes.get(job.job_id, job.assigned_nodes)),
                )
                for job in self.running.values()
            ]
            # Quarantined nodes free up at their repair time; the
            # vectorized path reads these from the availability profile.
            + [(release_s, 1) for release_s in self.quarantined.values()]
        )
        available = free
        for when, count in releases:
            available += count
            if available >= needed:
                return max(when, self.env.now)
        return self.env.now + PESSIMISTIC_SHADOW_S  # pessimistic: nothing frees up soon

    # -- launching -----------------------------------------------------------------------------
    def _default_runtime(self, job: Job, budget_w: Optional[float]) -> RuntimeHooks:
        policy = self.policy_assigner.assign(job.job_id, job.request.application.name, budget_w)
        endpoint = GeopmEndpoint(job_id=job.job_id)
        endpoint.write_policy(policy)
        self.endpoints[job.job_id] = endpoint
        runtime = GeopmRuntime(policy=policy, endpoint=endpoint)
        job.launch_metadata = {
            "geopm_agent": policy.agent,
            "geopm_source": policy.source,
            "power_budget_w": policy.power_budget_w,
        }
        return runtime

    def _account_launch(
        self,
        job: Job,
        nodes: List[Node],
        budget_w: Optional[float],
        backfilled: bool,
        plan: Optional[LaunchPlan] = None,
    ) -> None:
        """Allocation / power / reservation bookkeeping of a launch.

        Factored out of :meth:`_launch` so the scheduler-scale benchmark
        can populate a realistic running set without driving job
        simulators.
        """
        # The suspended monitor must replay its idle grid BEFORE this
        # launch mutates allocation/power state, and ticks again after.
        self._monitor_catch_up()
        self.cluster.allocate_nodes(nodes, job.job_id)
        job.mark_started(self.env.now, nodes, budget_w)
        job.launch_metadata.setdefault("power_budget_w", budget_w)
        job.launch_metadata["backfilled"] = backfilled
        commitment = (
            plan.commitment_w if plan is not None else self._commitment_for(nodes, budget_w)
        )
        self._commitments[job.job_id] = commitment
        self._committed_power_w += commitment
        self.running[job.job_id] = job
        self._owned_nodes[job.job_id] = list(nodes)
        self._availability.add(
            job.job_id,
            self.env.now + job.request.walltime_estimate_s,
            len(nodes),
        )
        self._resume_monitor()

    def _launch(
        self,
        job: Job,
        nodes: List[Node],
        budget_w: Optional[float],
        backfilled: bool,
        plan: Optional[LaunchPlan] = None,
    ) -> None:
        if self.config.runtime_factory is not None:
            runtime = self.config.runtime_factory(job, budget_w, self)
        else:
            runtime = self._default_runtime(job, budget_w)
        self.runtime_handles[job.job_id] = runtime

        # Applications may bring their own simulator (duck-typed hook):
        # trace-replay workloads substitute a constant-power fixed-length
        # simulation so mega-scale traces skip the per-region physics.
        make_simulator = getattr(job.request.application, "make_simulator", None)
        if make_simulator is not None:
            sim = self._sims[job.job_id] = make_simulator(
                self.env, nodes, job, runtime
            )
        else:
            sim = self._sims[job.job_id] = MpiJobSimulator(
                self.env,
                nodes,
                job.request.application,
                job.request.params,
                ranks_per_node=job.request.ranks_per_node,
                hooks=runtime,
                streams=self.streams.spawn(job.job_id),
                static_imbalance=self.config.static_imbalance,
                imbalance_sigma=self.config.imbalance_sigma,
                job_id=job.job_id,
            )
        self._account_launch(job, nodes, budget_w, backfilled, plan)
        # Simulators with no interior structure (trace replay) schedule
        # their completion as a single timeout instead of a generator
        # process: one DES event per job instead of three.  Everything
        # else rides the simulator's own process event rather than a
        # wrapper process: two fewer DES events per job, and the
        # teardown runs at the same point it always did (the wrapper's
        # body was itself a callback of this event).
        start_detached = getattr(sim, "start_detached", None)
        if start_detached is not None:
            start_detached(lambda result, _job=job: self._complete_job(_job, result))
        else:
            proc = self.env.process(sim.run())
            proc.callbacks.append(
                lambda event, _job=job: self._on_job_done(_job, event)
            )
        inj = _faults.active()
        if inj is not None and inj.enabled:
            crash = inj.node_crash(
                job.job_id,
                [node.hostname for node in nodes],
                job.request.walltime_estimate_s,
            )
            if crash is not None:
                self.env.process(self._crash_process(job, sim, *crash))

    # repro-lint: hot
    def _on_job_done(self, job: Job, event) -> None:
        """Callback on the simulator process event: job teardown.

        A failed simulator process is left alone — the event stays
        undefused, so the engine re-raises the error out of ``run()``
        exactly as it did when a wrapper process rethrew it.
        """
        if not event.ok:
            return
        self._complete_job(job, event._value)

    # repro-lint: hot
    def _complete_job(self, job: Job, result) -> None:
        """Shared teardown for process-event and detached completions."""
        crashed_host = self._crashed.pop(job.job_id, None)
        if crashed_host is not None and job.state is JobState.RUNNING:
            self._recover_from_crash(job, crashed_host, result)
            return
        if job.state is JobState.RUNNING:
            job.mark_completed(self.env.now, result)
            self._finished_count += 1
        else:
            job.result = result
        self._finish(job)

    def _crash_process(self, job: Job, sim, hostname: str, delay_s: float):
        """DES process: kill one of the job's nodes after ``delay_s``.

        A stale crash (the job already finished, or was re-queued and
        re-launched with a fresh simulator) is a no-op.  Budget reclaim
        happens here — at detection time — so the runtime's report shows
        the dead node's share handed back before teardown.
        """
        yield self.env.timeout(delay_s)
        if job.state is not JobState.RUNNING or self._sims.get(job.job_id) is not sim:
            return
        self._crashed[job.job_id] = hostname
        runtime = self.runtime_handles.get(job.job_id)
        if isinstance(runtime, JobRuntime):
            self.reclaimed_power_w += runtime.reclaim_node(hostname)
        sim.cancel()

    def _recover_from_crash(self, job: Job, hostname: str, result) -> None:
        """Re-queue (or fail) a crash-interrupted job and drain the node."""
        self._release_allocation(job)
        self._quarantine_node(hostname)
        if self.config.requeue_on_crash and job.restarts < self.config.max_restarts:
            job.mark_requeued(self.env.now)
            self.jobs_requeued += 1
            self.queue.push(job)
        else:
            job.result = result
            job.mark_failed(self.env.now)
            self._finished_count += 1
            self.crash_failures += 1
            self.completed.append(job)
        self._sample_power()
        self._request_schedule()

    def _quarantine_node(self, hostname: str) -> None:
        """Drain a crashed node until its repair completes.

        The node is held by a quarantine owner id (so nothing can launch
        on it) and the availability profile gains a one-node release at
        the repair time, keeping the EASY reservation honest about the
        shrunken machine.
        """
        node = self.cluster.node(hostname)
        if node.allocated_to is not None:
            return
        repair_s = self.config.quarantine_repair_s
        if repair_s is None:
            inj = _faults.active()
            repair_s = inj.repair_time_s() if inj is not None else 900.0
        owner = f"{QUARANTINE_PREFIX}:{hostname}"
        node.allocate(owner)
        release_at = self.env.now + float(repair_s)
        self.quarantined[hostname] = release_at
        self._availability.add(owner, release_at, 1)
        self.nodes_quarantined += 1
        self.env.process(self._repair_process(hostname, owner))

    def _repair_process(self, hostname: str, owner: str):
        release_at = self.quarantined[hostname]
        yield self.env.timeout(release_at - self.env.now)
        # A repair can complete during an idle spell: settle the monitor's
        # grid before the release changes the busy count it samples.
        self._monitor_catch_up()
        node = self.cluster.node(hostname)
        if node.allocated_to == owner:
            node.release()
        self._availability.remove(owner)
        self.quarantined.pop(hostname, None)
        self._request_schedule()

    def _release_allocation(self, job: Job) -> None:
        """Tear down a launch's ledgers (shared by _finish and crash recovery)."""
        # Release exactly what was committed at launch: a budget retuned
        # while the job ran (e.g. corridor cap tightening) must not skew
        # the committed-power ledger.
        commitment = self._commitments.pop(
            job.job_id, self._commitment_for(job.assigned_nodes, job.power_budget_w)
        )
        self._committed_power_w -= commitment
        self._committed_power_w = max(0.0, self._committed_power_w)
        owned = self._owned_nodes.pop(job.job_id, job.assigned_nodes)
        job_id = job.job_id
        self.cluster.release_nodes(
            [node for node in owned if node._allocated_to == job_id]
        )
        self.running.pop(job.job_id, None)
        self._availability.remove(job.job_id)

    def _finish(self, job: Job) -> None:
        self._release_allocation(job)
        if job.state is not JobState.CANCELLED:
            self.completed.append(job)
        self._sample_power()
        self._request_schedule()

    def cancel(self, job_id: str) -> None:
        """Cancel a pending or running job (running jobs stop at the next iteration)."""
        job = self.jobs[job_id]
        if job.state is JobState.PENDING:
            self.queue.remove(job)
            job.mark_cancelled(self.env.now)
            self._finished_count += 1
            # A pending cancel can unblock the FCFS head.  The interval
            # driver picks that up at its next tick; the event driver arms
            # a pass at that same grid time.
            self._request_grid_pass()
        elif job.state is JobState.RUNNING:
            sim = self._sims.get(job_id)
            if sim is not None:
                sim.cancel()
            job.mark_cancelled(self.env.now)
            self._finished_count += 1
            # The underlying simulator stops at the next iteration boundary.
            # The job stays in ``self.running`` (and in the availability
            # profile) until _finish actually reclaims its nodes: popping
            # it here would make the EASY reservation undercount pending
            # releases and let backfills delay the head job.

    # -- statistics -------------------------------------------------------------------------------
    def stats(self) -> SchedulerStats:
        finished = [j for j in self.jobs.values() if j.state is JobState.COMPLETED]
        cancelled = [j for j in self.jobs.values() if j.state is JobState.CANCELLED]
        waits = [j.wait_time_s() for j in finished if j.wait_time_s() is not None]
        turnarounds = [j.turnaround_s() for j in finished if j.turnaround_s() is not None]
        makespan = self.env.now
        total_node_seconds = len(self.cluster) * makespan if makespan > 0 else 1.0
        energy = sum(j.result.energy_j for j in finished if j.result is not None)
        throughput = len(finished) / (makespan / 3600.0) if makespan > 0 else 0.0
        return SchedulerStats(
            jobs_submitted=len(self.jobs),
            jobs_completed=len(finished),
            jobs_cancelled=len(cancelled),
            makespan_s=makespan,
            mean_wait_s=float(np.mean(waits)) if waits else 0.0,
            mean_turnaround_s=float(np.mean(turnarounds)) if turnarounds else 0.0,
            throughput_jobs_per_hour=throughput,
            node_utilization=min(1.0, self._busy_node_seconds / total_node_seconds),
            total_energy_j=energy,
            mean_system_power_w=self.power_series.mean_power_w() if len(self.power_series) else 0.0,
            peak_system_power_w=self.power_series.max_power_w(),
            committed_power_w=self._committed_power_w,
            backfilled_jobs=self.backfilled_jobs,
            jobs_requeued=self.jobs_requeued,
            nodes_quarantined=self.nodes_quarantined,
            crash_failures=self.crash_failures,
            reclaimed_power_w=self.reclaimed_power_w,
        )
