"""Site-level policies: power budget, corridor, per-job power policy modes.

Figure 3 of the paper shows "how facility-level power policies filter
down into job-level granularity": the site has a procured power budget
and contractual corridor; each system gets a share; the resource manager
turns that share into per-job power budgets and GEOPM policies.  This
module holds the policy objects and the budget-translation arithmetic
(the system→job step of the end-to-end translation chain; the
job→node→component steps live in the runtimes and node manager).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional

from repro.runtime.geopm import GeopmPolicy
from repro.telemetry.database import PerformanceDatabase

__all__ = ["JobPowerPolicy", "SitePolicies", "GeopmPolicyMode", "PolicyAssigner"]


class JobPowerPolicy(str, Enum):
    """How the RM turns the system budget into per-job budgets."""

    #: No job budgets — jobs run uncapped (the throughput-oblivious baseline).
    UNLIMITED = "unlimited"
    #: Every allocated node gets the same share of the system budget.
    UNIFORM = "uniform"
    #: Each job's budget is proportional to its node count (equal W/node),
    #: computed against the *procured* budget rather than current usage.
    PROPORTIONAL = "proportional"


class GeopmPolicyMode(str, Enum):
    """The three GEOPM site-policy modes of §3.2.2."""

    STATIC_SITEWIDE = "static_sitewide"
    JOB_SPECIFIC = "job_specific"
    DYNAMIC = "dynamic"


@dataclass
class SitePolicies:
    """Site- and system-level power policy configuration."""

    #: Procured power for the system (W).
    system_power_budget_w: float = 50_000.0
    #: Power corridor (lower, upper) bound the site must stay inside (W).
    #: ``None`` disables corridor enforcement.
    corridor_lower_w: Optional[float] = None
    corridor_upper_w: Optional[float] = None
    #: Averaging window over which the budget/corridor is measured (s).
    averaging_window_s: float = 60.0
    #: How per-job power budgets are derived.
    job_power_policy: JobPowerPolicy = JobPowerPolicy.PROPORTIONAL
    #: Fraction of the system budget held back for idle nodes and safety.
    reserve_fraction: float = 0.05
    #: GEOPM policy mode used at job launch.
    geopm_mode: GeopmPolicyMode = GeopmPolicyMode.STATIC_SITEWIDE
    #: Default GEOPM policy (static sitewide mode).
    default_geopm_policy: GeopmPolicy = field(
        default_factory=lambda: GeopmPolicy(agent="power_governor")
    )

    def __post_init__(self) -> None:
        if self.system_power_budget_w <= 0:
            raise ValueError("system_power_budget_w must be positive")
        if self.averaging_window_s <= 0:
            raise ValueError("averaging_window_s must be positive")
        if not 0.0 <= self.reserve_fraction < 1.0:
            raise ValueError("reserve_fraction must be in [0, 1)")
        if (
            self.corridor_lower_w is not None
            and self.corridor_upper_w is not None
            and self.corridor_lower_w >= self.corridor_upper_w
        ):
            raise ValueError("corridor_lower_w must be below corridor_upper_w")

    # -- budget arithmetic -----------------------------------------------------------
    @property
    def schedulable_power_w(self) -> float:
        """Power available to jobs after the reserve."""
        return self.system_power_budget_w * (1.0 - self.reserve_fraction)

    def job_budget_w(
        self,
        job_nodes: int,
        total_nodes: int,
        committed_power_w: float,
        node_tdp_w: float,
        node_min_w: float,
    ) -> Optional[float]:
        """Power budget for a job asking for ``job_nodes`` nodes.

        Returns ``None`` for the UNLIMITED policy.  Returns a budget even
        if it is currently infeasible; the scheduler checks feasibility
        against ``committed_power_w`` separately.
        """
        if job_nodes <= 0 or total_nodes <= 0:
            raise ValueError("node counts must be positive")
        if self.job_power_policy is JobPowerPolicy.UNLIMITED:
            return None
        if self.job_power_policy is JobPowerPolicy.PROPORTIONAL:
            per_node = self.schedulable_power_w / total_nodes
        else:  # UNIFORM: share what is left right now evenly over the job's nodes
            remaining = max(0.0, self.schedulable_power_w - committed_power_w)
            per_node = remaining / job_nodes if job_nodes else 0.0
        per_node = min(per_node, node_tdp_w)
        per_node = max(per_node, node_min_w)
        return per_node * job_nodes


class PolicyAssigner:
    """Produces the GEOPM policy for each job launch (Figure 3).

    * STATIC_SITEWIDE — every job gets the site default policy with its
      proportional share of power.
    * JOB_SPECIFIC — the assigner first consults a historical database
      mapping applications to known-good policy parameters (§3.2.2's
      "sites typically maintain a database that maps applications to
      specific policy parameters").
    * DYNAMIC — the policy is updated while the job runs through the
      GEOPM endpoint; at launch it starts from the static policy.
    """

    def __init__(
        self,
        policies: SitePolicies,
        history: Optional[PerformanceDatabase] = None,
    ):
        self.policies = policies
        self.history = history if history is not None else PerformanceDatabase("geopm-policies")
        self.assignments: Dict[str, GeopmPolicy] = {}

    def record_good_policy(
        self, app_name: str, policy: GeopmPolicy, metrics: Mapping[str, float]
    ) -> None:
        """Store a known-good policy for an application (job-specific mode)."""
        self.history.add_evaluation(
            config={
                "agent": policy.agent,
                "power_budget_w": policy.power_budget_w,
                "frequency_ghz": policy.frequency_ghz,
                "perf_degradation": policy.perf_degradation,
            },
            metrics=dict(metrics),
            objective=metrics.get("energy_j", 0.0),
            app=app_name,
        )

    def assign(self, job_id: str, app_name: str, job_budget_w: Optional[float]) -> GeopmPolicy:
        """Build the launch policy for one job."""
        base = self.policies.default_geopm_policy
        if self.policies.geopm_mode is GeopmPolicyMode.JOB_SPECIFIC:
            best = self.history.best_for(app=app_name)
            if best is not None:
                base = GeopmPolicy(
                    agent=str(best.config.get("agent", base.agent)),
                    power_budget_w=best.config.get("power_budget_w"),
                    frequency_ghz=best.config.get("frequency_ghz"),
                    perf_degradation=float(
                        best.config.get("perf_degradation", base.perf_degradation)
                    ),
                    source="job_db",
                )
        if job_budget_w is not None:
            base = base.with_budget(job_budget_w)
        if self.policies.geopm_mode is GeopmPolicyMode.DYNAMIC:
            base = GeopmPolicy(
                agent=base.agent,
                power_budget_w=base.power_budget_w,
                frequency_ghz=base.frequency_ghz,
                perf_degradation=base.perf_degradation,
                source="dynamic",
            )
        self.assignments[job_id] = base
        return base
