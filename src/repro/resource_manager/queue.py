"""Job queue with FCFS ordering and EASY-backfill candidate selection.

"Which job to run (or backfill) from the job queue" is one of the static
RM/runtime interactions listed in §3.1.1.  The queue keeps submission
order; the scheduler asks it for the head job and — when the head cannot
start — for backfill candidates that will not delay the head's reserved
start time.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.resource_manager.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """FCFS queue of pending jobs with backfill support."""

    def __init__(self) -> None:
        self._jobs: List[Job] = []

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self):
        return iter(list(self._jobs))

    def push(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            raise ValueError(f"only pending jobs can be queued (got {job.state})")
        self._jobs.append(job)

    def remove(self, job: Job) -> None:
        self._jobs.remove(job)

    def head(self) -> Optional[Job]:
        """The job FCFS says must start next (None if the queue is empty)."""
        return self._jobs[0] if self._jobs else None

    def pending(self) -> List[Job]:
        return list(self._jobs)

    def backfill_candidates(
        self,
        now_s: float,
        shadow_time_s: float,
        fits: Callable[[Job], bool],
    ) -> List[Job]:
        """Jobs (excluding the head) that may be backfilled.

        EASY backfill rule: a candidate may start now if it fits in the
        currently free resources *and* its estimated completion
        (``now + walltime_estimate``) does not exceed the head job's
        reserved start time (``shadow_time_s``).  ``fits`` encapsulates
        the resource/power check, which only the scheduler can do.
        """
        if shadow_time_s < now_s:
            return []
        candidates: List[Job] = []
        for job in self._jobs[1:]:
            estimate = job.request.walltime_estimate_s
            if now_s + estimate <= shadow_time_s and fits(job):
                candidates.append(job)
        return candidates

    def jobs_by_user(self, user: str) -> List[Job]:
        return [j for j in self._jobs if j.request.user == user]
