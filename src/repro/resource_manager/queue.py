"""Job queue with FCFS ordering and EASY-backfill candidate selection.

"Which job to run (or backfill) from the job queue" is one of the static
RM/runtime interactions listed in §3.1.1.  The queue keeps submission
order; the scheduler asks it for the head job and — when the head cannot
start — for backfill candidates that will not delay the head's reserved
start time.

The queue is backed by an insertion-ordered dict keyed on job id, so
``push``/``remove``/``head`` are O(1) instead of O(pending): at
trace-replay scale (100k+ queued jobs) the scheduler removes and
re-queues jobs on every launch, crash re-queue and cancel, and a
list-backed ``remove`` alone dominated the pass cost.  Iteration order
is identical to the old list implementation (append order, re-queues go
to the tail).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional

from repro.resource_manager.job import Job, JobState

__all__ = ["JobQueue"]


class JobQueue:
    """FCFS queue of pending jobs with backfill support."""

    def __init__(self) -> None:
        self._jobs: Dict[str, Job] = {}

    def __len__(self) -> int:
        return len(self._jobs)

    def __iter__(self) -> Iterator[Job]:
        return iter(list(self._jobs.values()))

    def push(self, job: Job) -> None:
        if job.state is not JobState.PENDING:
            raise ValueError(f"only pending jobs can be queued (got {job.state})")
        if job.job_id in self._jobs:
            raise ValueError(f"job {job.job_id!r} is already queued")
        self._jobs[job.job_id] = job

    def remove(self, job: Job) -> None:
        if self._jobs.pop(job.job_id, None) is None:
            raise ValueError(f"job {job.job_id!r} is not queued")

    def head(self) -> Optional[Job]:
        """The job FCFS says must start next (None if the queue is empty)."""
        return next(iter(self._jobs.values()), None)

    def pending(self) -> List[Job]:
        return list(self._jobs.values())

    # repro-lint: hot
    def backfill_candidates(
        self,
        now_s: float,
        shadow_time_s: float,
        fits: Callable[[Job], bool],
        max_candidates: Optional[int] = None,
    ) -> List[Job]:
        """Jobs (excluding the head) that may be backfilled.

        EASY backfill rule: a candidate may start now if it fits in the
        currently free resources *and* its estimated completion
        (``now + walltime_estimate``) does not exceed the head job's
        reserved start time (``shadow_time_s``).  ``fits`` encapsulates
        the resource/power check, which only the scheduler can do.

        ``max_candidates`` bounds how deep past the head the sweep looks
        (SLURM's ``bf_max_job_test``): at mega-trace scale an unbounded
        sweep over 100k pending jobs per pass is the dominant cost.
        ``None`` keeps the historical exhaustive sweep.
        """
        if shadow_time_s < now_s:
            return []
        candidates: List[Job] = []
        examined = 0
        it = iter(self._jobs.values())
        next(it, None)  # skip the FCFS head
        for job in it:
            if max_candidates is not None and examined >= max_candidates:
                break
            examined += 1
            estimate = job.request.walltime_estimate_s
            if now_s + estimate <= shadow_time_s and fits(job):
                candidates.append(job)
        return candidates

    def jobs_by_user(self, user: str) -> List[Job]:
        return [j for j in self._jobs.values() if j.request.user == user]
