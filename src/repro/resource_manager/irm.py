"""Invasive Resource Manager: power-corridor management (use case 5, Figure 6).

§3.2.5 describes a "proactive power corridor management strategy ...
comprising an Invasive Resource Manager (IRM) and Invasive MPI": the
power usage of running applications is predicted, and if a corridor
violation is predicted the IRM formulates a resource-redistribution
heuristic — growing or shrinking malleable (EPOP) jobs — to bring the
system back inside the corridor.  The traditional (reactive) strategies
the paper lists — job cancellation, idle node shutdown, power capping,
DVFS — are implemented as baselines so the benefit of the invasive
strategy can be quantified (Figure 6 / the fig6 benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

import numpy as np

from repro.node_mgmt.powercap import distribute_power_budget
from repro.resource_manager.job import Job, JobState
from repro.resource_manager.slurm import PowerAwareScheduler, SchedulerConfig
from repro.runtime.epop import EpopRuntime

__all__ = ["CorridorStrategy", "CorridorEvent", "InvasiveResourceManager"]


class CorridorStrategy(str, Enum):
    """How the RM reacts to a (predicted) power-corridor violation."""

    #: Do nothing — the uncontrolled baseline.
    NONE = "none"
    #: Cancel the youngest job on an upper-bound violation.
    JOB_CANCELLATION = "job_cancellation"
    #: Power down idle nodes (upper violations only reduce idle draw).
    IDLE_SHUTDOWN = "idle_shutdown"
    #: Tighten/relax per-job power caps.
    POWER_CAPPING = "power_capping"
    #: Lower/raise the frequency of allocated nodes.
    DVFS = "dvfs"
    #: Invasive: grow/shrink malleable jobs by redistributing nodes.
    INVASIVE = "invasive"


@dataclass
class CorridorEvent:
    """One control action taken by the corridor manager."""

    time_s: float
    predicted_power_w: float
    action: str
    job_id: Optional[str] = None
    detail: Dict[str, float] = field(default_factory=dict)


class InvasiveResourceManager(PowerAwareScheduler):
    """Power-corridor-aware scheduler with dynamic resource redistribution."""

    def __init__(
        self,
        env,
        cluster,
        policies=None,
        config: Optional[SchedulerConfig] = None,
        streams=None,
        strategy: CorridorStrategy = CorridorStrategy.INVASIVE,
        control_interval_s: float = 30.0,
        prediction_margin: float = 0.03,
    ):
        super().__init__(env, cluster, policies, config, streams)
        if control_interval_s <= 0:
            raise ValueError("control_interval_s must be positive")
        if prediction_margin < 0:
            raise ValueError("prediction_margin must be >= 0")
        self.strategy = strategy
        self.control_interval_s = float(control_interval_s)
        self.prediction_margin = float(prediction_margin)
        self.events: List[CorridorEvent] = []
        self._corridor_started = False
        #: Shut-down set as a node mask, so the telemetry/prediction hot
        #: loops run as array expressions over the ClusterState.
        self._shutdown_mask = np.zeros(len(cluster), dtype=bool)

    # -- EPOP integration -------------------------------------------------------------
    def _default_runtime(self, job: Job, budget_w: Optional[float]):
        """Malleable jobs get an EPOP runtime; rigid jobs fall back to GEOPM."""
        if job.request.malleable:
            runtime = EpopRuntime(elastic=True, power_budget_w=budget_w)
            job.launch_metadata = {"runtime": "epop", "power_budget_w": budget_w}
            return runtime
        return super()._default_runtime(job, budget_w)

    def epop_jobs(self) -> Dict[str, EpopRuntime]:
        """Running malleable jobs and their EPOP runtime handles."""
        out: Dict[str, EpopRuntime] = {}
        for job_id, job in self.running.items():
            handle = self.runtime_handles.get(job_id)
            if isinstance(handle, EpopRuntime) and job.state is JobState.RUNNING:
                out[job_id] = handle
        return out

    # -- corridor control loop -----------------------------------------------------------
    def start(self) -> None:
        super().start()
        if not self._corridor_started and self.strategy is not CorridorStrategy.NONE:
            self._corridor_started = True
            self.env.process(self._corridor_loop())

    def _corridor_loop(self):
        while True:
            # The corridor can act (reclaim, shutdown, DVFS) during idle
            # spells: settle the suspended monitor's sampling grid before
            # mutating the state those samples read.
            self._monitor_catch_up()
            free_before = self.cluster.state.free_version
            self._reclaim_released_nodes()
            self._enforce_corridor()
            if self.cluster.state.free_version != free_before:
                # Nodes changed hands outside a scheduling pass (e.g. an
                # EPOP shrink reclaimed).  The interval driver's next tick
                # would use them; the event driver arms a pass at that
                # same grid time.
                self._request_grid_pass()
            yield self.env.timeout(self.control_interval_s)

    def _reclaim_released_nodes(self) -> None:
        """Take back nodes malleable jobs gave up at their last shrink.

        EPOP applies a shrink at the next elastic point and parks the
        dropped nodes in ``take_released_nodes()``; without this reclaim
        they would stay allocated (and invisible to the free mask) until
        the job finished.
        """
        for job_id, runtime in self.epop_jobs().items():
            released = runtime.take_released_nodes()
            if not released:
                continue
            owned = self._owned_nodes.get(job_id)
            for node in released:
                if node.allocated_to == job_id:
                    node.release()
                if owned is not None and node in owned:
                    owned.remove(node)
            if owned is not None:
                self._availability.update_count(job_id, len(owned))

    def predicted_power_w(self) -> float:
        """Predicted system power for the next control interval.

        EPOP jobs report an empirical prediction; rigid jobs are assumed
        to keep drawing their current power; idle nodes draw idle power
        (unless shut down).  One masked array expression over the
        ClusterState covers the non-EPOP remainder of the machine.
        """
        total = 0.0
        state = self.cluster.state
        excluded = self._shutdown_mask.copy()
        for runtime in self.epop_jobs().values():
            total += runtime.predicted_power_w()
            for node in runtime.current_nodes:
                excluded[node.node_id] = True
        contribution = np.where(
            state.node_free, state.idle_power_per_node(), state.node_current_power_w
        )
        total += float(contribution[~excluded].sum())
        return total * (1.0 + self.prediction_margin)

    # -- enforcement strategies --------------------------------------------------------------
    def _enforce_corridor(self) -> None:
        lower = self.policies.corridor_lower_w
        upper = self.policies.corridor_upper_w
        if lower is None and upper is None:
            return
        predicted = self.predicted_power_w()
        if upper is not None and predicted > upper:
            self._handle_upper_violation(predicted, upper)
        elif lower is not None and predicted < lower:
            self._handle_lower_violation(predicted, lower)

    def _log(self, action: str, predicted: float, job_id: Optional[str] = None, **detail: float) -> None:
        self.events.append(
            CorridorEvent(
                time_s=self.env.now,
                predicted_power_w=predicted,
                action=action,
                job_id=job_id,
                detail=dict(detail),
            )
        )

    def _handle_upper_violation(self, predicted: float, upper: float) -> None:
        excess = predicted - upper
        if self.strategy is CorridorStrategy.INVASIVE:
            self._shrink_malleable(excess, predicted)
        elif self.strategy is CorridorStrategy.POWER_CAPPING:
            self._tighten_caps(excess, predicted)
        elif self.strategy is CorridorStrategy.DVFS:
            self._apply_dvfs(predicted, lower=False)
        elif self.strategy is CorridorStrategy.IDLE_SHUTDOWN:
            self._shutdown_idle(predicted)
        elif self.strategy is CorridorStrategy.JOB_CANCELLATION:
            self._cancel_youngest(predicted)

    def _handle_lower_violation(self, predicted: float, lower: float) -> None:
        deficit = lower - predicted
        if self.strategy is CorridorStrategy.INVASIVE:
            self._expand_malleable(deficit, predicted)
        elif self.strategy is CorridorStrategy.POWER_CAPPING:
            self._relax_caps(predicted)
        elif self.strategy is CorridorStrategy.DVFS:
            self._apply_dvfs(predicted, lower=True)
        elif self.strategy is CorridorStrategy.IDLE_SHUTDOWN:
            self._power_up_nodes(predicted)
        # Job cancellation cannot fix a lower-bound violation.

    # invasive ------------------------------------------------------------------------
    def _shrink_malleable(self, excess_w: float, predicted: float) -> None:
        epop = self.epop_jobs()
        if not epop:
            self._tighten_caps(excess_w, predicted)
            return
        # Shrink the job with the most nodes first.
        job_id, runtime = max(epop.items(), key=lambda kv: len(kv[1].current_nodes))
        nodes = runtime.current_nodes
        per_node_w = runtime.measured_power_w / max(len(nodes), 1)
        if per_node_w <= 0:
            per_node_w = nodes[0].idle_power_w() if nodes else 1.0
        to_remove = max(1, int(round(excess_w / max(per_node_w, 1.0))))
        target = len(nodes) - to_remove
        candidates = [
            c for c in range(max(1, target), len(nodes)) if runtime.can_resize_to(c)
        ]
        if not candidates:
            self._log("shrink_blocked", predicted, job_id=job_id)
            return
        new_count = max(candidates[0], 1)
        keep = nodes[:new_count]
        if runtime.request_resize(keep):
            self._log(
                "shrink", predicted, job_id=job_id,
                nodes_before=float(len(nodes)), nodes_after=float(new_count),
            )

    def _expand_malleable(self, deficit_w: float, predicted: float) -> None:
        epop = self.epop_jobs()
        free_idx = self.cluster.free_node_indices()
        free = self.cluster.nodes_at(free_idx[~self._shutdown_mask[free_idx]])
        if not epop or not free:
            return
        job_id, runtime = min(epop.items(), key=lambda kv: len(kv[1].current_nodes))
        nodes = runtime.current_nodes
        per_node_w = runtime.measured_power_w / max(len(nodes), 1)
        if per_node_w <= 0:
            per_node_w = nodes[0].idle_power_w() if nodes else 1.0
        to_add = max(1, int(round(deficit_w / max(per_node_w, 1.0))))
        candidates = [
            c
            for c in range(len(nodes) + 1, len(nodes) + min(to_add, len(free)) + 1)
            if runtime.can_resize_to(c)
        ]
        if not candidates:
            self._log("expand_blocked", predicted, job_id=job_id)
            return
        new_count = candidates[-1]
        new_nodes = nodes + free[: new_count - len(nodes)]
        # The RM reassigns ownership of the added nodes to the job.
        for node in new_nodes[len(nodes):]:
            node.allocate(job_id)
        if runtime.request_resize(new_nodes):
            # Track the grown node set so _finish reclaims every node the
            # job ever owned, not just the launch-time allocation — and
            # keep the EASY reservation profile's node count current.
            owned = self._owned_nodes.setdefault(job_id, [])
            owned.extend(new_nodes[len(nodes):])
            self._availability.update_count(job_id, len(owned))
            self._log(
                "expand", predicted, job_id=job_id,
                nodes_before=float(len(nodes)), nodes_after=float(new_count),
            )
        else:  # give the nodes back if the runtime refused
            for node in new_nodes[len(nodes):]:
                node.release()

    # baselines -----------------------------------------------------------------------
    def _tighten_caps(self, excess_w: float, predicted: float) -> None:
        """Shed ``excess_w`` by tightening per-job budgets, applied in one
        vectorised cap pass: each job's reduced budget is waterfilled over
        its nodes (:func:`distribute_power_budget`) and the whole cluster
        cap vector is written through :meth:`Cluster.apply_power_caps`."""
        running = [j for j in self.running.values() if j.assigned_nodes]
        if not running:
            return
        spec = self.cluster.spec.node
        per_job = excess_w / len(running)
        caps = self.cluster.state.node_power_cap_w.copy()
        for job in running:
            count = len(job.assigned_nodes)
            current = job.power_budget_w or count * spec.tdp_w
            new_budget = max(count * spec.min_power_w, current - per_job)
            job.power_budget_w = new_budget
            shares = distribute_power_budget(
                new_budget, count, spec.min_power_w, spec.tdp_w
            )
            indices = [node.node_id for node in job.assigned_nodes]
            caps[indices] = shares
        self.cluster.apply_power_caps(caps)
        self._log("tighten_caps", predicted, excess_w=excess_w)

    def _relax_caps(self, predicted: float) -> None:
        caps = self.cluster.state.node_power_cap_w.copy()
        for job in self.running.values():
            for node in job.assigned_nodes:
                caps[node.node_id] = np.nan  # uncap
        self.cluster.apply_power_caps(caps)
        self._log("relax_caps", predicted)

    def _apply_dvfs(self, predicted: float, lower: bool) -> None:
        state = self.cluster.state
        indices = np.array(
            [n.node_id for job in self.running.values() for n in job.assigned_nodes],
            dtype=int,
        )
        if indices.size:
            step = self.cluster.spec.node.cpu.freq_step_ghz * 2
            current = state.pkg_freq_target_ghz[indices, 0]
            state.set_node_frequencies(current + step if lower else current - step, indices)
        self._log("dvfs_up" if lower else "dvfs_down", predicted)

    def _shutdown_idle(self, predicted: float) -> None:
        idle = self.cluster.state.node_free & ~self._shutdown_mask
        count = int(np.count_nonzero(idle))
        if count:
            self._shutdown_mask |= idle
            self._log("idle_shutdown", predicted, nodes=float(count))

    def _power_up_nodes(self, predicted: float) -> None:
        count = int(np.count_nonzero(self._shutdown_mask))
        if count:
            self._shutdown_mask[:] = False
            self._log("power_up", predicted, nodes=float(count))

    def _cancel_youngest(self, predicted: float) -> None:
        running = [j for j in self.running.values() if j.state is JobState.RUNNING]
        if not running:
            return
        youngest = max(running, key=lambda j: j.start_time_s or 0.0)
        self.cancel(youngest.job_id)
        self._log("cancel", predicted, job_id=youngest.job_id)

    # -- telemetry override: shut-down nodes draw (almost) nothing --------------------------
    def _sample_power(self, at: Optional[float] = None) -> None:
        now = self.env.now if at is None else at
        state = self.cluster.state
        busy = state.busy_count
        dt = now - self._last_utilization_sample_s
        if dt > 0:
            self._busy_node_seconds += busy * dt
            self._last_utilization_sample_s = now
        idle_draw = np.where(
            self._shutdown_mask, 5.0, state.idle_power_per_node()  # BMC stays on
        )
        power = float(
            np.where(state.node_free, idle_draw, state.node_current_power_w).sum()
        )
        self.power_series.record(now, power)

    # -- reporting ---------------------------------------------------------------------------
    def corridor_report(self) -> Dict[str, float]:
        stats = {
            "events": float(len(self.events)),
            "shrinks": float(sum(1 for e in self.events if e.action == "shrink")),
            "expands": float(sum(1 for e in self.events if e.action == "expand")),
            "cancels": float(sum(1 for e in self.events if e.action == "cancel")),
        }
        if self.policies.corridor_upper_w is not None:
            corridor = self.power_series.corridor_stats(
                self.policies.corridor_upper_w,
                self.policies.corridor_lower_w or 0.0,
                window_s=self.policies.averaging_window_s,
            )
            stats.update(
                {
                    "violation_fraction": corridor.violation_fraction,
                    "above_upper": float(corridor.above_upper),
                    "below_lower": float(corridor.below_lower),
                    "mean_power_w": corridor.mean_power_w,
                    "max_power_w": corridor.max_power_w,
                }
            )
        return stats
