"""System-level resource management (the PowerStack's top software layer).

Table 2's system level lists SLURM-style resource managers and power-
aware schedulers; the use cases add the Invasive Resource Manager (IRM)
for power-corridor management.  This subpackage implements that layer
against the simulated cluster:

* :mod:`repro.resource_manager.job` — job state machine and accounting.
* :mod:`repro.resource_manager.queue` — FCFS queue with EASY backfill.
* :mod:`repro.resource_manager.policies` — site policies: system power
  budget, power corridor, job power-budget policies, GEOPM policy modes.
* :mod:`repro.resource_manager.slurm` — the power-aware scheduler
  (node selection, job power budgets, launch, telemetry).
* :mod:`repro.resource_manager.irm` — the invasive RM: corridor
  enforcement through dynamic resource redistribution of malleable jobs
  (plus the baseline strategies the paper lists: job cancellation, idle
  node shutdown, power capping, DVFS).
* :mod:`repro.resource_manager.overprovisioning` — §4.3's hardware
  overprovisioning study: which nodes to power, at what cap, under a
  cluster-level power bound.
"""

from repro.resource_manager.irm import CorridorStrategy, InvasiveResourceManager
from repro.resource_manager.job import Job, JobState
from repro.resource_manager.overprovisioning import (
    OverprovisionEvaluation,
    OverprovisioningPlanner,
    PoweredPartition,
)
from repro.resource_manager.policies import JobPowerPolicy, SitePolicies
from repro.resource_manager.queue import JobQueue
from repro.resource_manager.slurm import PowerAwareScheduler, SchedulerConfig, SchedulerStats

__all__ = [
    "CorridorStrategy",
    "InvasiveResourceManager",
    "Job",
    "JobPowerPolicy",
    "JobQueue",
    "JobState",
    "OverprovisionEvaluation",
    "OverprovisioningPlanner",
    "PowerAwareScheduler",
    "PoweredPartition",
    "SchedulerConfig",
    "SchedulerStats",
    "SitePolicies",
]
