"""Hardware overprovisioning under a cluster-level power bound (§4.3).

"Hardware overprovisioning has been suggested as a viable approach to
address the challenges associated with site-wide or cluster-level power
constraints [Patki et al.].  Since more compute and storage devices
exist than can be powered up at any given time ... the problem of
selecting which components to power up and how to operate them becomes
challenging."  (§4.3)

This module implements that selection problem over the simulated
cluster:

* :class:`PoweredPartition` — which nodes are powered (and whether their
  accelerators are), which are dark, and what per-node cap the powered
  set runs under, with the power accounting the planner budgets against;
* :class:`OverprovisioningPlanner` — enumerate the feasible
  (node count × per-node cap × accelerator on/off) configurations for a
  system power bound, evaluate a target application on each, and return
  the best configuration for a runtime / energy / efficiency objective,
  alongside the "worst-case provisioned" baseline (every powered node at
  TDP) the paper's cited work compares against.

The planner is deliberately *offline*: it answers the §4.3 research
question "how can one quantify the trade-off between the number of
compute devices on the system vs. system-level efficiency" by measuring,
not by a closed-form model — the measured sweep is what
``benchmarks/bench_research_overprovisioning.py`` prints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.apps.base import Application
from repro.apps.mpi import JobResult, MpiJobSimulator
from repro.hardware.cluster import Cluster
from repro.hardware.node import Node
from repro.sim.rng import RandomStreams

__all__ = ["PoweredPartition", "OverprovisionEvaluation", "OverprovisioningPlanner"]

#: Residual draw of a powered-off node (BMC and fans on standby), watts.
DARK_NODE_POWER_W = 5.0


@dataclass(frozen=True)
class PoweredPartition:
    """One way of operating an overprovisioned cluster.

    Attributes
    ----------
    nodes_powered:
        How many nodes are powered up (the rest stay dark).
    per_node_cap_w:
        RAPL-style node power cap applied to every powered node.
    accelerators_powered:
        Whether the powered nodes' GPUs are available (a dark GPU frees
        its share of the node budget for the CPU sockets).
    """

    nodes_powered: int
    per_node_cap_w: float
    accelerators_powered: bool = True

    def __post_init__(self) -> None:
        if self.nodes_powered < 1:
            raise ValueError("nodes_powered must be >= 1")
        if self.per_node_cap_w <= 0:
            raise ValueError("per_node_cap_w must be positive")

    def budgeted_power_w(self, total_nodes: int) -> float:
        """Worst-case system draw the site must budget for this partition."""
        if total_nodes < self.nodes_powered:
            raise ValueError("partition powers more nodes than the cluster has")
        dark = total_nodes - self.nodes_powered
        return self.nodes_powered * self.per_node_cap_w + dark * DARK_NODE_POWER_W

    def label(self) -> str:
        gpu = "+gpu" if self.accelerators_powered else "-gpu"
        return f"{self.nodes_powered}n@{self.per_node_cap_w:.0f}W{gpu}"


@dataclass(frozen=True)
class OverprovisionEvaluation:
    """Measured outcome of running the target application on one partition."""

    partition: PoweredPartition
    runtime_s: float
    energy_j: float
    average_power_w: float
    flops: float
    budgeted_power_w: float

    @property
    def flops_per_watt(self) -> float:
        return self.flops / self.average_power_w if self.average_power_w > 0 else 0.0

    @property
    def energy_delay_product(self) -> float:
        return self.energy_j * self.runtime_s

    def objective(self, name: str) -> float:
        """Scalar objective (smaller is better) for the planner."""
        if name == "runtime":
            return self.runtime_s
        if name == "energy":
            return self.energy_j
        if name == "edp":
            return self.energy_delay_product
        if name == "flops_per_watt":
            return -self.flops_per_watt
        raise ValueError(f"unknown objective {name!r}")

    def as_dict(self) -> Dict[str, float]:
        return {
            "nodes": float(self.partition.nodes_powered),
            "cap_w": self.partition.per_node_cap_w,
            "accelerators": 1.0 if self.partition.accelerators_powered else 0.0,
            "runtime_s": self.runtime_s,
            "energy_j": self.energy_j,
            "power_w": self.average_power_w,
            "flops_per_watt": self.flops_per_watt,
            "budgeted_power_w": self.budgeted_power_w,
        }


class OverprovisioningPlanner:
    """Select how many nodes to power, and at what cap, under a system bound."""

    def __init__(
        self,
        cluster: Cluster,
        system_power_bound_w: float,
        cap_levels: Optional[Sequence[float]] = None,
        include_accelerator_choice: bool = False,
        seed: int = 0,
    ):
        if system_power_bound_w <= 0:
            raise ValueError("system_power_bound_w must be positive")
        self.cluster = cluster
        self.system_power_bound_w = float(system_power_bound_w)
        node_spec = cluster.spec.node
        if cap_levels is None:
            # From the minimum enforceable cap up to TDP in ~6 steps.
            cap_levels = np.linspace(node_spec.min_power_w, node_spec.tdp_w, 6)
        self.cap_levels = [float(c) for c in cap_levels]
        if not self.cap_levels:
            raise ValueError("cap_levels must not be empty")
        if any(c <= 0 for c in self.cap_levels):
            raise ValueError("cap levels must be positive")
        self.include_accelerator_choice = bool(include_accelerator_choice)
        self.seed = int(seed)

    # -- configuration enumeration ------------------------------------------------
    def feasible_partitions(
        self, application: Optional[Application] = None, ranks_per_node: int = 1
    ) -> List[PoweredPartition]:
        """Every partition whose *budgeted* draw fits under the system bound.

        When ``application`` is given, node counts that violate its rank
        constraint (e.g. LULESH's cubic requirement) are dropped as well.
        """
        total = len(self.cluster)
        gpu_choices = (True, False) if self.include_accelerator_choice else (True,)
        out: List[PoweredPartition] = []
        for count in range(1, total + 1):
            if application is not None and not application.rank_constraint(
                count * ranks_per_node
            ):
                continue
            for cap in self.cap_levels:
                for gpus in gpu_choices:
                    partition = PoweredPartition(count, cap, accelerators_powered=gpus)
                    if partition.budgeted_power_w(total) <= self.system_power_bound_w + 1e-9:
                        out.append(partition)
        return out

    def fully_provisioned_baseline(
        self, application: Optional[Application] = None, ranks_per_node: int = 1
    ) -> Optional[PoweredPartition]:
        """The conventional (non-overprovisioned) configuration.

        Power as many nodes as fit at full TDP — the machine a site would
        have bought instead of an overprovisioned one.  Returns ``None``
        when not even one TDP node fits the bound.
        """
        tdp = self.cluster.spec.node.tdp_w
        total = len(self.cluster)
        best: Optional[PoweredPartition] = None
        for count in range(total, 0, -1):
            if application is not None and not application.rank_constraint(
                count * ranks_per_node
            ):
                continue
            partition = PoweredPartition(count, tdp, accelerators_powered=True)
            if partition.budgeted_power_w(total) <= self.system_power_bound_w + 1e-9:
                best = partition
                break
        return best

    # -- evaluation -------------------------------------------------------------------
    def _prepare_nodes(self, partition: PoweredPartition) -> List[Node]:
        """Configure the cluster for one partition in vectorised passes.

        DVFS reset, uncore reset, and the per-node cap vector all go
        through the ClusterState array kernels
        (:meth:`~repro.hardware.state.ClusterState.set_node_frequencies`,
        :meth:`Cluster.apply_power_caps`) instead of per-node loops; dark
        nodes are uncapped (NaN) and pinned at the BMC standby draw.
        """
        cluster = self.cluster
        state = cluster.state
        spec = cluster.spec.node
        n_powered = partition.nodes_powered
        for node in cluster.nodes:  # release keeps the free mask in sync
            node.allocated_to = None
        powered = np.arange(n_powered)
        state.set_node_frequencies(spec.cpu.freq_max_ghz, powered)
        state.set_node_uncore_frequencies(spec.cpu.uncore_max_ghz, powered)
        # Clear first so every evaluation starts from the same cap state
        # (apply_power_caps skips bookkeeping for unchanged node caps).
        cluster.apply_uniform_power_cap(None)
        caps = np.full(len(cluster), np.nan)
        caps[:n_powered] = partition.per_node_cap_w
        cluster.apply_power_caps(caps)
        if not partition.accelerators_powered and spec.n_gpus > 0:
            # Dark accelerators free their budget share for the CPU
            # sockets: pin every GPU at its minimum cap and hand the rest
            # of the node budget (cap - platform - parked GPUs) to the
            # packages, overriding the TDP-proportional split the generic
            # cap pass wrote.
            node_cap = max(partition.per_node_cap_w, spec.min_power_w)
            cpu_budget = (
                node_cap
                - spec.platform_power_w
                - spec.n_gpus * spec.gpu.min_power_cap_w
            )
            per_pkg = np.clip(
                cpu_budget / spec.n_sockets,
                spec.cpu.min_power_cap_w,
                spec.cpu.tdp_w,
            )
            state.pkg_power_cap_w[:n_powered] = per_pkg
            for node in cluster.nodes[:n_powered]:
                node.rapl.set_node_package_limit(float(per_pkg * spec.n_sockets))
                for gpu in node.gpus:
                    gpu.set_power_cap(gpu.spec.min_power_cap_w)
        state.node_current_power_w[n_powered:] = DARK_NODE_POWER_W
        return list(cluster.nodes[:n_powered])

    def evaluate(
        self,
        partition: PoweredPartition,
        application: Application,
        params: Optional[Mapping[str, Any]] = None,
        ranks_per_node: int = 1,
        max_iterations: Optional[int] = None,
    ) -> OverprovisionEvaluation:
        """Run the application once on this partition and measure it."""
        nodes = self._prepare_nodes(partition)
        result: JobResult = MpiJobSimulator.evaluate(
            nodes,
            application,
            params,
            ranks_per_node=ranks_per_node,
            streams=RandomStreams(self.seed),
            job_id=f"overprov-{partition.label()}",
            max_iterations=max_iterations,
        )
        return OverprovisionEvaluation(
            partition=partition,
            runtime_s=result.runtime_s,
            energy_j=result.energy_j,
            average_power_w=result.average_power_w,
            flops=result.average_flops,
            budgeted_power_w=partition.budgeted_power_w(len(self.cluster)),
        )

    def sweep(
        self,
        application: Application,
        params: Optional[Mapping[str, Any]] = None,
        ranks_per_node: int = 1,
        max_iterations: Optional[int] = None,
        partitions: Optional[Sequence[PoweredPartition]] = None,
    ) -> List[OverprovisionEvaluation]:
        """Evaluate the application on every feasible partition."""
        pool = (
            list(partitions)
            if partitions is not None
            else self.feasible_partitions(application, ranks_per_node)
        )
        return [
            self.evaluate(p, application, params, ranks_per_node, max_iterations)
            for p in pool
        ]

    def optimize(
        self,
        application: Application,
        params: Optional[Mapping[str, Any]] = None,
        objective: str = "runtime",
        ranks_per_node: int = 1,
        max_iterations: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Full overprovisioning study for one application.

        Returns the best partition for the objective, the fully provisioned
        baseline's measurement, the whole sweep, and the headline speedup
        (baseline runtime / best runtime) the §4.3 trade-off question asks
        about.
        """
        evaluations = self.sweep(
            application, params, ranks_per_node=ranks_per_node, max_iterations=max_iterations
        )
        if not evaluations:
            raise RuntimeError(
                "no feasible partition under the system power bound "
                f"{self.system_power_bound_w} W"
            )
        best = min(evaluations, key=lambda e: e.objective(objective))
        baseline_partition = self.fully_provisioned_baseline(application, ranks_per_node)
        baseline = None
        if baseline_partition is not None:
            baseline = next(
                (e for e in evaluations if e.partition == baseline_partition), None
            )
            if baseline is None:
                baseline = self.evaluate(
                    baseline_partition, application, params, ranks_per_node, max_iterations
                )
        speedup = (
            baseline.runtime_s / best.runtime_s
            if baseline is not None and best.runtime_s > 0
            else float("nan")
        )
        return {
            "objective": objective,
            "system_power_bound_w": self.system_power_bound_w,
            "best": best,
            "baseline": baseline,
            "speedup_over_fully_provisioned": speedup,
            "evaluations": evaluations,
        }

    # -- reporting ------------------------------------------------------------------
    @staticmethod
    def table(evaluations: Sequence[OverprovisionEvaluation]) -> List[Dict[str, float]]:
        """The sweep as a list of plain dictionaries (for report printing)."""
        return [e.as_dict() for e in evaluations]


def make_evaluator(
    planner: OverprovisioningPlanner,
    application: Application,
    params: Optional[Mapping[str, Any]] = None,
    objective: str = "runtime",
    max_iterations: Optional[int] = None,
) -> Callable[[Mapping[str, Any]], Dict[str, float]]:
    """Adapt the planner to the auto-tuner's ``evaluate(config) -> metrics`` shape.

    The returned callable accepts ``{"nodes": int, "cap_w": float,
    "accelerators": bool}`` configurations, making the overprovisioning
    choice just another layer the end-to-end tuner can search over.
    """

    def evaluate(config: Mapping[str, Any]) -> Dict[str, float]:
        partition = PoweredPartition(
            nodes_powered=int(config["nodes"]),
            per_node_cap_w=float(config["cap_w"]),
            accelerators_powered=bool(config.get("accelerators", True)),
        )
        if partition.budgeted_power_w(len(planner.cluster)) > planner.system_power_bound_w:
            # Infeasible configurations report an infinite objective so the
            # search backs away from them without crashing.
            return {
                "runtime_s": float("inf"),
                "energy_j": float("inf"),
                "feasible": 0.0,
            }
        evaluation = planner.evaluate(
            partition, application, params, max_iterations=max_iterations
        )
        metrics = evaluation.as_dict()
        metrics["feasible"] = 1.0
        metrics["objective"] = evaluation.objective(objective)
        return metrics

    return evaluate
