"""Standardised power monitoring/control interfaces (PowerAPI, IPMI, Redfish).

The paper's introduction names three interface specifications that
"provide high-level power management interfaces for accessing power
knobs": the Sandia **Power API** [14][15], **IPMI** [17] and DMTF
**Redfish** [8].  The PowerStack's whole premise is that the layers talk
to the hardware (and to each other) through such standardised surfaces
rather than through tool-specific back doors, so this package provides
the in-band and out-of-band interface analogues that the rest of the
stack can be wired through:

* :mod:`repro.powerapi.objects` — the Power API object hierarchy
  (platform → node → socket → core / memory / accelerator), typed
  attributes (power, energy, frequency, limits, temperature) and groups;
* :mod:`repro.powerapi.roles` — Power API roles (application, monitor,
  operating system, resource manager, administrator) and the
  read/write permission matrix each role gets;
* :mod:`repro.powerapi.context` — the entry point: build a navigable
  object tree for a :class:`~repro.hardware.cluster.Cluster` or a single
  node, enforce role permissions, and perform attribute get/set;
* :mod:`repro.powerapi.bmc` — an out-of-band IPMI/Redfish-style
  baseboard-management-controller endpoint per node: quantised sensor
  readings, chassis power metrics with averaging intervals, power-limit
  actions, and a Redfish-like resource-tree export.

Everything here is a thin, well-specified facade over
:mod:`repro.hardware`; no tuning logic lives in this package.
"""

from repro.powerapi.bmc import BmcEndpoint, RedfishService, SensorReading
from repro.powerapi.context import PowerApiContext, PowerApiError
from repro.powerapi.objects import AttrName, ObjType, PowerObject, PowerGroup
from repro.powerapi.roles import Role, RolePermissions

__all__ = [
    "AttrName",
    "BmcEndpoint",
    "ObjType",
    "PowerApiContext",
    "PowerApiError",
    "PowerGroup",
    "PowerObject",
    "RedfishService",
    "Role",
    "RolePermissions",
    "SensorReading",
]
