"""Power API object hierarchy, attributes and groups.

The Sandia Power API models the system as a tree of *power objects*
(platform, cabinet, board, node, socket, core, memory, NIC, accelerator)
each exposing typed *attributes* (power, energy, frequency, power limits,
temperature, governor).  Software navigates the tree, reads attributes,
and — subject to its role — writes the writable ones.  This module
implements that object model; the hardware binding is supplied by
*providers* (see :mod:`repro.powerapi.context`), so the object tree
itself stays hardware-agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence

import numpy as np

__all__ = [
    "ObjType",
    "AttrName",
    "AttrAccess",
    "AttributeSpec",
    "AttributeProvider",
    "PowerObject",
    "PowerGroup",
    "ATTRIBUTE_SPECS",
]


class ObjType(str, Enum):
    """Power API object types (the levels of the hardware tree)."""

    PLATFORM = "platform"
    CABINET = "cabinet"
    BOARD = "board"
    NODE = "node"
    SOCKET = "socket"
    CORE = "core"
    MEMORY = "memory"
    NIC = "nic"
    ACCELERATOR = "accelerator"


class AttrName(str, Enum):
    """Typed attributes a power object may expose."""

    #: Instantaneous power draw (W).
    POWER = "power"
    #: Cumulative energy counter (J).
    ENERGY = "energy"
    #: Upper power limit / cap currently in force (W).
    POWER_LIMIT_MAX = "power_limit_max"
    #: Lowest enforceable power limit (W).
    POWER_LIMIT_MIN = "power_limit_min"
    #: Current operating frequency (GHz).
    FREQ = "freq"
    #: Maximum settable frequency (GHz).
    FREQ_LIMIT_MAX = "freq_limit_max"
    #: Minimum settable frequency (GHz).
    FREQ_LIMIT_MIN = "freq_limit_min"
    #: Requested frequency target (GHz).
    FREQ_REQUEST = "freq_request"
    #: Uncore frequency (GHz).
    UNCORE_FREQ = "uncore_freq"
    #: Die / component temperature (degC).
    TEMP = "temp"
    #: Thermal design power of the component (W).
    TDP = "tdp"
    #: Governor / policy label (string-valued, carried as a float index).
    GOV = "gov"


class AttrAccess(str, Enum):
    """Whether an attribute is readable, writable, or both."""

    READ_ONLY = "ro"
    WRITE_ONLY = "wo"
    READ_WRITE = "rw"


@dataclass(frozen=True)
class AttributeSpec:
    """Static description of one attribute: units and nominal access."""

    name: AttrName
    units: str
    access: AttrAccess
    description: str


#: The canonical attribute dictionary (Power API "attribute" table analogue).
ATTRIBUTE_SPECS: Dict[AttrName, AttributeSpec] = {
    AttrName.POWER: AttributeSpec(AttrName.POWER, "W", AttrAccess.READ_ONLY,
                                  "instantaneous power draw"),
    AttrName.ENERGY: AttributeSpec(AttrName.ENERGY, "J", AttrAccess.READ_ONLY,
                                   "cumulative energy counter"),
    AttrName.POWER_LIMIT_MAX: AttributeSpec(AttrName.POWER_LIMIT_MAX, "W", AttrAccess.READ_WRITE,
                                            "upper power limit (cap)"),
    AttrName.POWER_LIMIT_MIN: AttributeSpec(AttrName.POWER_LIMIT_MIN, "W", AttrAccess.READ_ONLY,
                                            "lowest enforceable power limit"),
    AttrName.FREQ: AttributeSpec(AttrName.FREQ, "GHz", AttrAccess.READ_ONLY,
                                 "current operating frequency"),
    AttrName.FREQ_LIMIT_MAX: AttributeSpec(AttrName.FREQ_LIMIT_MAX, "GHz", AttrAccess.READ_ONLY,
                                           "maximum settable frequency"),
    AttrName.FREQ_LIMIT_MIN: AttributeSpec(AttrName.FREQ_LIMIT_MIN, "GHz", AttrAccess.READ_ONLY,
                                           "minimum settable frequency"),
    AttrName.FREQ_REQUEST: AttributeSpec(AttrName.FREQ_REQUEST, "GHz", AttrAccess.READ_WRITE,
                                         "requested frequency target"),
    AttrName.UNCORE_FREQ: AttributeSpec(AttrName.UNCORE_FREQ, "GHz", AttrAccess.READ_WRITE,
                                        "uncore frequency"),
    AttrName.TEMP: AttributeSpec(AttrName.TEMP, "degC", AttrAccess.READ_ONLY,
                                 "component temperature"),
    AttrName.TDP: AttributeSpec(AttrName.TDP, "W", AttrAccess.READ_ONLY,
                                "thermal design power"),
    AttrName.GOV: AttributeSpec(AttrName.GOV, "index", AttrAccess.READ_WRITE,
                                "governor / policy selector"),
}


class AttributeProvider:
    """Hardware binding of one power object.

    Subclasses (in :mod:`repro.powerapi.context`) read from and write to
    the simulated hardware.  The base class exposes nothing: attempting
    to access an attribute the provider does not implement raises
    ``KeyError`` which the context turns into a Power API error code.
    """

    def readable_attrs(self) -> Sequence[AttrName]:
        return ()

    def writable_attrs(self) -> Sequence[AttrName]:
        return ()

    def read(self, attr: AttrName) -> float:
        raise KeyError(f"attribute {attr.value!r} is not readable on this object")

    def write(self, attr: AttrName, value: float) -> float:
        raise KeyError(f"attribute {attr.value!r} is not writable on this object")


class PowerObject:
    """One node of the Power API object tree."""

    def __init__(
        self,
        obj_type: ObjType,
        name: str,
        provider: Optional[AttributeProvider] = None,
        parent: Optional["PowerObject"] = None,
    ):
        self.obj_type = obj_type
        self.name = name
        self.provider = provider or AttributeProvider()
        self.parent = parent
        self.children: List["PowerObject"] = []
        if parent is not None:
            parent.children.append(self)

    # -- tree navigation -----------------------------------------------------
    @property
    def depth(self) -> int:
        return 0 if self.parent is None else self.parent.depth + 1

    @property
    def path(self) -> str:
        """Slash-separated path from the root, e.g. ``platform/node-0003/socket-1``."""
        if self.parent is None:
            return self.name
        return f"{self.parent.path}/{self.name}"

    def add_child(
        self, obj_type: ObjType, name: str, provider: Optional[AttributeProvider] = None
    ) -> "PowerObject":
        return PowerObject(obj_type, name, provider=provider, parent=self)

    def walk(self) -> Iterator["PowerObject"]:
        """Depth-first traversal including this object."""
        yield self
        for child in self.children:
            yield from child.walk()

    def descendants(self, obj_type: Optional[ObjType] = None) -> List["PowerObject"]:
        """All objects below (and excluding) this one, optionally filtered by type."""
        out = [obj for obj in self.walk() if obj is not self]
        if obj_type is not None:
            out = [obj for obj in out if obj.obj_type is obj_type]
        return out

    def find(self, path: str) -> "PowerObject":
        """Resolve a path relative to this object (``"node-0001/socket-0"``)."""
        obj: PowerObject = self
        for part in [p for p in path.split("/") if p]:
            match = next((c for c in obj.children if c.name == part), None)
            if match is None:
                raise KeyError(f"no object {part!r} under {obj.path!r}")
            obj = match
        return obj

    # -- attribute access ------------------------------------------------------
    def readable_attrs(self) -> List[AttrName]:
        return list(self.provider.readable_attrs())

    def writable_attrs(self) -> List[AttrName]:
        return list(self.provider.writable_attrs())

    def read(self, attr: AttrName) -> float:
        """Read an attribute from this object's provider."""
        return float(self.provider.read(attr))

    def write(self, attr: AttrName, value: float) -> float:
        """Write an attribute; returns the value actually applied."""
        return float(self.provider.write(attr, float(value)))

    def read_aggregate(self, attr: AttrName, reduce: str = "sum") -> float:
        """Aggregate an attribute over this object and all descendants.

        Objects that do not expose the attribute are skipped.  ``reduce``
        is one of ``sum``, ``mean``, ``max``, ``min``.
        """
        values: List[float] = []
        for obj in self.walk():
            try:
                values.append(obj.read(attr))
            except KeyError:
                continue
        if not values:
            raise KeyError(f"no object under {self.path!r} exposes {attr.value!r}")
        array = np.asarray(values, dtype=float)
        reducers: Dict[str, Callable[[np.ndarray], float]] = {
            "sum": lambda a: float(a.sum()),
            "mean": lambda a: float(a.mean()),
            "max": lambda a: float(a.max()),
            "min": lambda a: float(a.min()),
        }
        if reduce not in reducers:
            raise ValueError(f"unknown reducer {reduce!r}")
        return reducers[reduce](array)

    def __repr__(self) -> str:
        return f"PowerObject({self.obj_type.value}, {self.path!r}, children={len(self.children)})"


@dataclass
class PowerGroup:
    """A named set of power objects operated on together.

    The Power API lets callers build groups (e.g. "all sockets of my
    job's nodes") and issue one get/set over the whole group — which is
    exactly how a job-level runtime applies a uniform cap.
    """

    name: str
    members: List[PowerObject] = field(default_factory=list)

    def add(self, obj: PowerObject) -> "PowerGroup":
        if obj not in self.members:
            self.members.append(obj)
        return self

    def extend(self, objs: Iterable[PowerObject]) -> "PowerGroup":
        for obj in objs:
            self.add(obj)
        return self

    def __len__(self) -> int:
        return len(self.members)

    def __iter__(self) -> Iterator[PowerObject]:
        return iter(self.members)

    def read(self, attr: AttrName) -> Dict[str, float]:
        """Read one attribute from every member (path → value)."""
        return {obj.path: obj.read(attr) for obj in self.members}

    def write(self, attr: AttrName, value: float) -> Dict[str, float]:
        """Write the same value to every member (path → applied value)."""
        return {obj.path: obj.write(attr, value) for obj in self.members}

    def total(self, attr: AttrName) -> float:
        return float(sum(self.read(attr).values()))

    def statistics(self, attr: AttrName) -> Dict[str, float]:
        """Min / max / mean / total of an attribute over the group."""
        values = np.asarray(list(self.read(attr).values()), dtype=float)
        if values.size == 0:
            return {"count": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0, "total": 0.0}
        return {
            "count": float(values.size),
            "min": float(values.min()),
            "max": float(values.max()),
            "mean": float(values.mean()),
            "total": float(values.sum()),
        }
