"""Power API roles and the attribute permission matrix.

The Power API specification defines *roles* — who is calling the
interface — and scopes what each role may read and write.  The paper's
end-to-end framework leans on exactly this separation: the resource
manager may move node power limits, a job-level runtime may move limits
on *its own* nodes, an application may only report/monitor, and a
site-wide monitoring daemon reads everything but writes nothing.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, FrozenSet, Mapping, Set

from repro.powerapi.objects import AttrName, ObjType

__all__ = ["Role", "RolePermissions", "default_permissions"]


class Role(str, Enum):
    """Who is talking to the Power API (the spec's actor roles)."""

    #: The application itself (APP): telemetry only.
    APPLICATION = "application"
    #: A monitoring/management daemon (MC): read-only, system-wide.
    MONITOR = "monitor"
    #: The node operating system (OS): node-local control.
    OPERATING_SYSTEM = "operating_system"
    #: The job-level runtime (USER in the spec's terms, e.g. GEOPM/Conductor).
    RUNTIME = "runtime"
    #: The system resource manager (RM, e.g. SLURM).
    RESOURCE_MANAGER = "resource_manager"
    #: Facility administrator: unrestricted.
    ADMINISTRATOR = "administrator"


@dataclass(frozen=True)
class RolePermissions:
    """What one role may read and write, and at which tree levels."""

    role: Role
    readable: FrozenSet[AttrName]
    writable: FrozenSet[AttrName]
    #: Object types on which *writes* are allowed (reads are allowed anywhere
    #: the attribute itself is readable).
    write_scope: FrozenSet[ObjType]

    def may_read(self, attr: AttrName) -> bool:
        return attr in self.readable

    def may_write(self, attr: AttrName, obj_type: ObjType) -> bool:
        return attr in self.writable and obj_type in self.write_scope


_ALL_ATTRS: FrozenSet[AttrName] = frozenset(AttrName)
_ALL_TYPES: FrozenSet[ObjType] = frozenset(ObjType)
_TELEMETRY: FrozenSet[AttrName] = frozenset(
    {
        AttrName.POWER,
        AttrName.ENERGY,
        AttrName.FREQ,
        AttrName.TEMP,
        AttrName.TDP,
        AttrName.POWER_LIMIT_MAX,
        AttrName.POWER_LIMIT_MIN,
        AttrName.FREQ_LIMIT_MAX,
        AttrName.FREQ_LIMIT_MIN,
        AttrName.UNCORE_FREQ,
        AttrName.FREQ_REQUEST,
        AttrName.GOV,
    }
)
_CONTROL: FrozenSet[AttrName] = frozenset(
    {
        AttrName.POWER_LIMIT_MAX,
        AttrName.FREQ_REQUEST,
        AttrName.UNCORE_FREQ,
        AttrName.GOV,
    }
)


def default_permissions() -> Dict[Role, RolePermissions]:
    """The default role → permissions matrix.

    * application / monitor: read everything, write nothing;
    * operating system: node-local control (node, socket, memory);
    * runtime: control at node and socket granularity (its own job's
      nodes — the *which* nodes part is enforced by the context's scope);
    * resource manager: control at platform, cabinet and node granularity;
    * administrator: everything everywhere.
    """
    return {
        Role.APPLICATION: RolePermissions(
            Role.APPLICATION, _TELEMETRY, frozenset(), frozenset()
        ),
        Role.MONITOR: RolePermissions(Role.MONITOR, _TELEMETRY, frozenset(), frozenset()),
        Role.OPERATING_SYSTEM: RolePermissions(
            Role.OPERATING_SYSTEM,
            _TELEMETRY,
            _CONTROL,
            frozenset({ObjType.NODE, ObjType.SOCKET, ObjType.CORE, ObjType.MEMORY}),
        ),
        Role.RUNTIME: RolePermissions(
            Role.RUNTIME,
            _TELEMETRY,
            _CONTROL,
            frozenset({ObjType.NODE, ObjType.SOCKET, ObjType.ACCELERATOR}),
        ),
        Role.RESOURCE_MANAGER: RolePermissions(
            Role.RESOURCE_MANAGER,
            _TELEMETRY,
            _CONTROL,
            frozenset({ObjType.PLATFORM, ObjType.CABINET, ObjType.NODE}),
        ),
        Role.ADMINISTRATOR: RolePermissions(
            Role.ADMINISTRATOR, _ALL_ATTRS, _ALL_ATTRS, _ALL_TYPES
        ),
    }


def merge_permissions(
    base: Mapping[Role, RolePermissions], **overrides: RolePermissions
) -> Dict[Role, RolePermissions]:
    """Return a copy of ``base`` with selected roles replaced.

    ``overrides`` keys are role values (e.g. ``runtime=...``); unknown
    role names raise ``KeyError`` so typos do not silently grant or deny
    permissions.
    """
    merged: Dict[Role, RolePermissions] = dict(base)
    valid: Set[str] = {role.value for role in Role}
    for key, perm in overrides.items():
        if key not in valid:
            raise KeyError(f"unknown role {key!r}; valid roles: {sorted(valid)}")
        merged[Role(key)] = perm
    return merged
