"""Out-of-band management interfaces: IPMI-style sensors and a Redfish facade.

Production sites meter and cap nodes not only in-band (RAPL, the Power
API) but also out-of-band through the baseboard management controller —
IPMI sensor reads and the DMTF Redfish REST model the paper cites.  The
out-of-band path has different fidelity: readings are quantised (1 W),
sampled at a slow fixed cadence, cover the *whole* node (board, fans,
VRs — not just RAPL domains), and the BMC enforces its own node power
limit independent of whatever the in-band runtime is doing.

:class:`BmcEndpoint` models one node's BMC; :class:`RedfishService`
exposes a cluster of BMCs behind Redfish-style resource paths
(``/redfish/v1/Chassis/<node>/Power``) with GET/PATCH semantics, which
is the shape a site-level monitoring or power-capping service consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.faults import injector as _faults
from repro.hardware.cluster import Cluster
from repro.hardware.node import Node

__all__ = ["SensorReading", "SensorSpec", "BmcEndpoint", "RedfishService"]


@dataclass(frozen=True)
class SensorSpec:
    """Static description of one BMC sensor."""

    name: str
    units: str
    #: Quantisation step of the reported value (e.g. 1 W, 0.5 degC).
    resolution: float
    #: Lower/upper critical thresholds (IPMI-style), if any.
    lower_critical: Optional[float] = None
    upper_critical: Optional[float] = None


@dataclass(frozen=True)
class SensorReading:
    """One out-of-band sensor sample.

    ``stale`` marks a silently-repeated previous sample; ``error`` is a
    short fault tag (e.g. ``"timeout"``) when the BMC could not produce
    a fresh value — degraded reads are reported in-band, never raised.
    """

    sensor: str
    time_s: float
    value: float
    units: str
    healthy: bool = True
    stale: bool = False
    error: Optional[str] = None


@dataclass
class _PowerMetrics:
    """Rolling interval statistics the Redfish ``PowerMetrics`` object reports."""

    interval_s: float = 60.0
    samples: List[tuple] = field(default_factory=list)

    def record(self, time_s: float, power_w: float) -> None:
        self.samples.append((time_s, power_w))
        cutoff = time_s - self.interval_s
        self.samples = [(t, p) for t, p in self.samples if t >= cutoff]

    def as_dict(self) -> Dict[str, float]:
        if not self.samples:
            return {
                "IntervalInMin": self.interval_s / 60.0,
                "MinConsumedWatts": 0.0,
                "MaxConsumedWatts": 0.0,
                "AverageConsumedWatts": 0.0,
            }
        values = np.asarray([p for _, p in self.samples], dtype=float)
        return {
            "IntervalInMin": self.interval_s / 60.0,
            "MinConsumedWatts": float(values.min()),
            "MaxConsumedWatts": float(values.max()),
            "AverageConsumedWatts": float(values.mean()),
        }


class BmcEndpoint:
    """The out-of-band management controller of one node."""

    #: Default sensor inventory of a dual-socket HPC node.
    DEFAULT_SENSORS = (
        SensorSpec("board_power", "W", resolution=1.0, upper_critical=None),
        SensorSpec("inlet_temp", "degC", resolution=0.5, upper_critical=45.0),
        SensorSpec("exhaust_temp", "degC", resolution=0.5, upper_critical=75.0),
        SensorSpec("cpu_temp", "degC", resolution=0.5, upper_critical=95.0),
    )

    def __init__(
        self,
        node: Node,
        sample_interval_s: float = 1.0,
        metrics_interval_s: float = 60.0,
        ambient_c: float = 22.0,
    ):
        if sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be positive")
        self.node = node
        self.sample_interval_s = float(sample_interval_s)
        self.ambient_c = float(ambient_c)
        self.sensors: Dict[str, SensorSpec] = {s.name: s for s in self.DEFAULT_SENSORS}
        self.readings: List[SensorReading] = []
        self._metrics = _PowerMetrics(interval_s=metrics_interval_s)
        self._last_sample_s: Optional[float] = None
        #: Last successfully-read value per sensor — what a timed-out or
        #: stale read falls back to.
        self._last_values: Dict[str, float] = {}
        #: BMC-enforced node power limit (None = unlimited).  Kept separate
        #: from the in-band cap so tests can check the two surfaces agree.
        self._power_limit_w: Optional[float] = None
        self.power_limit_exception = "NoAction"

    # -- sensors ----------------------------------------------------------
    def _quantise(self, spec: SensorSpec, value: float) -> float:
        return float(np.round(value / spec.resolution) * spec.resolution)

    def _raw_value(self, sensor: str) -> float:
        node = self.node
        if sensor == "board_power":
            return node.current_power_w if not node.is_free else node.idle_power_w()
        if sensor == "inlet_temp":
            return self.ambient_c
        if sensor == "cpu_temp":
            return node.max_temperature_c()
        if sensor == "exhaust_temp":
            # Exhaust air warms with the node's dissipated power.
            power = node.current_power_w if not node.is_free else node.idle_power_w()
            return self.ambient_c + 0.025 * power
        raise KeyError(f"unknown sensor {sensor!r}")

    def read_sensor(self, sensor: str, time_s: float = 0.0) -> SensorReading:
        """Read one sensor out-of-band (quantised, threshold-checked)."""
        if sensor not in self.sensors:
            raise KeyError(f"unknown sensor {sensor!r}; have {sorted(self.sensors)}")
        spec = self.sensors[sensor]

        inj = _faults.active()
        fault = None
        if inj is not None and inj.enabled:
            fault = inj.sensor_fault(self.node.hostname, sensor)
        if fault == "timeout":
            # The read never completes: report the last-known value (0.0
            # if there is none) flagged unhealthy, instead of raising.
            reading = SensorReading(
                sensor=sensor,
                time_s=float(time_s),
                value=self._last_values.get(sensor, 0.0),
                units=spec.units,
                healthy=False,
                error="timeout",
            )
            self.readings.append(reading)
            return reading
        if fault == "stale" and sensor in self._last_values:
            reading = SensorReading(
                sensor=sensor,
                time_s=float(time_s),
                value=self._last_values[sensor],
                units=spec.units,
                stale=True,
            )
            self.readings.append(reading)
            return reading

        value = self._quantise(spec, self._raw_value(sensor))
        healthy = True
        if spec.upper_critical is not None and value > spec.upper_critical:
            healthy = False
        if spec.lower_critical is not None and value < spec.lower_critical:
            healthy = False
        reading = SensorReading(
            sensor=sensor, time_s=float(time_s), value=value, units=spec.units, healthy=healthy
        )
        self._last_values[sensor] = value
        self.readings.append(reading)
        return reading

    def sample(self, time_s: float) -> List[SensorReading]:
        """Take one periodic sample of every sensor (respecting the cadence).

        Returns an empty list when called faster than the BMC's sampling
        interval — out-of-band telemetry cannot be polled arbitrarily fast.
        """
        if self._last_sample_s is not None and (
            time_s - self._last_sample_s < self.sample_interval_s - 1e-9
        ):
            return []
        self._last_sample_s = float(time_s)
        out = [self.read_sensor(name, time_s) for name in self.sensors]
        board = next(r for r in out if r.sensor == "board_power")
        self._metrics.record(time_s, board.value)
        return out

    def sensor_history(self, sensor: str) -> List[SensorReading]:
        return [r for r in self.readings if r.sensor == sensor]

    # -- power limiting (Redfish PowerLimit / IPMI DCMI power cap) ------------
    @property
    def power_limit_w(self) -> Optional[float]:
        return self._power_limit_w

    def set_power_limit(self, watts: Optional[float]) -> Optional[float]:
        """Apply (or clear) the BMC node power limit; returns the enforced value."""
        if watts is None:
            self._power_limit_w = None
            self.node.set_power_cap(None)
            return None
        if watts <= 0:
            raise ValueError("power limit must be positive")
        inj = _faults.active()
        if inj is not None and inj.enabled:
            target = inj.cap_write(self.node.hostname, float(watts), self._power_limit_w)
            if target is None:
                # Dropped write with no prior limit: the chassis stays
                # uncapped and the caller sees the (unchanged) state.
                return self._power_limit_w
            watts = target
        applied = self.node.set_power_cap(float(watts))
        self._power_limit_w = applied
        return applied

    # -- Redfish resource rendering ---------------------------------------------
    def power_resource(self) -> Dict[str, object]:
        """The Redfish ``Power`` resource of this chassis."""
        node = self.node
        power_now = node.current_power_w if not node.is_free else node.idle_power_w()
        return {
            "@odata.type": "#Power.v1_5_0.Power",
            "Id": "Power",
            "PowerControl": [
                {
                    "Name": "Node Power Control",
                    "PowerConsumedWatts": float(np.round(power_now)),
                    "PowerCapacityWatts": node.max_power_w(),
                    "PowerLimit": {
                        "LimitInWatts": self._power_limit_w,
                        "LimitException": self.power_limit_exception,
                    },
                    "PowerMetrics": self._metrics.as_dict(),
                }
            ],
        }

    def thermal_resource(self) -> Dict[str, object]:
        """The Redfish ``Thermal`` resource of this chassis."""
        rows = []
        for name in ("inlet_temp", "exhaust_temp", "cpu_temp"):
            spec = self.sensors[name]
            value = self._quantise(spec, self._raw_value(name))
            rows.append(
                {
                    "Name": name,
                    "ReadingCelsius": value,
                    "UpperThresholdCritical": spec.upper_critical,
                    "Status": {
                        "Health": "OK"
                        if spec.upper_critical is None or value <= spec.upper_critical
                        else "Critical"
                    },
                }
            )
        return {"@odata.type": "#Thermal.v1_6_0.Thermal", "Id": "Thermal", "Temperatures": rows}


class RedfishService:
    """A Redfish-like service endpoint over a cluster of BMCs.

    Only the small slice of the Redfish data model that site power
    management actually uses is exposed: the chassis collection, each
    chassis' ``Power`` and ``Thermal`` resources, and PATCHing
    ``PowerControl[0].PowerLimit.LimitInWatts``.
    """

    ROOT = "/redfish/v1"

    def __init__(self, cluster: Cluster, sample_interval_s: float = 1.0):
        self.cluster = cluster
        self.bmcs: Dict[str, BmcEndpoint] = {
            node.hostname: BmcEndpoint(node, sample_interval_s=sample_interval_s)
            for node in cluster.nodes
        }

    # -- endpoint helpers ------------------------------------------------------
    def bmc(self, hostname: str) -> BmcEndpoint:
        if hostname not in self.bmcs:
            raise KeyError(f"unknown chassis {hostname!r}")
        return self.bmcs[hostname]

    def chassis_paths(self) -> List[str]:
        return [f"{self.ROOT}/Chassis/{hostname}" for hostname in sorted(self.bmcs)]

    def get(self, path: str) -> Dict[str, object]:
        """GET a resource by path; raises ``KeyError`` for unknown paths."""
        parts = [p for p in path.split("/") if p]
        if parts[:2] != ["redfish", "v1"]:
            raise KeyError(f"unknown path {path!r}")
        rest = parts[2:]
        if not rest:
            return {
                "@odata.type": "#ServiceRoot.v1_9_0.ServiceRoot",
                "Chassis": {"@odata.id": f"{self.ROOT}/Chassis"},
            }
        if rest == ["Chassis"]:
            return {
                "@odata.type": "#ChassisCollection.ChassisCollection",
                "Members": [{"@odata.id": p} for p in self.chassis_paths()],
                "Members@odata.count": len(self.bmcs),
            }
        if rest[0] == "Chassis" and len(rest) >= 2:
            bmc = self.bmc(rest[1])
            if len(rest) == 2:
                return {
                    "@odata.type": "#Chassis.v1_14_0.Chassis",
                    "Id": rest[1],
                    "Power": {"@odata.id": f"{self.ROOT}/Chassis/{rest[1]}/Power"},
                    "Thermal": {"@odata.id": f"{self.ROOT}/Chassis/{rest[1]}/Thermal"},
                }
            if rest[2] == "Power":
                return bmc.power_resource()
            if rest[2] == "Thermal":
                return bmc.thermal_resource()
        raise KeyError(f"unknown path {path!r}")

    def patch_power_limit(self, hostname: str, limit_w: Optional[float]) -> Dict[str, object]:
        """PATCH the chassis power limit; returns the updated Power resource."""
        bmc = self.bmc(hostname)
        bmc.set_power_limit(limit_w)
        return bmc.power_resource()

    # -- site-level sweeps ---------------------------------------------------------
    def sample_all(self, time_s: float) -> Dict[str, List[SensorReading]]:
        """Poll every BMC once (site monitoring sweep)."""
        return {hostname: bmc.sample(time_s) for hostname, bmc in self.bmcs.items()}

    def system_power_w(self) -> float:
        """Sum of the quantised board-power readings across the cluster."""
        total = 0.0
        for bmc in self.bmcs.values():
            total += bmc.read_sensor("board_power").value
        return total

    def apply_system_power_cap(self, total_watts: float) -> Dict[str, float]:
        """Split a system cap evenly over the chassis (the facility baseline)."""
        if total_watts <= 0:
            raise ValueError("total_watts must be positive")
        share = total_watts / len(self.bmcs)
        return {
            hostname: float(bmc.set_power_limit(share) or share)
            for hostname, bmc in sorted(self.bmcs.items())
        }

    def outlier_chassis(self, threshold_sigma: float = 2.0) -> List[str]:
        """Chassis whose board power deviates from the fleet mean (§3.2.2).

        Returns hostnames more than ``threshold_sigma`` standard deviations
        away from the mean reading — the "node outlier detection" input the
        SLURM+GEOPM use case feeds to the resource manager.
        """
        if threshold_sigma <= 0:
            raise ValueError("threshold_sigma must be positive")
        # Timed-out reads carry no usable value — exclude them instead of
        # letting a stuck 0 W sample masquerade as an outlier.
        readings = {
            h: r.value
            for h, bmc in self.bmcs.items()
            for r in (bmc.read_sensor("board_power"),)
            if r.error is None
        }
        values = np.asarray(list(readings.values()), dtype=float)
        if values.size < 2 or float(values.std()) == 0.0:
            return []
        mean, std = float(values.mean()), float(values.std())
        return sorted(
            h for h, v in readings.items() if abs(v - mean) > threshold_sigma * std
        )
