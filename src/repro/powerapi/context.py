"""Power API context: hardware binding, role enforcement, get/set entry point.

A :class:`PowerApiContext` is what a PowerStack layer holds when it talks
to the hardware through the standard interface: it owns the object tree
built from a :class:`~repro.hardware.cluster.Cluster` (or a bare node
list), knows which :class:`~repro.powerapi.roles.Role` the caller has,
optionally restricts the caller to a *scope* (the nodes of one job), and
turns permission violations and unknown attributes into
:class:`PowerApiError` with spec-style error codes.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

from repro.hardware.cluster import Cluster
from repro.hardware.cpu import CpuPackage
from repro.hardware.gpu import GpuDevice
from repro.hardware.node import Node
from repro.powerapi.objects import (
    AttrName,
    AttributeProvider,
    ObjType,
    PowerGroup,
    PowerObject,
)
from repro.powerapi.roles import Role, RolePermissions, default_permissions

__all__ = [
    "ErrorCode",
    "PowerApiError",
    "PowerApiContext",
    "NodeProvider",
    "SocketProvider",
    "AcceleratorProvider",
    "PlatformProvider",
]


class ErrorCode(str, Enum):
    """Spec-style error codes carried by :class:`PowerApiError`."""

    NOT_IMPLEMENTED = "PWR_RET_NOT_IMPLEMENTED"
    NO_PERMISSION = "PWR_RET_NO_PERM"
    BAD_VALUE = "PWR_RET_BAD_VALUE"
    NO_OBJECT = "PWR_RET_NO_OBJ_AT_INDEX"
    OUT_OF_SCOPE = "PWR_RET_OUT_OF_SCOPE"


class PowerApiError(RuntimeError):
    """A failed Power API operation with its spec error code."""

    def __init__(self, code: ErrorCode, message: str):
        super().__init__(f"{code.value}: {message}")
        self.code = code


# ---------------------------------------------------------------------------
# hardware providers
# ---------------------------------------------------------------------------
class SocketProvider(AttributeProvider):
    """Binds a socket-level power object to one :class:`CpuPackage`."""

    _READABLE = (
        AttrName.POWER,
        AttrName.ENERGY,
        AttrName.FREQ,
        AttrName.FREQ_REQUEST,
        AttrName.FREQ_LIMIT_MAX,
        AttrName.FREQ_LIMIT_MIN,
        AttrName.UNCORE_FREQ,
        AttrName.POWER_LIMIT_MAX,
        AttrName.POWER_LIMIT_MIN,
        AttrName.TEMP,
        AttrName.TDP,
    )
    _WRITABLE = (AttrName.POWER_LIMIT_MAX, AttrName.FREQ_REQUEST, AttrName.UNCORE_FREQ)

    def __init__(self, package: CpuPackage):
        self.package = package

    def readable_attrs(self) -> Sequence[AttrName]:
        return self._READABLE

    def writable_attrs(self) -> Sequence[AttrName]:
        return self._WRITABLE

    def read(self, attr: AttrName) -> float:
        pkg = self.package
        if attr is AttrName.POWER:
            # The package does not track a live draw on its own; report the
            # idle floor which is the guaranteed-correct lower bound.
            return pkg.idle_power_w()
        if attr is AttrName.ENERGY:
            return pkg.energy_j
        if attr in (AttrName.FREQ, AttrName.FREQ_REQUEST):
            return pkg.frequency_ghz
        if attr is AttrName.FREQ_LIMIT_MAX:
            return pkg.max_frequency_ghz
        if attr is AttrName.FREQ_LIMIT_MIN:
            return pkg.spec.freq_min_ghz
        if attr is AttrName.UNCORE_FREQ:
            return pkg.uncore_ghz
        if attr is AttrName.POWER_LIMIT_MAX:
            return pkg.power_cap_w if pkg.power_cap_w is not None else pkg.spec.tdp_w
        if attr is AttrName.POWER_LIMIT_MIN:
            return pkg.spec.min_power_cap_w
        if attr is AttrName.TEMP:
            return pkg.thermal.temperature_c
        if attr is AttrName.TDP:
            return pkg.spec.tdp_w
        raise KeyError(attr.value)

    def write(self, attr: AttrName, value: float) -> float:
        pkg = self.package
        if attr is AttrName.POWER_LIMIT_MAX:
            return float(pkg.set_power_cap(value) or pkg.spec.tdp_w)
        if attr is AttrName.FREQ_REQUEST:
            return float(pkg.set_frequency(value))
        if attr is AttrName.UNCORE_FREQ:
            return float(pkg.set_uncore_frequency(value))
        raise KeyError(attr.value)


class AcceleratorProvider(AttributeProvider):
    """Binds an accelerator power object to one :class:`GpuDevice`."""

    _READABLE = (
        AttrName.POWER,
        AttrName.ENERGY,
        AttrName.FREQ,
        AttrName.POWER_LIMIT_MAX,
        AttrName.POWER_LIMIT_MIN,
        AttrName.TDP,
    )
    _WRITABLE = (AttrName.POWER_LIMIT_MAX, AttrName.FREQ_REQUEST)

    def __init__(self, gpu: GpuDevice):
        self.gpu = gpu

    def readable_attrs(self) -> Sequence[AttrName]:
        return self._READABLE

    def writable_attrs(self) -> Sequence[AttrName]:
        return self._WRITABLE

    def read(self, attr: AttrName) -> float:
        gpu = self.gpu
        if attr is AttrName.POWER:
            return gpu.idle_power_w()
        if attr is AttrName.ENERGY:
            return gpu.energy_j
        if attr is AttrName.FREQ:
            return gpu.frequency_ghz
        if attr is AttrName.POWER_LIMIT_MAX:
            return gpu.power_cap_w if gpu.power_cap_w is not None else gpu.spec.max_power_w
        if attr is AttrName.POWER_LIMIT_MIN:
            return gpu.spec.min_power_cap_w
        if attr is AttrName.TDP:
            return gpu.spec.max_power_w
        raise KeyError(attr.value)

    def write(self, attr: AttrName, value: float) -> float:
        if attr is AttrName.POWER_LIMIT_MAX:
            return float(self.gpu.set_power_cap(value) or self.gpu.spec.max_power_w)
        if attr is AttrName.FREQ_REQUEST:
            return float(self.gpu.set_frequency(value))
        raise KeyError(attr.value)


class NodeProvider(AttributeProvider):
    """Binds a node-level power object to one :class:`Node`."""

    _READABLE = (
        AttrName.POWER,
        AttrName.ENERGY,
        AttrName.FREQ,
        AttrName.POWER_LIMIT_MAX,
        AttrName.POWER_LIMIT_MIN,
        AttrName.TEMP,
        AttrName.TDP,
    )
    _WRITABLE = (AttrName.POWER_LIMIT_MAX, AttrName.FREQ_REQUEST, AttrName.UNCORE_FREQ)

    def __init__(self, node: Node):
        self.node = node

    def readable_attrs(self) -> Sequence[AttrName]:
        return self._READABLE

    def writable_attrs(self) -> Sequence[AttrName]:
        return self._WRITABLE

    def read(self, attr: AttrName) -> float:
        node = self.node
        if attr is AttrName.POWER:
            return node.current_power_w if not node.is_free else node.idle_power_w()
        if attr is AttrName.ENERGY:
            return node.total_energy_j()
        if attr is AttrName.FREQ:
            return min(pkg.frequency_ghz for pkg in node.packages)
        if attr is AttrName.POWER_LIMIT_MAX:
            return (
                node.node_power_cap_w
                if node.node_power_cap_w is not None
                else node.max_power_w()
            )
        if attr is AttrName.POWER_LIMIT_MIN:
            return node.spec.min_power_w
        if attr is AttrName.TEMP:
            return node.max_temperature_c()
        if attr is AttrName.TDP:
            return node.max_power_w()
        raise KeyError(attr.value)

    def write(self, attr: AttrName, value: float) -> float:
        node = self.node
        if attr is AttrName.POWER_LIMIT_MAX:
            return float(node.set_power_cap(value) or node.max_power_w())
        if attr is AttrName.FREQ_REQUEST:
            return float(node.set_frequency(value))
        if attr is AttrName.UNCORE_FREQ:
            return float(node.set_uncore_frequency(value))
        raise KeyError(attr.value)


class PlatformProvider(AttributeProvider):
    """Platform-level aggregate view over a set of nodes."""

    _READABLE = (AttrName.POWER, AttrName.ENERGY, AttrName.TDP, AttrName.POWER_LIMIT_MIN)

    def __init__(self, nodes: Sequence[Node]):
        self.nodes = list(nodes)

    def readable_attrs(self) -> Sequence[AttrName]:
        return self._READABLE

    def read(self, attr: AttrName) -> float:
        if attr is AttrName.POWER:
            return sum(
                n.current_power_w if not n.is_free else n.idle_power_w() for n in self.nodes
            )
        if attr is AttrName.ENERGY:
            return sum(n.total_energy_j() for n in self.nodes)
        if attr is AttrName.TDP:
            return sum(n.max_power_w() for n in self.nodes)
        if attr is AttrName.POWER_LIMIT_MIN:
            return sum(n.spec.min_power_w for n in self.nodes)
        raise KeyError(attr.value)


# ---------------------------------------------------------------------------
# the context
# ---------------------------------------------------------------------------
class PowerApiContext:
    """Role-scoped entry point to the Power API object tree."""

    def __init__(
        self,
        root: PowerObject,
        role: Role = Role.MONITOR,
        permissions: Optional[Mapping[Role, RolePermissions]] = None,
        scope_paths: Optional[Iterable[str]] = None,
    ):
        self.root = root
        self.role = role
        self._permissions = dict(permissions or default_permissions())
        if role not in self._permissions:
            raise ValueError(f"no permissions defined for role {role.value!r}")
        #: When set, writes are only allowed on objects whose path starts
        #: with one of these prefixes (e.g. the nodes of the caller's job).
        self._scope_prefixes: Optional[List[str]] = (
            [p.rstrip("/") for p in scope_paths] if scope_paths is not None else None
        )

    # -- construction ------------------------------------------------------
    @classmethod
    def for_cluster(
        cls,
        cluster: Cluster,
        role: Role = Role.MONITOR,
        permissions: Optional[Mapping[Role, RolePermissions]] = None,
        scope_hostnames: Optional[Iterable[str]] = None,
    ) -> "PowerApiContext":
        """Build the platform → node → socket/accelerator tree for a cluster."""
        root = PowerObject(
            ObjType.PLATFORM, cluster.spec.name, provider=PlatformProvider(cluster.nodes)
        )
        for node in cluster.nodes:
            cls._attach_node(root, node)
        scope_paths = None
        if scope_hostnames is not None:
            scope_paths = [f"{root.name}/{hostname}" for hostname in scope_hostnames]
        return cls(root, role=role, permissions=permissions, scope_paths=scope_paths)

    @classmethod
    def for_nodes(
        cls,
        nodes: Sequence[Node],
        role: Role = Role.RUNTIME,
        platform_name: str = "allocation",
        permissions: Optional[Mapping[Role, RolePermissions]] = None,
    ) -> "PowerApiContext":
        """Build a tree over one job's allocated nodes (runtime-side view)."""
        root = PowerObject(ObjType.PLATFORM, platform_name, provider=PlatformProvider(nodes))
        for node in nodes:
            cls._attach_node(root, node)
        return cls(root, role=role, permissions=permissions)

    @staticmethod
    def _attach_node(root: PowerObject, node: Node) -> PowerObject:
        node_obj = root.add_child(ObjType.NODE, node.hostname, provider=NodeProvider(node))
        for pkg in node.packages:
            node_obj.add_child(
                ObjType.SOCKET, f"socket-{pkg.package_id}", provider=SocketProvider(pkg)
            )
        for gpu in node.gpus:
            node_obj.add_child(
                ObjType.ACCELERATOR,
                f"accelerator-{gpu.device_id}",
                provider=AcceleratorProvider(gpu),
            )
        return node_obj

    # -- permissions --------------------------------------------------------
    @property
    def permissions(self) -> RolePermissions:
        return self._permissions[self.role]

    def with_role(self, role: Role) -> "PowerApiContext":
        """A sibling context over the same tree with a different role."""
        ctx = PowerApiContext(self.root, role=role, permissions=self._permissions)
        ctx._scope_prefixes = self._scope_prefixes
        return ctx

    def _in_scope(self, obj: PowerObject) -> bool:
        if self._scope_prefixes is None:
            return True
        path = obj.path
        return any(path == p or path.startswith(p + "/") for p in self._scope_prefixes)

    def in_scope(self, path_or_obj) -> bool:
        """Whether an object lies inside this context's write scope.

        Public counterpart of the check :meth:`write` applies, so batch
        operations (the control-plane service's vectorised power-cap
        commands) can enforce the same scope without issuing per-object
        writes.
        """
        return self._in_scope(self._resolve(path_or_obj))

    # -- navigation ---------------------------------------------------------
    def object(self, path: str) -> PowerObject:
        """Resolve an absolute path (rooted at the platform object)."""
        parts = [p for p in path.split("/") if p]
        if not parts:
            return self.root
        if parts[0] == self.root.name:
            parts = parts[1:]
        try:
            return self.root.find("/".join(parts))
        except KeyError as exc:
            raise PowerApiError(ErrorCode.NO_OBJECT, str(exc)) from exc

    def objects_of_type(self, obj_type: ObjType) -> List[PowerObject]:
        if self.root.obj_type is obj_type:
            return [self.root]
        return self.root.descendants(obj_type)

    def group(self, name: str, obj_type: ObjType) -> PowerGroup:
        """A group of every object of one type (scoped contexts: in scope only)."""
        members = [o for o in self.objects_of_type(obj_type) if self._in_scope(o)]
        return PowerGroup(name=name, members=members)

    # -- attribute access ------------------------------------------------------
    def read(self, path_or_obj, attr: AttrName) -> float:
        obj = self._resolve(path_or_obj)
        if not self.permissions.may_read(attr):
            raise PowerApiError(
                ErrorCode.NO_PERMISSION,
                f"role {self.role.value!r} may not read {attr.value!r}",
            )
        try:
            return obj.read(attr)
        except KeyError as exc:
            raise PowerApiError(ErrorCode.NOT_IMPLEMENTED, str(exc)) from exc

    def write(self, path_or_obj, attr: AttrName, value: float) -> float:
        obj = self._resolve(path_or_obj)
        if not self.permissions.may_write(attr, obj.obj_type):
            raise PowerApiError(
                ErrorCode.NO_PERMISSION,
                f"role {self.role.value!r} may not write {attr.value!r} "
                f"on a {obj.obj_type.value}",
            )
        if not self._in_scope(obj):
            raise PowerApiError(
                ErrorCode.OUT_OF_SCOPE,
                f"{obj.path!r} is outside this context's scope",
            )
        if value < 0 and attr is not AttrName.GOV:
            raise PowerApiError(
                ErrorCode.BAD_VALUE, f"negative value {value} for {attr.value!r}"
            )
        try:
            return obj.write(attr, value)
        except KeyError as exc:
            raise PowerApiError(ErrorCode.NOT_IMPLEMENTED, str(exc)) from exc

    def _resolve(self, path_or_obj) -> PowerObject:
        if isinstance(path_or_obj, PowerObject):
            return path_or_obj
        return self.object(str(path_or_obj))

    # -- convenience telemetry ----------------------------------------------
    def system_power_w(self) -> float:
        """Platform power (W) as seen through the standard interface."""
        return self.read(self.root, AttrName.POWER)

    def system_energy_j(self) -> float:
        return self.read(self.root, AttrName.ENERGY)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Read every readable attribute of every in-scope object."""
        out: Dict[str, Dict[str, float]] = {}
        for obj in self.root.walk():
            if not self._in_scope(obj):
                continue
            row: Dict[str, float] = {}
            for attr in obj.readable_attrs():
                if not self.permissions.may_read(attr):
                    continue
                try:
                    row[attr.value] = obj.read(attr)
                except KeyError:
                    continue
            if row:
                out[obj.path] = row
        return out
