"""Completed-run log: the journal behind resumable campaigns.

One :class:`CampaignJournal` is a single WAL segment
(``<dir>/campaign.wal``) holding a header entry — the campaign's
identity (name + grid size), checked on resume so two different grids
can never be mixed — followed by one entry per *completed* run, keyed
``use_case|scenario|seed=N[|segment=S]`` and carrying the processed
outcome (metrics, objective, feasibility, error, chaos stats).

``Campaign.run(..., journal_dir=...)`` appends a run entry the moment
that run's outcome is processed; a re-invocation with ``resume=True``
reads the surviving entries (torn tails discarded by the segment layer)
and skips those runs, re-emitting their journaled outcomes instead.
Because every run derives its own RNG from its seed, skipping is
invisible: the resumed campaign's database is bit-identical to an
uninterrupted pass (wall-clock aside).
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Optional

from repro.durability.journal import JournalSegment, read_entries

__all__ = ["CampaignJournal"]

_FILENAME = "campaign.wal"


class CampaignJournal:
    """Append-only completed-run log for one campaign directory."""

    def __init__(self, directory: str, fsync: str = "batch"):
        self.directory = os.path.abspath(directory)
        self.path = os.path.join(self.directory, _FILENAME)
        self._fsync = fsync
        self._segment: Optional[JournalSegment] = None
        #: Header of the journaled campaign (``None`` before begin/load).
        self.header: Optional[Dict[str, Any]] = None
        #: Completed-run outcomes by run key (last write wins).
        self.completed: Dict[str, Dict[str, Any]] = {}

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Read surviving entries from disk (torn tail already discarded)."""
        self.header = None
        self.completed = {}
        for payload in read_entries(self.path):
            try:
                entry = json.loads(payload.decode("utf-8"))
                kind = entry["kind"]
            except (ValueError, KeyError, TypeError):
                continue
            if kind == "header":
                self.header = entry
            elif kind == "run" and "key" in entry:
                self.completed[str(entry["key"])] = entry
        return self.completed

    def begin(self, campaign: str, total_runs: int, resume: bool = False) -> None:
        """Open for appending: fresh (truncate) or resuming (validate).

        A resume against a journal written by a *different* campaign —
        another name or grid size — raises ``ValueError`` instead of
        silently skipping runs that never belonged to this grid.
        """
        os.makedirs(self.directory, exist_ok=True)
        if resume:
            self.load()
            if self.header is not None and (
                self.header.get("campaign") != campaign
                or int(self.header.get("total", -1)) != int(total_runs)
            ):
                raise ValueError(
                    f"cannot resume: journal {self.path!r} belongs to campaign "
                    f"{self.header.get('campaign')!r} with "
                    f"{self.header.get('total')} runs, not {campaign!r} "
                    f"with {total_runs}"
                )
        else:
            self.header = None
            self.completed = {}
        self._segment = JournalSegment(self.path, fsync=self._fsync, name=_FILENAME)
        if not resume:
            self._segment.truncate()
        if self.header is None:
            self.header = {"kind": "header", "campaign": campaign, "total": int(total_runs)}
            self._append(self.header)

    def _append(self, entry: Dict[str, Any]) -> None:
        if self._segment is None:
            raise ValueError("campaign journal is not open; call begin() first")
        self._segment.append(
            json.dumps(entry, separators=(",", ":")).encode("utf-8")
        )

    def record_run(self, key: str, outcome: Dict[str, Any]) -> None:
        """Persist one completed run's processed outcome."""
        self.completed[key] = entry = {"kind": "run", "key": key, **outcome}
        self._append(entry)

    def sync(self) -> None:
        if self._segment is not None:
            self._segment.sync()

    def close(self) -> None:
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
