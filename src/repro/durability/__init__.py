"""Crash-safe durability: write-ahead journal, checkpoint/restore, resume.

PR 6 made the stack survive *injected* faults; this subpackage makes it
survive *process death*.  Three layers:

* :mod:`repro.durability.journal` — the binary substrate: append-only,
  length-prefixed + CRC32-checksummed segment files whose every byte
  prefix decodes to a clean prefix of entries (torn tails are detected
  and discarded, never raised),
* :mod:`repro.durability.checkpoint` — :class:`DatabaseJournal` tees
  every ``ShardedPerformanceDatabase.add`` into one segment per shard
  (write-ahead), ``checkpoint()`` compacts into atomic bounded snapshot
  generations, and :func:`recover` replays snapshot + journal to a
  bit-identical database,
* :mod:`repro.durability.runlog` — :class:`CampaignJournal`, the
  completed-run log behind ``Campaign.run(..., journal_dir=...)`` and
  the CLI ``--resume`` flag.

Quickstart::

    from repro.durability import attach, recover

    journal = attach(db, "capture.journal")   # every add() now durable
    ...                                        # crash here, any byte
    db = recover("capture.journal")            # completed-record prefix
"""

from repro.durability.checkpoint import DatabaseJournal, attach, recover
from repro.durability.journal import (
    FSYNC_POLICIES,
    JournalSegment,
    JournalTornWriteError,
    encode_entry,
    iter_entries,
    read_entries,
)
from repro.durability.runlog import CampaignJournal
from repro.telemetry.database import SnapshotCorruptError

__all__ = [
    "CampaignJournal",
    "DatabaseJournal",
    "FSYNC_POLICIES",
    "JournalSegment",
    "JournalTornWriteError",
    "SnapshotCorruptError",
    "attach",
    "encode_entry",
    "iter_entries",
    "read_entries",
    "recover",
]
