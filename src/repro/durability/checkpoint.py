"""Write-ahead journal + checkpoint/recover for the sharded database.

Directory layout of one durability root::

    <root>/
        JOURNAL.json              # config manifest (shard count, routing tags)
        CHECKPOINT                # atomic pointer: newest generation + record count
        wal/shard-<i>.wal         # one append-only segment per shard
        checkpoints/gen-<NNNNNN>/ # bounded snapshot generations (db.save format)

Invariants, in write order:

1. **Write-ahead.**  ``ShardedPerformanceDatabase.add`` journals the
   record (with its *global* sequence number and routing key) before any
   in-memory mutation.  A crash leaves at worst a torn tail entry.
2. **Atomic checkpoint.**  ``checkpoint()`` snapshots into a temp
   directory, renames it into place, atomically updates the
   ``CHECKPOINT`` pointer, *then* truncates the segments and prunes old
   generations.  A crash between any two steps is recoverable: either
   the pointer still names the old generation (journal replays on top of
   it), or it names the new one (leftover pre-checkpoint journal entries
   are absorbed duplicates and dropped by sequence number).
3. **Recovery never raises on torn state.**  :func:`recover` loads the
   newest *valid* generation (falling back to older ones on
   :class:`SnapshotCorruptError`), replays the longest contiguous
   completed-entry run from the segments, rewrites the segments to drop
   everything it discarded, and re-attaches the journal — so the
   returned database is bit-identical to some completed-record prefix of
   the crashed process and new appends can never collide with ghosts.
"""

from __future__ import annotations

import json
import os
import shutil
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.journal import (
    FSYNC_POLICIES,
    JournalSegment,
    read_entries,
    rewrite_segment,
)
from repro.telemetry.database import (
    EvaluationRecord,
    SnapshotCorruptError,
    atomic_write_text,
)
from repro.telemetry.sharding import ShardedPerformanceDatabase

__all__ = ["DatabaseJournal", "attach", "recover"]

_CONFIG = "JOURNAL.json"
_POINTER = "CHECKPOINT"
_WAL_DIR = "wal"
_CKPT_DIR = "checkpoints"
_GEN_PREFIX = "gen-"


def _segment_path(root: str, shard: int) -> str:
    return os.path.join(root, _WAL_DIR, f"shard-{shard}.wal")


def _generation_dir(root: str, generation: int) -> str:
    return os.path.join(root, _CKPT_DIR, f"{_GEN_PREFIX}{generation:06d}")


def _list_generations(root: str) -> List[int]:
    """Existing (fully renamed) generation numbers, ascending."""
    ckpt_dir = os.path.join(root, _CKPT_DIR)
    generations: List[int] = []
    if os.path.isdir(ckpt_dir):
        for entry in os.listdir(ckpt_dir):
            if entry.startswith(_GEN_PREFIX):
                try:
                    generations.append(int(entry[len(_GEN_PREFIX):]))
                except ValueError:
                    continue
    return sorted(generations)


class DatabaseJournal:
    """The durability root's write side: per-shard WAL + checkpointing.

    Implements the protocol ``ShardedPerformanceDatabase`` expects of an
    attached journal: ``enabled``, ``n_shards``,
    ``append_record(shard, seq, record, key)`` and ``checkpoint(db)``.
    """

    def __init__(
        self,
        directory: str,
        n_shards: int,
        fsync: str = "batch",
        keep_generations: int = 2,
    ):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; available: {FSYNC_POLICIES}"
            )
        if keep_generations < 1:
            raise ValueError("keep_generations must be >= 1")
        self.directory = os.path.abspath(directory)
        self.fsync = fsync
        self.keep_generations = keep_generations
        os.makedirs(os.path.join(self.directory, _WAL_DIR), exist_ok=True)
        os.makedirs(os.path.join(self.directory, _CKPT_DIR), exist_ok=True)
        self._segments: List[JournalSegment] = [
            JournalSegment(
                _segment_path(self.directory, shard),
                fsync=fsync,
                name=f"shard-{shard}.wal",
            )
            for shard in range(n_shards)
        ]
        self.appended = 0  # entries written through this handle
        #: False once closed; the database then skips the tee entirely.
        #: A plain attribute, not a property — ``add`` reads it on every
        #: record and a descriptor call there costs ~10% of a hot add.
        self.enabled = bool(self._segments)

    # -- journal protocol (consumed by ShardedPerformanceDatabase) ---------
    @property
    def n_shards(self) -> int:
        return len(self._segments)

    # repro-lint: hot
    def append_record(
        self, shard: int, seq: int, record: Dict[str, Any], key: str
    ) -> None:
        """Journal one record ahead of its in-memory add.

        ``seq`` is the record's *global* sequence number; replay uses it
        to stitch the per-shard segments back into one total order and to
        drop entries already absorbed by a checkpoint.
        """
        payload = json.dumps(
            {"seq": int(seq), "shard": int(shard), "key": str(key), "record": record},
            separators=(",", ":"),
        ).encode("utf-8")
        self._segments[shard].append(payload)
        self.appended += 1

    def sync(self) -> None:
        """fsync every segment (a batch-policy barrier)."""
        for segment in self._segments:
            segment.sync()

    # -- checkpointing -----------------------------------------------------
    def checkpoint(
        self,
        db: ShardedPerformanceDatabase,
        keep_generations: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Snapshot ``db`` atomically, truncate the WAL, prune generations.

        Returns a summary dict (generation number, records captured,
        journal entries absorbed, snapshot path).
        """
        if not self.enabled:
            raise ValueError("journal is closed")
        keep = self.keep_generations if keep_generations is None else int(keep_generations)
        if keep < 1:
            raise ValueError("keep_generations must be >= 1")
        existing = _list_generations(self.directory)
        generation = (existing[-1] + 1) if existing else 1
        final_dir = _generation_dir(self.directory, generation)
        tmp_dir = os.path.join(
            self.directory, _CKPT_DIR, f".tmp-{_GEN_PREFIX}{generation:06d}"
        )
        if os.path.isdir(tmp_dir):
            shutil.rmtree(tmp_dir)
        db.save(tmp_dir)
        os.rename(tmp_dir, final_dir)
        atomic_write_text(
            os.path.join(self.directory, _POINTER),
            json.dumps({"generation": generation, "records": len(db)}),
        )
        absorbed = self.appended
        for segment in self._segments:
            segment.truncate()
        self.appended = 0
        for old in _list_generations(self.directory)[:-keep]:
            shutil.rmtree(_generation_dir(self.directory, old), ignore_errors=True)
        return {
            "generation": generation,
            "records": len(db),
            "absorbed_entries": absorbed,
            "path": final_dir,
        }

    def close(self) -> None:
        self.enabled = False
        for segment in self._segments:
            segment.close()

    def __enter__(self) -> "DatabaseJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _write_config(directory: str, db: ShardedPerformanceDatabase) -> None:
    atomic_write_text(
        os.path.join(directory, _CONFIG),
        json.dumps(
            {
                "name": db.name,
                "n_shards": db.n_shards,
                "shard_key_tags": list(db.shard_key_tags),
            }
        ),
    )


def _read_config(directory: str) -> Dict[str, Any]:
    path = os.path.join(directory, _CONFIG)
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    try:
        config = json.loads(text)
        return {
            "name": str(config["name"]),
            "n_shards": int(config["n_shards"]),
            "shard_key_tags": [str(tag) for tag in config["shard_key_tags"]],
        }
    except (ValueError, KeyError, TypeError) as error:
        raise SnapshotCorruptError(
            path, f"{type(error).__name__}: {error}"
        ) from error


def attach(
    db: ShardedPerformanceDatabase,
    directory: str,
    fsync: str = "batch",
    keep_generations: int = 2,
) -> DatabaseJournal:
    """Make ``db`` durable under ``directory`` and return the journal.

    Writes the config manifest, opens per-shard segments, and attaches
    the journal so every future ``add`` is write-ahead journaled.  If
    the database already holds records, an immediate checkpoint captures
    them — attach never leaves pre-existing state unrecoverable.
    """
    os.makedirs(directory, exist_ok=True)
    _write_config(directory, db)
    journal = DatabaseJournal(
        directory, db.n_shards, fsync=fsync, keep_generations=keep_generations
    )
    db.attach_journal(journal)
    if len(db):
        journal.checkpoint(db)
    else:
        # A fresh attach over a stale root: drop leftover entries so a
        # later recover cannot replay ghosts this database never held.
        for segment in journal._segments:
            segment.truncate()
    return journal


def _load_checkpoint(
    directory: str, config: Dict[str, Any]
) -> ShardedPerformanceDatabase:
    """Newest loadable generation, or an empty database from the config.

    The ``CHECKPOINT`` pointer names the newest complete generation, but
    recovery trusts nothing: a corrupt snapshot falls back to the
    next-older generation.  Only when *no* generation exists at all does
    the journal alone reconstruct from empty — if generations exist but
    none loads, records the checkpoint absorbed (and truncated out of
    the journal) are gone, and silently returning an empty database
    would hide that loss, so this raises :class:`SnapshotCorruptError`.
    """
    generations = _list_generations(directory)
    last_error: Optional[Exception] = None
    for generation in reversed(generations):
        try:
            return ShardedPerformanceDatabase.load(
                _generation_dir(directory, generation)
            )
        except (SnapshotCorruptError, OSError) as error:
            last_error = error
            continue
    if generations:
        raise SnapshotCorruptError(
            os.path.join(directory, _CKPT_DIR),
            f"none of {len(generations)} checkpoint generation(s) is loadable "
            f"(last error: {last_error})",
        )
    return ShardedPerformanceDatabase(
        n_shards=config["n_shards"],
        name=config["name"],
        shard_key_tags=config["shard_key_tags"],
    )


def recover(
    directory: str,
    fsync: str = "batch",
    keep_generations: int = 2,
    reattach: bool = True,
) -> ShardedPerformanceDatabase:
    """Rebuild the database from snapshot + journal; re-attach by default.

    The result is bit-identical to the crashed writer at some
    completed-record prefix: the newest valid checkpoint plus the
    longest contiguous run of intact journal entries after it.  Torn or
    corrupt tails, absorbed duplicates, and sequence gaps are silently
    dropped — and physically rewritten out of the segments, so
    post-recovery appends continue from a clean tail.
    """
    directory = os.path.abspath(directory)
    config = _read_config(directory)  # FileNotFoundError if not a journal root
    db = _load_checkpoint(directory, config)
    if db.n_shards != config["n_shards"]:
        raise SnapshotCorruptError(
            directory,
            f"checkpoint has {db.n_shards} shards, journal config "
            f"expects {config['n_shards']}",
        )

    # Decode every intact entry across the per-shard segments.
    by_seq: Dict[int, Tuple[int, str, Dict[str, Any]]] = {}
    for shard in range(config["n_shards"]):
        for payload in read_entries(_segment_path(directory, shard)):
            try:
                entry = json.loads(payload.decode("utf-8"))
                seq = int(entry["seq"])
                key = str(entry["key"])
                record = entry["record"]
            except (ValueError, KeyError, TypeError):
                continue  # checksummed but structurally alien: drop
            if int(entry.get("shard", shard)) != shard:
                continue  # entry landed in the wrong segment: drop
            by_seq[seq] = (shard, key, record)

    # Replay the longest contiguous run starting at the snapshot length;
    # entries below it were absorbed by the checkpoint, gaps end the run.
    replayed: List[Tuple[int, str, Dict[str, Any]]] = []
    seq = len(db)
    while seq in by_seq:
        shard, key, record = by_seq[seq]
        db.add(EvaluationRecord.from_dict(record), shard_key=key)
        replayed.append((shard, key, record))
        seq += 1

    # Rewrite segments with exactly the surviving entries so discarded
    # sequence numbers can never be shadowed by pre-crash ghosts.
    surviving: List[List[bytes]] = [[] for _ in range(config["n_shards"])]
    for offset, (shard, key, record) in enumerate(replayed):
        surviving[shard].append(
            json.dumps(
                {
                    "seq": len(db) - len(replayed) + offset,
                    "shard": shard,
                    "key": key,
                    "record": record,
                },
                separators=(",", ":"),
            ).encode("utf-8")
        )
    os.makedirs(os.path.join(directory, _WAL_DIR), exist_ok=True)
    for shard in range(config["n_shards"]):
        rewrite_segment(_segment_path(directory, shard), surviving[shard])

    if reattach:
        journal = DatabaseJournal(
            directory,
            config["n_shards"],
            fsync=fsync,
            keep_generations=keep_generations,
        )
        journal.appended = len(replayed)  # entries the next checkpoint absorbs
        db.attach_journal(journal)
    return db
