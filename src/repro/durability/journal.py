"""Append-only, checksummed write-ahead journal segments.

The binary substrate of ``repro.durability``: a *segment* is a flat file
of length-prefixed, CRC32-checksummed entries::

    +----------------+----------------+------------------+
    | length (u32 BE)| crc32  (u32 BE)| payload (length) |
    +----------------+----------------+------------------+

Payloads are opaque bytes to this layer (the database journal stores
UTF-8 JSON).  The format is chosen for exactly one property: **any byte
prefix of a valid segment decodes to a prefix of its entries**.  A
process killed mid-append leaves a torn tail — a truncated header, a
short payload, or a payload whose checksum no longer matches — and
:func:`iter_entries` detects all three, discards the tail, and returns
the completed entries cleanly.  Corruption is never an exception on the
read path; it is simply where the journal ends.

Writes go through :class:`JournalSegment`, which applies the configured
fsync policy and consults the process-global fault injector
(``repro.faults``) so chaos plans can tear writes (simulating a crash
mid-append, raised as :class:`JournalTornWriteError`) or stall the disk.
"""

from __future__ import annotations

import os
import struct
import time
import zlib
from typing import BinaryIO, Iterator, List, Optional

__all__ = [
    "FSYNC_POLICIES",
    "JournalSegment",
    "JournalTornWriteError",
    "encode_entry",
    "iter_entries",
    "read_entries",
]

_HEADER = struct.Struct(">II")

#: Sanity bound on one entry; a length prefix beyond this is corruption,
#: not a record (keeps a flipped length byte from allocating gigabytes).
MAX_ENTRY_BYTES = 64 * 1024 * 1024

#: ``always`` — fsync after every append (strongest; one syscall per
#: record).  ``batch`` — flush to the OS after every append, fsync only
#: on :meth:`JournalSegment.sync` / close / checkpoint (a kill loses at
#: most the OS buffer, a torn tail recovery already handles).
FSYNC_POLICIES = ("always", "batch")


class JournalTornWriteError(OSError):
    """A fault-injected torn journal append (simulated crash mid-write).

    Raised *after* the partial bytes hit the file, mirroring what a real
    process death leaves behind; the caller should treat it as fatal for
    the writing process and recover from the journal.
    """


def encode_entry(payload: bytes) -> bytes:
    """One wire entry: length prefix + CRC32 + payload."""
    if len(payload) > MAX_ENTRY_BYTES:
        raise ValueError(
            f"journal entry of {len(payload)} bytes exceeds the "
            f"{MAX_ENTRY_BYTES}-byte bound"
        )
    return _HEADER.pack(len(payload), zlib.crc32(payload) & 0xFFFFFFFF) + payload


def iter_entries(path: str) -> Iterator[bytes]:
    """Yield completed entry payloads; stop cleanly at a torn/corrupt tail.

    Every stop condition — missing file, truncated header, implausible
    length, short payload, checksum mismatch — ends the iteration without
    raising.  What was yielded is exactly the completed-entry prefix.
    """
    try:
        fh: BinaryIO = open(path, "rb")
    except FileNotFoundError:
        return
    with fh:
        while True:
            header = fh.read(_HEADER.size)
            if len(header) < _HEADER.size:
                return  # clean EOF or torn header
            length, checksum = _HEADER.unpack(header)
            if not 0 < length <= MAX_ENTRY_BYTES:
                return  # corrupt length prefix
            payload = fh.read(length)
            if len(payload) < length:
                return  # torn payload
            if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
                return  # bit rot / overwritten tail
            yield payload


def read_entries(path: str) -> List[bytes]:
    """All completed entry payloads of one segment (torn tail discarded)."""
    return list(iter_entries(path))


class JournalSegment:
    """One append handle on a segment file, with fsync policy and chaos.

    ``name`` identifies the segment to the fault injector's per-entity
    RNG streams, so torn-write/stall decisions replay bit-for-bit.
    """

    def __init__(self, path: str, fsync: str = "batch", name: Optional[str] = None):
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; available: {FSYNC_POLICIES}"
            )
        self.path = path
        self.fsync = fsync
        self.name = name if name is not None else os.path.basename(path)
        self._fh: Optional[BinaryIO] = open(path, "ab")

    @property
    def closed(self) -> bool:
        return self._fh is None

    def _chaos(self, data: bytes) -> None:
        """Consult the fault injector: maybe stall, maybe tear this write."""
        from repro.faults import injector as faults

        inj = faults.active()
        if inj is None or not inj.enabled:
            return
        stall_s = inj.disk_stall(self.name)
        if stall_s is not None and stall_s > 0.0:
            time.sleep(stall_s)
        torn_fraction = inj.journal_torn_write(self.name)
        if torn_fraction is not None:
            cut = max(1, min(len(data) - 1, int(len(data) * torn_fraction)))
            self._fh.write(data[:cut])
            self._fh.flush()
            raise JournalTornWriteError(
                f"chaos: torn journal write on {self.name!r} "
                f"({cut}/{len(data)} bytes persisted)"
            )

    # repro-lint: hot
    def append(self, payload: bytes) -> None:
        """Append one entry (write-ahead: callers journal before applying)."""
        if self._fh is None:
            raise ValueError(f"journal segment {self.path!r} is closed")
        data = encode_entry(payload)
        self._chaos(data)
        self._fh.write(data)
        self._fh.flush()
        if self.fsync == "always":
            os.fsync(self._fh.fileno())

    def sync(self) -> None:
        """Flush + fsync whatever has been appended so far."""
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())

    def truncate(self) -> None:
        """Drop every entry (used after a checkpoint absorbs them)."""
        if self._fh is None:
            raise ValueError(f"journal segment {self.path!r} is closed")
        self._fh.close()
        self._fh = open(self.path, "wb")
        self._fh.flush()
        if self.fsync == "always":
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.flush()
            os.fsync(self._fh.fileno())
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JournalSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def rewrite_segment(path: str, payloads: List[bytes]) -> None:
    """Atomically replace a segment with exactly ``payloads``.

    Recovery uses this to drop discarded (non-contiguous or torn) tail
    entries from disk, so a later append at the same sequence number can
    never collide with a ghost of the pre-crash run.
    """
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        for payload in payloads:
            fh.write(encode_entry(payload))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
